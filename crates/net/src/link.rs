//! Per-link parameters and mutable runtime state.

use ree_sim::{SimDuration, SimTime};

/// Identifies one *directed* link of a [`crate::Topology`].
///
/// Links always come in twin pairs: [`crate::LinkSpec::peer`] names the
/// reverse direction. Indices are dense (`0..topology.links().len()`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Static parameters of one directed link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Propagation latency for crossing this link.
    pub latency: SimDuration,
    /// Uniform jitter bound this link contributes to a route's total.
    pub jitter: SimDuration,
    /// Serialisation bandwidth in bytes per virtual second. `None`
    /// means the hop forwards without queueing (ideal switch fabric):
    /// the packet spends no wire time and reserves no transmit slot.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Probability this link loses the packet.
    pub drop_probability: f64,
}

impl LinkParams {
    /// A hop that forwards instantly: zero latency and jitter, no
    /// serialisation, no loss. Used for ideal switch egress ports.
    pub fn instant() -> Self {
        LinkParams {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bandwidth_bytes_per_sec: None,
            drop_probability: 0.0,
        }
    }

    /// A serialising link with the given bandwidth and latency, no
    /// jitter or loss. Builder shorthand for trunks and uplinks.
    pub fn wire(bandwidth_bytes_per_sec: u64, latency: SimDuration) -> Self {
        LinkParams {
            latency,
            jitter: SimDuration::ZERO,
            bandwidth_bytes_per_sec: Some(bandwidth_bytes_per_sec),
            drop_probability: 0.0,
        }
    }
}

/// Mutable per-link runtime state, owned by [`crate::Network`].
#[derive(Clone, Debug)]
pub struct LinkState {
    /// Whether the link carries traffic. A send whose static route
    /// crosses a downed link is `Partitioned` (no rerouting).
    pub up: bool,
    /// Wire-time multiplier: `1.0` is nominal, `4.0` models a link
    /// degraded to a quarter of its bandwidth.
    pub degrade: f64,
    /// Serialisation frontier: when this link's transmitter frees up.
    pub busy_until: SimTime,
    /// `(ends_at, slowdown)` transient load windows local to this link;
    /// active windows inflate wire time by `1 + Σ slowdown`.
    pub load_windows: Vec<(SimTime, f64)>,
}

impl LinkState {
    pub(crate) fn fresh() -> Self {
        LinkState { up: true, degrade: 1.0, busy_until: SimTime::ZERO, load_windows: Vec::new() }
    }

    /// Effective wire-time multiplier at `now` (drops expired windows).
    pub(crate) fn scale(&mut self, now: SimTime) -> f64 {
        if !self.load_windows.is_empty() {
            self.load_windows.retain(|(end, _)| *end > now);
        }
        let transient: f64 = self.load_windows.iter().map(|(_, f)| f).sum();
        self.degrade * (1.0 + transient)
    }
}
