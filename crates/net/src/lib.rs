//! # ree-net — simulated cluster interconnect
//!
//! Models the interconnect of the REE testbed (paper §2, Figure 2) as a
//! **topology** of nodes, switches, and directed links: per-link
//! latency/jitter/bandwidth/loss, static shortest-path routing computed
//! at build time (`src/routing.rs`), store-and-forward serialisation on every
//! bandwidth-bearing hop (concurrent flows on a link queue behind each
//! other), and per-link state — up/down, degradation, transient load
//! windows. The paper attributes the only actual-execution-time overhead
//! of FTM recovery to "network contention during the FTM's recovery,
//! which lasts for only 0.6–0.7 s" (§5.2); [`Network::inject_load`]
//! reproduces exactly that effect.
//!
//! The historical flat model survives as the degenerate case:
//! [`Network::new`] builds [`Topology::single_switch`], which reproduces
//! the flat model's delivery times byte-for-byte (see
//! `tests/equivalence.rs` and `docs/NETWORK.md`).
//!
//! The crate is payload-agnostic: [`Network::send`] computes *when* a
//! packet arrives; the OS layer owns the event queue and the payload.
//!
//! ## Example
//!
//! ```
//! use ree_net::{Network, NetworkConfig, NodeId};
//! use ree_sim::{SimRng, SimTime};
//!
//! let mut net = Network::new(NetworkConfig::ethernet_100mbps(), 4, SimRng::new(7));
//! let verdict = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1500);
//! let at = verdict.delivery_time().expect("link is up");
//! assert!(at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod model;
mod routing;
mod topology;

pub use link::{LinkId, LinkParams, LinkState};
pub use model::{NetworkConfig, NodeId, SendVerdict};
pub use topology::{LinkSpec, Port, SwitchId, Topology, TopologyBuilder};

use ree_sim::{SimDuration, SimRng, SimTime};
use routing::RouteTable;
use std::collections::HashSet;
use std::sync::Arc;

/// The immutable half of a network, shared by all forks of a run.
#[derive(Debug)]
struct Statics {
    topology: Topology,
    routes: RouteTable,
}

/// The simulated interconnect.
///
/// Owns the mutable runtime state over an immutable [`Topology`]:
/// per-link transmit occupancy (so concurrent flows on a link serialise
/// behind each other), per-link up/down and degradation, administrative
/// endpoint blocks, and network-wide transient load windows that model
/// recovery-traffic contention.
#[derive(Debug, Clone)]
pub struct Network {
    statics: Arc<Statics>,
    rng: SimRng,
    link_state: Vec<LinkState>,
    down_links: HashSet<(NodeId, NodeId)>,
    down_nodes: HashSet<NodeId>,
    /// (ends_at, slowdown_factor) windows of extra contention.
    load_windows: Vec<(SimTime, f64)>,
    packets_sent: u64,
    bytes_sent: u64,
    packets_dropped: u64,
}

impl Network {
    /// Creates a network over the degenerate single-switch topology the
    /// flat `config` describes ([`Topology::single_switch`]), covering
    /// nodes `0..nodes`.
    pub fn new(config: NetworkConfig, nodes: u16, rng: SimRng) -> Self {
        Self::with_topology(Topology::single_switch(nodes, &config), rng)
    }

    /// Creates a network over an explicit topology.
    pub fn with_topology(topology: Topology, rng: SimRng) -> Self {
        let routes = RouteTable::build(&topology);
        let link_state = topology.links().iter().map(|_| LinkState::fresh()).collect();
        Network {
            statics: Arc::new(Statics { topology, routes }),
            rng,
            link_state,
            down_links: HashSet::new(),
            down_nodes: HashSet::new(),
            load_windows: Vec::new(),
            packets_sent: 0,
            bytes_sent: 0,
            packets_dropped: 0,
        }
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.statics.topology
    }

    /// The static route between two nodes, if they are connected.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<&[LinkId]> {
        self.statics.routes.route(from, to)
    }

    /// Replaces the jitter/drop random stream and zeroes the traffic
    /// counters (warm-boot forking: each forked run re-seeds the network
    /// stream so per-run draws are a function of the run seed, and
    /// per-run traffic stats must not include boot traffic — the cold
    /// path reseeds at the same instant, so warm ≡ cold is preserved).
    /// Link state and transmit occupancy are kept.
    pub fn reseed(&mut self, rng: SimRng) {
        self.rng = rng;
        self.packets_sent = 0;
        self.bytes_sent = 0;
        self.packets_dropped = 0;
    }

    /// Computes the delivery time of a `size_bytes` packet sent at `now`
    /// from `from` to `to`.
    ///
    /// The packet store-and-forwards along the precomputed static route:
    /// on every bandwidth-bearing hop it queues behind that link's
    /// previous transmissions (shared-bandwidth serialisation), then
    /// crosses with the link's latency. One jitter draw covers the
    /// route's combined jitter bound, and one loss draw its combined
    /// drop probability, so RNG consumption is route-independent.
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, size_bytes: u64) -> SendVerdict {
        if from == to {
            // Loopback is node-local IPC: it never touches a link and is
            // never partitioned, even while the node's links are down.
            self.packets_sent += 1;
            self.bytes_sent += size_bytes;
            return SendVerdict::Delivered(now + self.statics.topology.loopback_latency());
        }
        if self.is_partitioned(from, to) {
            return SendVerdict::Partitioned;
        }
        let statics = Arc::clone(&self.statics);
        let drop_probability = statics.routes.drop(from, to);
        if drop_probability > 0.0 && self.rng.chance(drop_probability) {
            self.packets_dropped += 1;
            return SendVerdict::Dropped;
        }
        self.packets_sent += 1;
        self.bytes_sent += size_bytes;

        // Serialisation: store-and-forward across the route; concurrent
        // flows on a link queue behind each other.
        let route = statics.routes.route(from, to).expect("checked by is_partitioned");
        let mut arrival = now;
        let mut wire_total = SimDuration::ZERO;
        for l in route {
            let spec = &statics.topology.links()[l.0 as usize];
            if let Some(bw) = spec.params.bandwidth_bytes_per_sec {
                let state = &mut self.link_state[l.0 as usize];
                let mut wire = SimDuration::from_secs_f64(size_bytes as f64 / bw as f64);
                let scale = state.scale(now);
                if scale != 1.0 {
                    wire = wire.mul_f64(scale);
                }
                let start = if state.busy_until > arrival { state.busy_until } else { arrival };
                let done = start + wire;
                state.busy_until = done;
                wire_total += wire;
                arrival = done;
            }
            arrival += spec.params.latency;
        }

        let jitter_bound = statics.routes.jitter(from, to);
        let jitter = if jitter_bound.is_zero() {
            SimDuration::ZERO
        } else {
            self.rng.uniform_duration(SimDuration::ZERO, jitter_bound)
        };
        let contention =
            self.contention_penalty(now, wire_total + statics.routes.latency(from, to));
        SendVerdict::Delivered(arrival + jitter + contention)
    }

    fn contention_penalty(&mut self, now: SimTime, nominal: SimDuration) -> SimDuration {
        self.load_windows.retain(|(end, _)| *end > now);
        let factor: f64 = self.load_windows.iter().map(|(_, f)| f).sum();
        if factor > 0.0 {
            nominal.mul_f64(factor.min(8.0))
        } else {
            SimDuration::ZERO
        }
    }

    /// Registers transient network-wide contention: for `window`, every
    /// packet's latency is inflated by `slowdown` × its nominal transfer
    /// time.
    ///
    /// Used to model recovery traffic (checkpoint restore, process-image
    /// copies) competing with application MPI messages. For contention
    /// local to one link, see [`Network::inject_link_load`].
    pub fn inject_load(&mut self, now: SimTime, window: SimDuration, slowdown: f64) {
        self.load_windows.push((now + window, slowdown));
    }

    /// Registers a transient load window on a single link: for `window`,
    /// wire time across `link` is inflated by a factor `1 + slowdown`
    /// (stacking with other active windows on the same link).
    pub fn inject_link_load(
        &mut self,
        link: LinkId,
        now: SimTime,
        window: SimDuration,
        slowdown: f64,
    ) {
        if let Some(state) = self.link_state.get_mut(link.0 as usize) {
            state.load_windows.push((now + window, slowdown));
        }
    }

    /// Takes all of a node's incident links down (packets to/from it are
    /// `Partitioned`; loopback is unaffected). Restoring the node brings
    /// back only this administrative block — links downed individually
    /// via [`Network::set_topology_link`] stay down.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        if down {
            self.down_nodes.insert(node);
        } else {
            self.down_nodes.remove(&node);
        }
    }

    /// Severs or restores the (bidirectional) path between two endpoint
    /// nodes, regardless of topology — the administrative pair block
    /// partition faults are built from.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if down {
            self.down_links.insert(key);
        } else {
            self.down_links.remove(&key);
        }
    }

    /// Takes one directed topology link down or up. Routes crossing a
    /// downed link report `Partitioned` (static routing — no failover).
    pub fn set_topology_link(&mut self, link: LinkId, up: bool) {
        if let Some(state) = self.link_state.get_mut(link.0 as usize) {
            state.up = up;
        }
    }

    /// Degrades a directed link: wire time across it is multiplied by
    /// `factor` (`1.0` restores nominal bandwidth, `4.0` models a link
    /// at quarter speed).
    pub fn degrade_link(&mut self, link: LinkId, factor: f64) {
        if let Some(state) = self.link_state.get_mut(link.0 as usize) {
            state.degrade = factor;
        }
    }

    /// Whether a directed topology link is up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_state.get(link.0 as usize).map(|s| s.up).unwrap_or(false)
    }

    /// True if traffic between the two nodes cannot flow: an endpoint's
    /// links are administratively down, the pair is blocked, there is no
    /// route, or a link on the static route is down. Loopback (`a == b`)
    /// is node-local and never partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        if self.down_nodes.contains(&a) || self.down_nodes.contains(&b) {
            return true;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if self.down_links.contains(&key) {
            return true;
        }
        match self.statics.routes.route(a, b) {
            None => true,
            Some(route) => route.iter().any(|l| !self.link_state[l.0 as usize].up),
        }
    }

    /// Total packets accepted for delivery since the last reseed.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total payload bytes accepted for delivery since the last reseed.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total packets randomly dropped since the last reseed.
    pub fn packets_dropped(&self) -> u64 {
        self.packets_dropped
    }

    /// Feeds every piece of mutable network state into `h`, in a
    /// canonical order (set-valued state is sorted first, so two
    /// networks that behave identically hash identically regardless of
    /// insertion history). Includes the jitter/drop RNG position: two
    /// states that look alike but will draw different futures must not
    /// collide in a model checker's convergence-prune set. The immutable
    /// topology/route statics are excluded — all forks of one run share
    /// them by construction.
    pub fn write_state_digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.rng.state().hash(h);
        for state in &self.link_state {
            state.up.hash(h);
            state.degrade.to_bits().hash(h);
            state.busy_until.hash(h);
            state.load_windows.len().hash(h);
            for (end, slow) in &state.load_windows {
                end.hash(h);
                slow.to_bits().hash(h);
            }
        }
        let mut links: Vec<(NodeId, NodeId)> = self.down_links.iter().copied().collect();
        links.sort_unstable();
        links.hash(h);
        let mut nodes: Vec<NodeId> = self.down_nodes.iter().copied().collect();
        nodes.sort_unstable();
        nodes.hash(h);
        self.load_windows.len().hash(h);
        for (end, slow) in &self.load_windows {
            end.hash(h);
            slow.to_bits().hash(h);
        }
        self.packets_sent.hash(h);
        self.bytes_sent.hash(h);
        self.packets_dropped.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> NetworkConfig {
        NetworkConfig { jitter: SimDuration::ZERO, ..NetworkConfig::ethernet_100mbps() }
    }

    fn quiet_net() -> Network {
        Network::new(quiet_config(), 8, SimRng::new(1))
    }

    #[test]
    fn delivery_includes_latency_and_serialisation() {
        let mut net = quiet_net();
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000).delivery_time().unwrap();
        // 1 s of wire time + 200 us latency.
        assert_eq!(t, SimTime::from_micros(1_000_000 + 200));
    }

    #[test]
    fn senders_serialise_on_their_uplink() {
        let mut net = quiet_net();
        let first =
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_250_000).delivery_time().unwrap();
        let second =
            net.send(SimTime::ZERO, NodeId(0), NodeId(2), 1_250_000).delivery_time().unwrap();
        assert!(second > first, "second packet queues behind the first");
        // Different source does not queue.
        let other =
            net.send(SimTime::ZERO, NodeId(3), NodeId(1), 1_250_000).delivery_time().unwrap();
        assert_eq!(other, first);
    }

    #[test]
    fn loopback_is_fast_and_never_partitioned() {
        let mut net = quiet_net();
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(0), 1_000_000).delivery_time().unwrap();
        assert_eq!(t, SimTime::from_micros(30));
        assert!(!net.is_partitioned(NodeId(0), NodeId(0)));
    }

    #[test]
    fn downed_node_is_never_partitioned_from_itself() {
        // Pinned semantics: loopback is node-local IPC, so taking a
        // node's links down must not cut the node off from itself.
        let mut net = quiet_net();
        net.set_node_down(NodeId(2), true);
        assert!(!net.is_partitioned(NodeId(2), NodeId(2)));
        let t = net.send(SimTime::ZERO, NodeId(2), NodeId(2), 64).delivery_time();
        assert_eq!(t, Some(SimTime::from_micros(30)));
        // Non-loopback traffic is still cut.
        assert!(net.is_partitioned(NodeId(2), NodeId(3)));
    }

    #[test]
    fn node_down_partitions_all_traffic() {
        let mut net = quiet_net();
        net.set_node_down(NodeId(1), true);
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100), SendVerdict::Partitioned);
        assert_eq!(net.send(SimTime::ZERO, NodeId(1), NodeId(0), 100), SendVerdict::Partitioned);
        net.set_node_down(NodeId(1), false);
        assert!(net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100).delivery_time().is_some());
    }

    #[test]
    fn link_down_is_bidirectional_and_specific() {
        let mut net = quiet_net();
        net.set_link_down(NodeId(0), NodeId(1), true);
        assert!(net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(net.is_partitioned(NodeId(1), NodeId(0)));
        assert!(!net.is_partitioned(NodeId(0), NodeId(2)));
        net.set_link_down(NodeId(1), NodeId(0), false);
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn load_window_inflates_latency_then_expires() {
        let mut net = quiet_net();
        let nominal =
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000).delivery_time().unwrap();
        let mut net2 = quiet_net();
        net2.inject_load(SimTime::ZERO, SimDuration::from_secs(1), 2.0);
        let loaded =
            net2.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000).delivery_time().unwrap();
        assert!(loaded > nominal, "contention adds delay");
        // After the window expires the penalty disappears.
        let after = net2
            .send(SimTime::from_secs(2), NodeId(0), NodeId(1), 125_000)
            .delivery_time()
            .unwrap();
        assert_eq!(after - SimTime::from_secs(2), nominal - SimTime::ZERO);
    }

    #[test]
    fn drops_occur_at_configured_rate() {
        let mut net = Network::new(NetworkConfig::lossy(0.5), 8, SimRng::new(42));
        let mut dropped = 0;
        for _ in 0..1000 {
            if net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100) == SendVerdict::Dropped {
                dropped += 1;
            }
        }
        assert!((350..650).contains(&dropped), "dropped {dropped} of 1000");
        assert_eq!(net.packets_dropped(), dropped);
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = quiet_net();
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 200);
        assert_eq!(net.packets_sent(), 2);
        assert_eq!(net.bytes_sent(), 300);
    }

    #[test]
    fn reseed_resets_counters_and_keeps_link_state() {
        // Regression: counters used to survive reseed, so per-run
        // traffic stats included boot traffic.
        let mut net = Network::new(NetworkConfig::lossy(0.9), 8, SimRng::new(3));
        for _ in 0..50 {
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        }
        net.set_link_down(NodeId(0), NodeId(3), true);
        assert!(net.packets_sent() + net.packets_dropped() == 50);
        net.reseed(SimRng::new(99));
        assert_eq!(net.packets_sent(), 0);
        assert_eq!(net.bytes_sent(), 0);
        assert_eq!(net.packets_dropped(), 0);
        // Link state survives the reseed.
        assert!(net.is_partitioned(NodeId(0), NodeId(3)));
    }

    /// Two islands joined by a slow trunk: nodes 0–1 on switch A,
    /// nodes 2–3 on switch B.
    fn dumbbell() -> Topology {
        let mut b = Topology::builder(4);
        let sa = b.add_switch();
        let sb = b.add_switch();
        let uplink = LinkParams::wire(12_500_000, SimDuration::from_micros(100));
        for n in 0..2 {
            b.connect(Port::Node(NodeId(n)), Port::Switch(sa), uplink, LinkParams::instant());
        }
        for n in 2..4 {
            b.connect(Port::Node(NodeId(n)), Port::Switch(sb), uplink, LinkParams::instant());
        }
        b.connect_symmetric(
            Port::Switch(sa),
            Port::Switch(sb),
            LinkParams::wire(1_250_000, SimDuration::from_micros(500)),
        );
        b.build()
    }

    #[test]
    fn routes_cross_switches_and_accumulate_latency() {
        let mut net = Network::with_topology(dumbbell(), SimRng::new(1));
        // Same island: one serialising uplink (100 µs latency).
        let local = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 12_500).delivery_time().unwrap();
        assert_eq!(local, SimTime::from_micros(1000 + 100));
        // Cross island (from the other node, whose uplink is idle):
        // uplink (1 ms wire) + trunk (10 ms wire at a tenth the
        // bandwidth) + 100 µs + 500 µs latency.
        let far = net.send(SimTime::ZERO, NodeId(1), NodeId(2), 12_500).delivery_time().unwrap();
        assert_eq!(far, SimTime::from_micros(1000 + 10_000 + 100 + 500));
    }

    #[test]
    fn trunk_bandwidth_is_shared_by_flows_from_different_nodes() {
        let mut net = Network::with_topology(dumbbell(), SimRng::new(1));
        let first = net.send(SimTime::ZERO, NodeId(0), NodeId(2), 12_500).delivery_time().unwrap();
        // A different sender still queues behind the first flow on the
        // shared trunk — the generalisation of per-node tx_busy_until.
        let second = net.send(SimTime::ZERO, NodeId(1), NodeId(3), 12_500).delivery_time().unwrap();
        assert!(second > first, "trunk serialises concurrent flows");
        assert_eq!(second - first, SimDuration::from_micros(10_000));
    }

    #[test]
    fn severed_trunk_partitions_islands_only() {
        let mut net = Network::with_topology(dumbbell(), SimRng::new(1));
        let topo = net.topology().clone();
        let trunk =
            topo.link_between(Port::Switch(SwitchId(0)), Port::Switch(SwitchId(1))).unwrap();
        net.set_topology_link(trunk, false);
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(2), 100), SendVerdict::Partitioned);
        // Reverse direction uses the twin link, which is still up.
        assert!(net.send(SimTime::ZERO, NodeId(2), NodeId(0), 100).delivery_time().is_some());
        // Intra-island traffic is unaffected.
        assert!(net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100).delivery_time().is_some());
        net.set_topology_link(trunk, true);
        assert!(net.send(SimTime::ZERO, NodeId(0), NodeId(2), 100).delivery_time().is_some());
    }

    #[test]
    fn degraded_link_inflates_wire_time() {
        let mut net = Network::with_topology(dumbbell(), SimRng::new(1));
        let topo = net.topology().clone();
        let uplink = topo.link_between(Port::Node(NodeId(0)), Port::Switch(SwitchId(0))).unwrap();
        let nominal =
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 12_500).delivery_time().unwrap();
        net.degrade_link(uplink, 4.0);
        let t0 = SimTime::from_secs(10); // past the first send's occupancy
        let degraded = net.send(t0, NodeId(0), NodeId(1), 12_500).delivery_time().unwrap();
        assert_eq!(degraded.since(t0), SimDuration::from_micros(4000 + 100));
        assert!(degraded.since(t0) > nominal.since(SimTime::ZERO));
    }

    #[test]
    fn per_link_load_window_inflates_then_expires() {
        let mut net = Network::with_topology(dumbbell(), SimRng::new(1));
        let topo = net.topology().clone();
        let uplink = topo.link_between(Port::Node(NodeId(0)), Port::Switch(SwitchId(0))).unwrap();
        net.inject_link_load(uplink, SimTime::ZERO, SimDuration::from_secs(1), 1.0);
        let loaded = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 12_500).delivery_time().unwrap();
        assert_eq!(loaded, SimTime::from_micros(2000 + 100), "wire time doubles");
        // Another sender's uplink is unaffected.
        let other = net.send(SimTime::ZERO, NodeId(1), NodeId(0), 12_500).delivery_time().unwrap();
        assert_eq!(other, SimTime::from_micros(1000 + 100));
        // The window expires.
        let t0 = SimTime::from_secs(20);
        let after = net.send(t0, NodeId(0), NodeId(1), 12_500).delivery_time().unwrap();
        assert_eq!(after.since(t0), SimDuration::from_micros(1000 + 100));
    }

    #[test]
    fn incident_links_cover_both_directions() {
        let topo = dumbbell();
        let links = topo.incident_links(NodeId(0));
        assert_eq!(links.len(), 2, "uplink + downlink");
        for l in links {
            let spec = &topo.links()[l.0 as usize];
            assert!(
                spec.from == Port::Node(NodeId(0)) || spec.to == Port::Node(NodeId(0)),
                "incident link touches the node"
            );
        }
    }
}
