//! # ree-net — simulated cluster interconnect
//!
//! Models the 100 Mbps Ethernet of the REE testbed (paper §2, Figure 2):
//! per-node transmit serialisation (bandwidth), propagation latency with
//! bounded jitter, link partitions, and transient *contention load* — the
//! paper attributes the only actual-execution-time overhead of FTM
//! recovery to "network contention during the FTM's recovery, which lasts
//! for only 0.6–0.7 s" (§5.2). [`Network::inject_load`] reproduces exactly
//! that effect.
//!
//! The crate is payload-agnostic: [`Network::send`] computes *when* a
//! packet arrives; the OS layer owns the event queue and the payload.
//!
//! ## Example
//!
//! ```
//! use ree_net::{Network, NetworkConfig, NodeId};
//! use ree_sim::{SimRng, SimTime};
//!
//! let mut net = Network::new(NetworkConfig::ethernet_100mbps(), SimRng::new(7));
//! let verdict = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1500);
//! let at = verdict.delivery_time().expect("link is up");
//! assert!(at > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ree_sim::{SimDuration, SimRng, SimTime};
use std::collections::{HashMap, HashSet};

/// Identifies a node (board/processor) in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static parameters of the interconnect model.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// One-way propagation latency added to every packet.
    pub base_latency: SimDuration,
    /// Uniform jitter bound; each packet gets `U[0, jitter)` extra delay.
    pub jitter: SimDuration,
    /// Link bandwidth in bytes per virtual second (serialisation delay).
    pub bandwidth_bytes_per_sec: u64,
    /// Latency for messages a node sends to itself (IPC via loopback).
    pub loopback_latency: SimDuration,
    /// Probability that a packet is silently lost (reliable ARMOR
    /// messaging must mask this with retransmission).
    pub drop_probability: f64,
}

impl NetworkConfig {
    /// The REE testbed's 100 Mbps Ethernet (Figure 2): ~12.5 MB/s, 200 µs
    /// propagation, mild jitter, no background loss.
    pub fn ethernet_100mbps() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(150),
            bandwidth_bytes_per_sec: 12_500_000,
            loopback_latency: SimDuration::from_micros(30),
            drop_probability: 0.0,
        }
    }

    /// A lossy variant for stress-testing the reliable messaging layer.
    pub fn lossy(drop_probability: f64) -> Self {
        NetworkConfig { drop_probability, ..Self::ethernet_100mbps() }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::ethernet_100mbps()
    }
}

/// Outcome of handing a packet to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// The packet will arrive at the destination at the given instant.
    Delivered(SimTime),
    /// The packet was lost (random drop).
    Dropped,
    /// Source and destination are partitioned or an endpoint's link is
    /// administratively down.
    Partitioned,
}

impl SendVerdict {
    /// The delivery instant, if the packet will arrive.
    pub fn delivery_time(self) -> Option<SimTime> {
        match self {
            SendVerdict::Delivered(t) => Some(t),
            _ => None,
        }
    }
}

/// The simulated interconnect.
///
/// Tracks per-node transmit occupancy so concurrent senders experience
/// serialisation delay, plus transient load windows that model recovery
/// traffic contention.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    rng: SimRng,
    tx_busy_until: HashMap<NodeId, SimTime>,
    down_links: HashSet<(NodeId, NodeId)>,
    down_nodes: HashSet<NodeId>,
    /// (ends_at, slowdown_factor) windows of extra contention.
    load_windows: Vec<(SimTime, f64)>,
    packets_sent: u64,
    bytes_sent: u64,
    packets_dropped: u64,
}

impl Network {
    /// Creates a network with the given configuration and random stream.
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        Network {
            config,
            rng,
            tx_busy_until: HashMap::new(),
            down_links: HashSet::new(),
            down_nodes: HashSet::new(),
            load_windows: Vec::new(),
            packets_sent: 0,
            bytes_sent: 0,
            packets_dropped: 0,
        }
    }

    /// Replaces the jitter/drop random stream (warm-boot forking: each
    /// forked run re-seeds the network stream so per-run draws are a
    /// function of the run seed, not of how much traffic boot consumed).
    /// Link state, transmit occupancy, and traffic counters are kept.
    pub fn reseed(&mut self, rng: SimRng) {
        self.rng = rng;
    }

    /// Computes the delivery time of a `size_bytes` packet sent at `now`
    /// from `from` to `to`.
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, size_bytes: u64) -> SendVerdict {
        if self.is_partitioned(from, to) {
            return SendVerdict::Partitioned;
        }
        if self.config.drop_probability > 0.0
            && from != to
            && self.rng.chance(self.config.drop_probability)
        {
            self.packets_dropped += 1;
            return SendVerdict::Dropped;
        }
        self.packets_sent += 1;
        self.bytes_sent += size_bytes;

        if from == to {
            return SendVerdict::Delivered(now + self.config.loopback_latency);
        }

        // Serialisation: packets from one node queue behind each other.
        let tx_free = *self.tx_busy_until.get(&from).unwrap_or(&SimTime::ZERO);
        let start = if tx_free > now { tx_free } else { now };
        let wire = SimDuration::from_secs_f64(
            size_bytes as f64 / self.config.bandwidth_bytes_per_sec as f64,
        );
        let tx_done = start + wire;
        self.tx_busy_until.insert(from, tx_done);

        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            self.rng.uniform_duration(SimDuration::ZERO, self.config.jitter)
        };
        let contention = self.contention_penalty(now, wire + self.config.base_latency);
        SendVerdict::Delivered(tx_done + self.config.base_latency + jitter + contention)
    }

    fn contention_penalty(&mut self, now: SimTime, nominal: SimDuration) -> SimDuration {
        self.load_windows.retain(|(end, _)| *end > now);
        let factor: f64 = self.load_windows.iter().map(|(_, f)| f).sum();
        if factor > 0.0 {
            nominal.mul_f64(factor.min(8.0))
        } else {
            SimDuration::ZERO
        }
    }

    /// Registers transient contention: for `window`, every packet's
    /// latency is inflated by `slowdown` × its nominal transfer time.
    ///
    /// Used to model recovery traffic (checkpoint restore, process-image
    /// copies) competing with application MPI messages.
    pub fn inject_load(&mut self, now: SimTime, window: SimDuration, slowdown: f64) {
        self.load_windows.push((now + window, slowdown));
    }

    /// Takes a node's link down (packets to/from it are `Partitioned`).
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        if down {
            self.down_nodes.insert(node);
        } else {
            self.down_nodes.remove(&node);
        }
    }

    /// Severs or restores the (bidirectional) link between two nodes.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if down {
            self.down_links.insert(key);
        } else {
            self.down_links.remove(&key);
        }
    }

    /// True if traffic between the two nodes cannot flow.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        if self.down_nodes.contains(&a) || self.down_nodes.contains(&b) {
            return true;
        }
        if a == b {
            return false;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.down_links.contains(&key)
    }

    /// Total packets accepted for delivery.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total payload bytes accepted for delivery.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total packets randomly dropped.
    pub fn packets_dropped(&self) -> u64 {
        self.packets_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> NetworkConfig {
        NetworkConfig { jitter: SimDuration::ZERO, ..NetworkConfig::ethernet_100mbps() }
    }

    #[test]
    fn delivery_includes_latency_and_serialisation() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 12_500_000).delivery_time().unwrap();
        // 1 s of wire time + 200 us latency.
        assert_eq!(t, SimTime::from_micros(1_000_000 + 200));
    }

    #[test]
    fn senders_serialise_on_their_uplink() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        let first =
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_250_000).delivery_time().unwrap();
        let second =
            net.send(SimTime::ZERO, NodeId(0), NodeId(2), 1_250_000).delivery_time().unwrap();
        assert!(second > first, "second packet queues behind the first");
        // Different source does not queue.
        let other =
            net.send(SimTime::ZERO, NodeId(3), NodeId(1), 1_250_000).delivery_time().unwrap();
        assert_eq!(other, first);
    }

    #[test]
    fn loopback_is_fast_and_never_partitioned() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(0), 1_000_000).delivery_time().unwrap();
        assert_eq!(t, SimTime::from_micros(30));
        assert!(!net.is_partitioned(NodeId(0), NodeId(0)));
    }

    #[test]
    fn node_down_partitions_all_traffic() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        net.set_node_down(NodeId(1), true);
        assert_eq!(net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100), SendVerdict::Partitioned);
        assert_eq!(net.send(SimTime::ZERO, NodeId(1), NodeId(0), 100), SendVerdict::Partitioned);
        net.set_node_down(NodeId(1), false);
        assert!(net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100).delivery_time().is_some());
    }

    #[test]
    fn link_down_is_bidirectional_and_specific() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        net.set_link_down(NodeId(0), NodeId(1), true);
        assert!(net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(net.is_partitioned(NodeId(1), NodeId(0)));
        assert!(!net.is_partitioned(NodeId(0), NodeId(2)));
        net.set_link_down(NodeId(1), NodeId(0), false);
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn load_window_inflates_latency_then_expires() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        let nominal =
            net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000).delivery_time().unwrap();
        let mut net2 = Network::new(quiet_config(), SimRng::new(1));
        net2.inject_load(SimTime::ZERO, SimDuration::from_secs(1), 2.0);
        let loaded =
            net2.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000).delivery_time().unwrap();
        assert!(loaded > nominal, "contention adds delay");
        // After the window expires the penalty disappears.
        let after = net2
            .send(SimTime::from_secs(2), NodeId(0), NodeId(1), 125_000)
            .delivery_time()
            .unwrap();
        assert_eq!(after - SimTime::from_secs(2), nominal - SimTime::ZERO);
    }

    #[test]
    fn drops_occur_at_configured_rate() {
        let mut net = Network::new(NetworkConfig::lossy(0.5), SimRng::new(42));
        let mut dropped = 0;
        for _ in 0..1000 {
            if net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100) == SendVerdict::Dropped {
                dropped += 1;
            }
        }
        assert!((350..650).contains(&dropped), "dropped {dropped} of 1000");
        assert_eq!(net.packets_dropped(), dropped);
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = Network::new(quiet_config(), SimRng::new(1));
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 200);
        assert_eq!(net.packets_sent(), 2);
        assert_eq!(net.bytes_sent(), 300);
    }
}
