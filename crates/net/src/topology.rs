//! Interconnect topology: nodes, switches, and the directed links
//! between them.
//!
//! A [`Topology`] is immutable once built; all mutable per-link state
//! (up/down, degradation, occupancy) lives in [`crate::Network`]. Links
//! are always created in twin pairs — one per direction — so routes can
//! be mirrored exactly ([`LinkSpec::peer`]).

use crate::link::{LinkId, LinkParams};
use crate::model::{NetworkConfig, NodeId};
use ree_sim::SimDuration;

/// Identifies a switch (non-endpoint forwarding element) in a topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u16);

impl std::fmt::Display for SwitchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "switch{}", self.0)
    }
}

/// An attachment point of a link: a node port or a switch port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Port {
    /// An endpoint node.
    Node(NodeId),
    /// A forwarding switch.
    Switch(SwitchId),
}

/// One directed link of the topology.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Transmitting side.
    pub from: Port,
    /// Receiving side.
    pub to: Port,
    /// Static link parameters.
    pub params: LinkParams,
    /// The twin link carrying the reverse direction.
    pub peer: LinkId,
}

/// An immutable interconnect graph of nodes, switches, and directed
/// links, plus the loopback latency for node-local sends.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: u16,
    switches: u16,
    loopback_latency: SimDuration,
    links: Vec<LinkSpec>,
}

impl Topology {
    /// Starts building a topology over `nodes` endpoint nodes.
    pub fn builder(nodes: u16) -> TopologyBuilder {
        TopologyBuilder {
            topology: Topology {
                nodes,
                switches: 0,
                loopback_latency: SimDuration::from_micros(30),
                links: Vec::new(),
            },
        }
    }

    /// The degenerate topology [`crate::Network::new`] builds from a
    /// flat [`NetworkConfig`]: every node hangs off a single ideal
    /// switch. The uplink (node → switch) carries the configured
    /// bandwidth, latency, jitter, and loss; the downlink (switch →
    /// node) forwards instantly. A node-to-node send therefore costs
    /// exactly one serialisation on the sender's uplink plus the base
    /// latency — byte-for-byte the historical flat model.
    pub fn single_switch(nodes: u16, config: &NetworkConfig) -> Topology {
        let mut b = Topology::builder(nodes).loopback_latency(config.loopback_latency);
        let sw = b.add_switch();
        for n in 0..nodes {
            b.connect(
                Port::Node(NodeId(n)),
                Port::Switch(sw),
                LinkParams {
                    latency: config.base_latency,
                    jitter: config.jitter,
                    bandwidth_bytes_per_sec: Some(config.bandwidth_bytes_per_sec),
                    drop_probability: config.drop_probability,
                },
                LinkParams::instant(),
            );
        }
        b.build()
    }

    /// Reassembles a topology from its constituent parts — the inverse
    /// of reading it back through [`Topology::nodes`],
    /// [`Topology::switches`], [`Topology::loopback_latency`], and
    /// [`Topology::links`]. Intended for decoders that ship a topology
    /// across a process boundary; `links` must already be twin-paired
    /// the way [`TopologyBuilder::connect`] lays them out.
    ///
    /// # Panics
    ///
    /// Panics if any link references a node, switch, or peer link out of
    /// range — a decoded topology must be as well-formed as a built one.
    pub fn from_parts(
        nodes: u16,
        switches: u16,
        loopback_latency: SimDuration,
        links: Vec<LinkSpec>,
    ) -> Topology {
        let topology = Topology { nodes, switches, loopback_latency, links };
        let check = |port: Port| match port {
            Port::Node(NodeId(n)) => assert!(n < topology.nodes, "node{n} out of range"),
            Port::Switch(SwitchId(s)) => assert!(s < topology.switches, "switch{s} out of range"),
        };
        for link in &topology.links {
            check(link.from);
            check(link.to);
            assert!(
                (link.peer.0 as usize) < topology.links.len(),
                "peer link {} out of range",
                link.peer.0
            );
        }
        topology
    }

    /// Number of endpoint nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Number of switches.
    pub fn switches(&self) -> u16 {
        self.switches
    }

    /// Latency for a node's sends to itself.
    pub fn loopback_latency(&self) -> SimDuration {
        self.loopback_latency
    }

    /// All directed links, indexed by [`LinkId`].
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The directed link from `from` to `to`, if one exists.
    pub fn link_between(&self, from: Port, to: Port) -> Option<LinkId> {
        self.links.iter().position(|l| l.from == from && l.to == to).map(|i| LinkId(i as u32))
    }

    /// Every directed link with `node` at either end (the set
    /// `fail_node` takes down).
    pub fn incident_links(&self, node: NodeId) -> Vec<LinkId> {
        let port = Port::Node(node);
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == port || l.to == port)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Total vertex count (nodes then switches) for routing.
    pub(crate) fn vertices(&self) -> usize {
        self.nodes as usize + self.switches as usize
    }

    /// Dense vertex index of a port (nodes first, then switches).
    pub(crate) fn vertex(&self, port: Port) -> usize {
        match port {
            Port::Node(NodeId(n)) => n as usize,
            Port::Switch(SwitchId(s)) => self.nodes as usize + s as usize,
        }
    }
}

/// Incrementally assembles a [`Topology`].
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    topology: Topology,
}

impl TopologyBuilder {
    /// Sets the node-local loopback latency (default 30 µs).
    pub fn loopback_latency(mut self, latency: SimDuration) -> Self {
        self.topology.loopback_latency = latency;
        self
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.topology.switches);
        self.topology.switches += 1;
        id
    }

    /// Connects two ports with a twin pair of directed links: `forward`
    /// parameterises `a → b`, `backward` parameterises `b → a`.
    ///
    /// # Panics
    ///
    /// Panics if either port references a node or switch out of range.
    pub fn connect(&mut self, a: Port, b: Port, forward: LinkParams, backward: LinkParams) {
        self.check(a);
        self.check(b);
        let fwd = LinkId(self.topology.links.len() as u32);
        let bwd = LinkId(fwd.0 + 1);
        self.topology.links.push(LinkSpec { from: a, to: b, params: forward, peer: bwd });
        self.topology.links.push(LinkSpec { from: b, to: a, params: backward, peer: fwd });
    }

    /// Connects two ports symmetrically (same parameters both ways).
    pub fn connect_symmetric(&mut self, a: Port, b: Port, params: LinkParams) {
        self.connect(a, b, params, params);
    }

    fn check(&self, port: Port) {
        match port {
            Port::Node(NodeId(n)) => {
                assert!(n < self.topology.nodes, "node{n} out of range");
            }
            Port::Switch(SwitchId(s)) => {
                assert!(s < self.topology.switches, "switch{s} out of range");
            }
        }
    }

    /// Finalises the topology.
    pub fn build(self) -> Topology {
        self.topology
    }
}
