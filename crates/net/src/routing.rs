//! Static shortest-path routing, computed once at network construction.
//!
//! Routes are precomputed per ordered node pair into a flattened arena,
//! so the send path does one table lookup (O(1)) and walks the route's
//! few links — no per-send graph search. Routing is *static*: a send
//! whose route crosses a downed link is `Partitioned` rather than
//! rerouted (spacecraft buses do not converge around failures within a
//! packet's lifetime).
//!
//! Symmetry is guaranteed by construction: the path for `a → b` (`a <
//! b`) comes from a deterministic Dijkstra over link latency (ties
//! broken by hop count, then first-found in link-index order), and the
//! reverse pair reuses the same vertices via each link's twin.

use crate::link::LinkId;
use crate::model::NodeId;
use crate::topology::Topology;
use ree_sim::SimDuration;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-pair precomputed route metadata.
#[derive(Clone, Debug, Default)]
struct PairInfo {
    offset: u32,
    len: u16,
    latency: SimDuration,
    jitter: SimDuration,
    drop: f64,
}

/// Precomputed next-hop tables for every node pair.
#[derive(Clone, Debug)]
pub(crate) struct RouteTable {
    nodes: usize,
    arena: Vec<LinkId>,
    pairs: Vec<PairInfo>,
}

impl RouteTable {
    pub(crate) fn build(topology: &Topology) -> RouteTable {
        let n = topology.nodes() as usize;
        let vertices = topology.vertices();
        // Adjacency: outgoing link ids per vertex, in link-index order.
        let mut adj: Vec<Vec<LinkId>> = vec![Vec::new(); vertices];
        for (i, link) in topology.links().iter().enumerate() {
            adj[topology.vertex(link.from)].push(LinkId(i as u32));
        }

        let mut table =
            RouteTable { nodes: n, arena: Vec::new(), pairs: vec![PairInfo::default(); n * n] };
        for a in 0..n {
            let (dist, prev) = dijkstra(topology, &adj, a);
            for (b, d) in dist.iter().enumerate().take(n).skip(a + 1) {
                if d.is_none() {
                    continue; // unreachable: len stays 0
                }
                // Reconstruct a → b from the prev-link chain.
                let mut forward = Vec::new();
                let mut v = b;
                while v != a {
                    let l = prev[v].expect("reachable vertex has a prev link");
                    forward.push(l);
                    v = topology.vertex(topology.links()[l.0 as usize].from);
                }
                forward.reverse();
                // The reverse pair mirrors the same vertices via twins.
                let backward: Vec<LinkId> =
                    forward.iter().rev().map(|l| topology.links()[l.0 as usize].peer).collect();
                table.insert(topology, a, b, forward);
                table.insert(topology, b, a, backward);
            }
        }
        table
    }

    fn insert(&mut self, topology: &Topology, from: usize, to: usize, route: Vec<LinkId>) {
        let offset = self.arena.len() as u32;
        let len = route.len() as u16;
        let mut latency = SimDuration::ZERO;
        let mut jitter = SimDuration::ZERO;
        // Combined loss 1 − Π(1 − pᵢ); kept exact (no float round-trip)
        // when at most one hop is lossy, which is what the degenerate
        // single-switch topology needs for byte-compatibility.
        let mut lossy: Vec<f64> = Vec::new();
        for l in &route {
            let params = &topology.links()[l.0 as usize].params;
            latency += params.latency;
            jitter += params.jitter;
            if params.drop_probability > 0.0 {
                lossy.push(params.drop_probability);
            }
        }
        let drop = match lossy.as_slice() {
            [] => 0.0,
            [p] => *p,
            ps => 1.0 - ps.iter().fold(1.0, |acc, p| acc * (1.0 - p)),
        };
        self.arena.extend(route);
        self.pairs[from * self.nodes + to] = PairInfo { offset, len, latency, jitter, drop };
    }

    fn pair(&self, from: NodeId, to: NodeId) -> Option<&PairInfo> {
        let (f, t) = (from.0 as usize, to.0 as usize);
        if f >= self.nodes || t >= self.nodes {
            return None;
        }
        let info = &self.pairs[f * self.nodes + t];
        if info.len == 0 {
            None
        } else {
            Some(info)
        }
    }

    /// The static route, if the pair is connected.
    pub(crate) fn route(&self, from: NodeId, to: NodeId) -> Option<&[LinkId]> {
        self.pair(from, to)
            .map(|p| &self.arena[p.offset as usize..p.offset as usize + p.len as usize])
    }

    /// Sum of link latencies along the route.
    pub(crate) fn latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.pair(from, to).map(|p| p.latency).unwrap_or(SimDuration::ZERO)
    }

    /// Sum of link jitter bounds along the route.
    pub(crate) fn jitter(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.pair(from, to).map(|p| p.jitter).unwrap_or(SimDuration::ZERO)
    }

    /// Combined drop probability along the route.
    pub(crate) fn drop(&self, from: NodeId, to: NodeId) -> f64 {
        self.pair(from, to).map(|p| p.drop).unwrap_or(0.0)
    }
}

/// Deterministic Dijkstra from `source` over link latency (µs), ties
/// broken by hop count; among equal (cost, hops) the first relaxation in
/// link-index order wins and later equal candidates never replace it.
#[allow(clippy::type_complexity)]
fn dijkstra(
    topology: &Topology,
    adj: &[Vec<LinkId>],
    source: usize,
) -> (Vec<Option<(u64, u32)>>, Vec<Option<LinkId>>) {
    let vertices = topology.vertices();
    let mut dist: Vec<Option<(u64, u32)>> = vec![None; vertices];
    let mut prev: Vec<Option<LinkId>> = vec![None; vertices];
    let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
    dist[source] = Some((0, 0));
    heap.push(Reverse((0, 0, source)));
    while let Some(Reverse((cost, hops, v))) = heap.pop() {
        if dist[v] != Some((cost, hops)) {
            continue; // stale entry
        }
        for &l in &adj[v] {
            let link = &topology.links()[l.0 as usize];
            let to = topology.vertex(link.to);
            let cand = (cost + link.params.latency.as_micros(), hops + 1);
            if dist[to].map(|d| cand < d).unwrap_or(true) {
                dist[to] = Some(cand);
                prev[to] = Some(l);
                heap.push(Reverse((cand.0, cand.1, to)));
            }
        }
    }
    (dist, prev)
}
