//! Core interconnect vocabulary: node identity, the legacy flat-model
//! configuration, and the verdict a send produces.

use ree_sim::{SimDuration, SimTime};

/// Identifies a node (board/processor) in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static parameters of the flat interconnect model.
///
/// Since the topology refactor this is a *description of a degenerate
/// single-switch topology* ([`crate::Topology::single_switch`]): every
/// node hangs off one ideal switch by an uplink carrying these
/// parameters. [`crate::Network::new`] builds exactly that topology, so
/// existing configurations reproduce the historical flat-model delivery
/// times byte-for-byte.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// One-way propagation latency added to every packet.
    pub base_latency: SimDuration,
    /// Uniform jitter bound; each packet gets `U[0, jitter)` extra delay.
    pub jitter: SimDuration,
    /// Link bandwidth in bytes per virtual second (serialisation delay).
    pub bandwidth_bytes_per_sec: u64,
    /// Latency for messages a node sends to itself (IPC via loopback).
    pub loopback_latency: SimDuration,
    /// Probability that a packet is silently lost (reliable ARMOR
    /// messaging must mask this with retransmission).
    pub drop_probability: f64,
}

impl NetworkConfig {
    /// The REE testbed's 100 Mbps Ethernet (Figure 2): ~12.5 MB/s, 200 µs
    /// propagation, mild jitter, no background loss.
    pub fn ethernet_100mbps() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::from_micros(150),
            bandwidth_bytes_per_sec: 12_500_000,
            loopback_latency: SimDuration::from_micros(30),
            drop_probability: 0.0,
        }
    }

    /// A lossy variant for stress-testing the reliable messaging layer.
    pub fn lossy(drop_probability: f64) -> Self {
        NetworkConfig { drop_probability, ..Self::ethernet_100mbps() }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::ethernet_100mbps()
    }
}

/// Outcome of handing a packet to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// The packet will arrive at the destination at the given instant.
    Delivered(SimTime),
    /// The packet was lost (random drop).
    Dropped,
    /// No usable route: endpoints partitioned, a link on the static
    /// route is down, or an endpoint's links are administratively down.
    Partitioned,
}

impl SendVerdict {
    /// The delivery instant, if the packet will arrive.
    pub fn delivery_time(self) -> Option<SimTime> {
        match self {
            SendVerdict::Delivered(t) => Some(t),
            _ => None,
        }
    }
}
