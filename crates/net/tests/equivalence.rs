//! The degenerate single-switch topology must reproduce the historical
//! flat interconnect model **byte-for-byte** — same delivery instants,
//! same verdicts, same RNG draw order — for every traffic pattern the
//! flat model could express. This is the contract that lets every
//! pre-topology trace fixture pass un-rebaselined.
//!
//! The flat model is replicated inline below exactly as it existed
//! before the refactor: one transmit-occupancy frontier per sender, the
//! configured base latency on every packet, one drop draw (when lossy)
//! then one jitter draw (when jittery) per packet, administrative
//! node/pair blocks, and network-wide contention windows inflating the
//! nominal transfer time.

use ree_net::{Network, NetworkConfig, NodeId, SendVerdict};
use ree_sim::{SimDuration, SimRng, SimTime};
use std::collections::HashSet;

/// The pre-topology flat model, replicated verbatim.
struct FlatModel {
    config: NetworkConfig,
    rng: SimRng,
    tx_busy_until: Vec<SimTime>,
    down_links: HashSet<(NodeId, NodeId)>,
    down_nodes: HashSet<NodeId>,
    load_windows: Vec<(SimTime, f64)>,
}

impl FlatModel {
    fn new(config: NetworkConfig, nodes: u16, rng: SimRng) -> Self {
        FlatModel {
            config,
            rng,
            tx_busy_until: vec![SimTime::ZERO; nodes as usize],
            down_links: HashSet::new(),
            down_nodes: HashSet::new(),
            load_windows: Vec::new(),
        }
    }

    fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        if self.down_nodes.contains(&a) || self.down_nodes.contains(&b) {
            return true;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.down_links.contains(&key)
    }

    fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if down {
            self.down_links.insert(key);
        } else {
            self.down_links.remove(&key);
        }
    }

    fn set_node_down(&mut self, node: NodeId, down: bool) {
        if down {
            self.down_nodes.insert(node);
        } else {
            self.down_nodes.remove(&node);
        }
    }

    fn inject_load(&mut self, now: SimTime, window: SimDuration, slowdown: f64) {
        self.load_windows.push((now + window, slowdown));
    }

    fn contention_penalty(&mut self, now: SimTime, nominal: SimDuration) -> SimDuration {
        self.load_windows.retain(|(end, _)| *end > now);
        let factor: f64 = self.load_windows.iter().map(|(_, f)| f).sum();
        if factor > 0.0 {
            nominal.mul_f64(factor.min(8.0))
        } else {
            SimDuration::ZERO
        }
    }

    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, size_bytes: u64) -> SendVerdict {
        if from == to {
            return SendVerdict::Delivered(now + self.config.loopback_latency);
        }
        if self.is_partitioned(from, to) {
            return SendVerdict::Partitioned;
        }
        if self.config.drop_probability > 0.0 && self.rng.chance(self.config.drop_probability) {
            return SendVerdict::Dropped;
        }
        let wire = SimDuration::from_secs_f64(
            size_bytes as f64 / self.config.bandwidth_bytes_per_sec as f64,
        );
        let busy = &mut self.tx_busy_until[from.0 as usize];
        let start = if *busy > now { *busy } else { now };
        let done = start + wire;
        *busy = done;
        let arrival = done + self.config.base_latency;
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            self.rng.uniform_duration(SimDuration::ZERO, self.config.jitter)
        };
        let contention = self.contention_penalty(now, wire + self.config.base_latency);
        SendVerdict::Delivered(arrival + jitter + contention)
    }
}

/// Drives the flat replica and the degenerate topology through the same
/// seeded traffic (sends, blocks, node failures, load windows) and
/// demands identical verdicts at every step.
fn drive_equivalence(config: NetworkConfig, seed: u64, steps: u32) {
    const NODES: u16 = 6;
    let mut flat = FlatModel::new(config.clone(), NODES, SimRng::new(seed));
    let mut topo = Network::new(config, NODES, SimRng::new(seed));
    let mut traffic = SimRng::new(seed ^ 0xC0FFEE);
    let mut now = SimTime::ZERO;
    for step in 0..steps {
        now += SimDuration::from_micros(traffic.range_u64(0, 50_000));
        let a = NodeId(traffic.below(NODES as u64) as u16);
        let b = NodeId(traffic.below(NODES as u64) as u16);
        match traffic.below(10) {
            0 => {
                let down = traffic.chance(0.5);
                flat.set_link_down(a, b, down);
                topo.set_link_down(a, b, down);
            }
            1 => {
                let down = traffic.chance(0.4);
                flat.set_node_down(a, down);
                topo.set_node_down(a, down);
            }
            2 => {
                let window = SimDuration::from_micros(traffic.range_u64(1_000, 2_000_000));
                let slowdown = traffic.f64() * 3.0;
                flat.inject_load(now, window, slowdown);
                topo.inject_load(now, window, slowdown);
            }
            _ => {
                let size = traffic.range_u64(1, 2_000_000);
                let f = flat.send(now, a, b, size);
                let t = topo.send(now, a, b, size);
                assert_eq!(f, t, "step {step}: {a}->{b} size {size} at {now:?}");
            }
        }
    }
}

#[test]
fn degenerate_topology_matches_flat_model_quiet() {
    let quiet = NetworkConfig { jitter: SimDuration::ZERO, ..NetworkConfig::ethernet_100mbps() };
    for seed in 0..8 {
        drive_equivalence(quiet.clone(), seed, 400);
    }
}

#[test]
fn degenerate_topology_matches_flat_model_with_jitter() {
    // Jittery sends exercise RNG draw *order*: one jitter draw per
    // delivered packet, none for partitioned ones.
    for seed in 0..8 {
        drive_equivalence(NetworkConfig::ethernet_100mbps(), seed, 400);
    }
}

#[test]
fn degenerate_topology_matches_flat_model_lossy() {
    // Lossy sends add the drop draw before the jitter draw; a single
    // skipped or reordered draw desynchronises every later delivery.
    for seed in 0..8 {
        drive_equivalence(NetworkConfig::lossy(0.3), seed, 400);
    }
}
