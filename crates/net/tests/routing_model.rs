//! Property-based checks of the routing model over randomly generated
//! chain topologies (a line of switches, nodes hung off arbitrary
//! switches): delivery time is monotone in packet size, reverse routes
//! mirror forward routes via link twins, and severing a trunk (the
//! min-cut of a chain) partitions exactly the node pairs whose route
//! crossed it.

use proptest::prelude::*;
use ree_net::{LinkParams, Network, NodeId, Port, SendVerdict, SwitchId, Topology};
use ree_sim::{SimDuration, SimRng, SimTime};

/// A line of `switches` switches with a serialising trunk between each
/// consecutive pair; node `n` hangs off switch `assign[n] % switches`.
/// Always connected.
fn chain_topology(assign: &[u16], switches: u16, trunk_latency_us: u64) -> Topology {
    let mut b = Topology::builder(assign.len() as u16);
    let sws: Vec<SwitchId> = (0..switches).map(|_| b.add_switch()).collect();
    let uplink = LinkParams::wire(12_500_000, SimDuration::from_micros(100));
    for (n, &s) in assign.iter().enumerate() {
        b.connect(
            Port::Node(NodeId(n as u16)),
            Port::Switch(sws[(s % switches) as usize]),
            uplink,
            LinkParams::instant(),
        );
    }
    let trunk = LinkParams::wire(1_250_000, SimDuration::from_micros(trunk_latency_us));
    for w in sws.windows(2) {
        b.connect_symmetric(Port::Switch(w[0]), Port::Switch(w[1]), trunk);
    }
    b.build()
}

proptest! {
    /// With zero jitter, a bigger packet never arrives before a smaller
    /// one sent from the same fresh network state: every hop's wire time
    /// is non-decreasing in size and latency is size-independent.
    #[test]
    fn delivery_time_is_monotone_in_size(
        assign in proptest::collection::vec(0u16..4, 2..8),
        switches in 1u16..4,
        trunk_latency_us in 1u64..2_000,
        from in 0u16..8, to in 0u16..8,
        small in 1u64..1_000_000,
        extra in 0u64..1_000_000,
    ) {
        let n = assign.len() as u16;
        let (from, to) = (NodeId(from % n), NodeId(to % n));
        let topology = chain_topology(&assign, switches, trunk_latency_us);
        let fresh = Network::with_topology(topology, SimRng::new(1));
        let t_small = fresh.clone().send(SimTime::ZERO, from, to, small).delivery_time();
        let t_large = fresh.clone().send(SimTime::ZERO, from, to, small + extra).delivery_time();
        let (t_small, t_large) = (t_small.unwrap(), t_large.unwrap());
        prop_assert!(
            t_large >= t_small,
            "size {} delivered at {:?} but size {} at {:?}",
            small, t_small, small + extra, t_large,
        );
    }

    /// The reverse route of every connected pair walks the same vertices
    /// back through each link's twin, in reverse order.
    #[test]
    fn routes_are_symmetric_via_twins(
        assign in proptest::collection::vec(0u16..4, 2..8),
        switches in 1u16..4,
        trunk_latency_us in 1u64..2_000,
    ) {
        let topology = chain_topology(&assign, switches, trunk_latency_us);
        let net = Network::with_topology(topology.clone(), SimRng::new(1));
        let n = assign.len() as u16;
        for a in 0..n {
            for b in (a + 1)..n {
                let forward = net.route(NodeId(a), NodeId(b))
                    .expect("chain topologies are connected");
                let backward = net.route(NodeId(b), NodeId(a))
                    .expect("reverse pair is connected too");
                let mirrored: Vec<_> = forward
                    .iter()
                    .rev()
                    .map(|l| topology.links()[l.0 as usize].peer)
                    .collect();
                prop_assert_eq!(
                    backward, &mirrored[..],
                    "route {}->{} is not the twin mirror of {}->{}", b, a, a, b,
                );
            }
        }
    }

    /// Severing one trunk (both directions) is a min-cut of the chain:
    /// exactly the pairs on opposite sides report `Partitioned`, and
    /// every same-side pair still delivers.
    #[test]
    fn severed_min_cut_partitions_exactly_the_crossing_pairs(
        assign in proptest::collection::vec(0u16..4, 2..8),
        switches in 2u16..4,
        trunk_latency_us in 1u64..2_000,
        cut in 0u16..3,
    ) {
        let cut = cut % (switches - 1);
        let topology = chain_topology(&assign, switches, trunk_latency_us);
        let mut net = Network::with_topology(topology.clone(), SimRng::new(1));
        let forward = topology
            .link_between(Port::Switch(SwitchId(cut)), Port::Switch(SwitchId(cut + 1)))
            .expect("trunk exists");
        let backward = topology.links()[forward.0 as usize].peer;
        net.set_topology_link(forward, false);
        net.set_topology_link(backward, false);
        let side = |n: usize| (assign[n] % switches) <= cut;
        for a in 0..assign.len() {
            for b in 0..assign.len() {
                if a == b {
                    continue;
                }
                let verdict =
                    net.send(SimTime::ZERO, NodeId(a as u16), NodeId(b as u16), 100);
                if side(a) != side(b) {
                    prop_assert_eq!(
                        verdict, SendVerdict::Partitioned,
                        "{}->{} crosses the severed trunk", a, b,
                    );
                } else {
                    prop_assert!(
                        verdict.delivery_time().is_some(),
                        "{}->{} stays on one side yet got {:?}", a, b, verdict,
                    );
                }
            }
        }
    }
}
