//! Table 7: untargeted heap injections into the SIFT processes (§7.1).
//!
//! "All regions of the target's heap memory were candidates for error
//! injection. Each of the 100 runs per target involved several injections
//! to bring about a crash or hang failure … only about half of the 100
//! runs per target showed any effects."

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, RunPlan, RunResult, Target};
use ree_sim::SimTime;
use ree_stats::{Summary, TableBuilder};

/// One row of Table 7.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Injection target.
    pub target: Target,
    /// Runs in which the injections manifested as a failure.
    pub failures: u64,
    /// Runs that recovered.
    pub successful_recoveries: u64,
    /// Total injections performed (the paper reports ~6,700 across all
    /// targets).
    pub injections: u64,
    /// Perceived execution time.
    pub perceived: Summary,
    /// Actual execution time.
    pub actual: Summary,
    /// SIFT recovery time.
    pub recovery: Summary,
    /// System failures.
    pub system_failures: u64,
}

/// Full Table 7 output.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// One row per SIFT target.
    pub rows: Vec<Table7Row>,
}

impl Table7 {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "TARGET",
            "FAILURES",
            "SUC. REC.",
            "INJECTIONS",
            "PERCEIVED (s)",
            "ACTUAL (s)",
            "RECOVERY (s)",
        ])
        .with_title("Table 7: heap injection results (SIFT processes)");
        for row in &self.rows {
            t.row(vec![
                row.target.to_string(),
                row.failures.to_string(),
                row.successful_recoveries.to_string(),
                row.injections.to_string(),
                row.perceived.display_pm(),
                row.actual.display_pm(),
                row.recovery.display_pm(),
            ]);
        }
        t.render()
    }
}

fn summarize(target: Target, results: &[RunResult]) -> Table7Row {
    let mut row = Table7Row {
        target,
        failures: 0,
        successful_recoveries: 0,
        injections: 0,
        perceived: Summary::new(),
        actual: Summary::new(),
        recovery: Summary::new(),
        system_failures: 0,
    };
    for r in results {
        row.injections += r.injections as u64;
        if r.induced.is_some() {
            row.failures += 1;
            if r.recovered() {
                row.successful_recoveries += 1;
            }
        }
        if r.system_failure.is_some() {
            row.system_failures += 1;
        }
        if r.injections > 0 && r.completed {
            if let Some(p) = r.perceived {
                row.perceived.push(p);
            }
            if let Some(a) = r.actual {
                row.actual.push(a);
            }
        }
        for rec in &r.recovery_times {
            row.recovery.push(*rec);
        }
    }
    row
}

/// Runs the Table 7 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table7 {
    let runs = effort.scale(100);
    let mut rows = Vec::new();
    for target in [Target::Ftm, Target::ExecArmor, Target::Heartbeat] {
        let plan = RunPlan {
            scenario: Scenario::single_texture(0),
            target: target.clone(),
            model: ErrorModel::Heap,
            timeout: SimTime::from_secs(400),
            net_faults: vec![],
        };
        let seed = seed0 ^ (target.to_string().len() as u64) << 16;
        let results = Campaign::new(&plan).runs(runs).seed(seed).collect();
        rows.push(summarize(target, &results));
    }
    Table7 { rows }
}
