//! Experiment sizing: tests run scaled-down campaigns, the `repro`
//! binary runs paper-scale ones.

/// How much compute to spend reproducing an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Small run counts for CI/tests (minutes of virtual time).
    Quick,
    /// Paper-scale run counts (the full tables).
    Paper,
}

impl Effort {
    /// Scales a paper-scale run count.
    pub fn scale(&self, paper_runs: u32) -> u32 {
        match self {
            Effort::Paper => paper_runs,
            Effort::Quick => (paper_runs / 10).clamp(4, 30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling() {
        assert_eq!(Effort::Paper.scale(100), 100);
        assert_eq!(Effort::Quick.scale(100), 10);
        assert_eq!(Effort::Quick.scale(1000), 30);
        assert_eq!(Effort::Quick.scale(30), 4);
    }
}
