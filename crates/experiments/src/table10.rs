//! Table 10: 1,000 single heap flips into the application (§7.3).
//!
//! Paper: 981 no effect ("data on the heap were mostly floating point
//! matrices, and single-bit flips … often did not substantially change
//! the value"), 10 incorrect output, 9 crashes, 0 hangs.

use crate::effort::Effort;
use ree_apps::{Scenario, Verdict};
use ree_inject::{Campaign, ErrorModel, FailureClass, RunPlan, Target};
use ree_os::HeapTarget;
use ree_sim::SimTime;
use ree_stats::TableBuilder;

/// Table 10 outcome counts.
#[derive(Debug, Clone, Default)]
pub struct Table10 {
    /// Runs with a flip injected.
    pub injected: u64,
    /// No observable effect (correct output, no restart).
    pub no_effect: u64,
    /// Output outside tolerance limits.
    pub incorrect_output: u64,
    /// Application crash (recovered by the SIFT environment).
    pub crash: u64,
    /// Application hang.
    pub hang: u64,
}

impl Table10 {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec!["OUTCOME", "COUNT", "PAPER (of 1000)"]).with_title(
            format!("Table 10: {} heap injections into the application", self.injected),
        );
        t.row(vec!["No effect (correct output)".into(), self.no_effect.to_string(), "981".into()]);
        t.row(vec!["Incorrect output".into(), self.incorrect_output.to_string(), "10".into()]);
        t.row(vec!["Crash".into(), self.crash.to_string(), "9".into()]);
        t.row(vec!["Hang".into(), self.hang.to_string(), "0".into()]);
        t.render()
    }
}

/// Runs the Table 10 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table10 {
    let runs = match effort {
        Effort::Paper => 1000,
        Effort::Quick => 60,
    };
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::App,
        model: ErrorModel::HeapSingle(HeapTarget::Any),
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    };
    let results = Campaign::new(&plan).runs(runs).seed(seed0).collect();
    let mut out = Table10::default();
    for r in &results {
        if r.injections == 0 {
            continue;
        }
        out.injected += 1;
        if matches!(r.induced, Some(FailureClass::Hang)) {
            out.hang += 1;
        } else if matches!(r.induced, Some(FailureClass::SegFault)) || r.restarts > 0 {
            out.crash += 1;
        } else if r.completed && r.output == Verdict::Incorrect {
            out.incorrect_output += 1;
        } else if r.completed {
            out.no_effect += 1;
        }
    }
    out
}
