//! Regenerates the paper's tables and figures.
//!
//! Usage: `repro [--quick] [--seed N] [--workers N] [--chaos MODE]
//! <table1..table12|table4a|fig6..fig10|fig6a|partition|mc|mc-selftest|dist|dist-selftest|all>`
//!
//! `table4a` and `fig6a` are the adaptive (confidence-targeted)
//! variants of table4 and fig6: each cell runs until its recovery-rate
//! Wilson interval meets the stopping-rule target instead of a fixed
//! run count. `partition` is the partition-during-recovery sweep
//! (recovery rate vs partition duration), also adaptive.
//!
//! `dist` runs the register sweep across `--workers N` supervised
//! worker subprocesses (optionally with `--chaos
//! kill|hang|corrupt|truncate|poison` self-injected at a seeded
//! instant) and byte-diffs the aggregate against the single-process
//! run, exiting non-zero on divergence. `dist-selftest` sweeps the full
//! 1/2/4-workers × chaos-mode matrix. The supervisor re-executes this
//! binary as its workers (`repro worker` describes the mechanism).

use ree_experiments::{
    dist, fig9, figures, mc, partition, table10, table11, table3, table4, table5, table6, table7,
    table8, Effort,
};

fn main() {
    // A supervisor spawn: become a worker and never return. Must run
    // before any argument parsing.
    ree_dist::run_worker_if_spawned();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Paper };
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let seed: u64 = flag_value("--seed").and_then(|s| s.parse().ok()).unwrap_or(20020401); // CRHC-02-02, April 2002
    let workers: usize = flag_value("--workers").and_then(|s| s.parse().ok()).unwrap_or(4);
    let chaos: Option<ree_dist::ChaosMode> = match flag_value("--chaos") {
        Some(s) => match ree_dist::ChaosMode::parse(&s) {
            Some(mode) => Some(mode),
            None => {
                eprintln!("unknown --chaos mode {s:?} (kill|hang|corrupt|truncate|poison)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // The experiment name is the first non-flag argument that is not a
    // flag's value.
    let value_slots: Vec<usize> = ["--seed", "--workers", "--chaos"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == *f).map(|i| i + 1))
        .collect();
    let what = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && !value_slots.contains(i))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_owned());

    let run_one = |name: &str| match name {
        "table1" => {
            println!("Table 1 (application lifecycle) is demonstrated by `examples/quickstart.rs` and tests/lifecycle.rs;");
            println!("run `cargo run --example quickstart` to see the step-by-step trace.");
        }
        "table2" => {
            println!("Table 2: error models implemented in ree-inject::ErrorModel:");
            println!("  SIGINT        - clean crash (target terminates)");
            println!("  SIGSTOP       - clean hang (threads suspended)");
            println!("  Register      - bit flips until a failure is induced");
            println!("  Text segment  - bit flips until a failure is induced");
            println!("  Heap          - bit flips in allocated heap regions");
        }
        "table3" => print!("{}", table3::run(effort, seed).render()),
        "table4" => print!("{}", table4::run(effort, seed).render()),
        "table4a" => {
            print!("{}", table4::run_adaptive(&table4::adaptive_rule(effort), seed).render())
        }
        "table5" => print!("{}", table5::run(effort, seed).render()),
        "table6" => print!("{}", table6::run(effort, seed).render()),
        "table7" => print!("{}", table7::run(effort, seed).render()),
        "table8" => print!("{}", table8::run(effort, seed).render_table8()),
        "table9" => print!("{}", table8::run(effort, seed).render_table9()),
        "table10" => print!("{}", table10::run(effort, seed).render()),
        "table11" => print!("{}", table11::run(effort, seed).0.render()),
        "table12" => print!("{}", table11::run(effort, seed).1.render()),
        "fig6" => print!("{}", figures::fig6(effort, seed).render()),
        "fig6a" => {
            print!("{}", figures::fig6_adaptive(&table4::adaptive_rule(effort), seed).render())
        }
        "fig7" => print!("{}", figures::fig7(effort, seed).render()),
        "fig8" => print!("{}", figures::fig8(effort, seed).render()),
        "fig9" => print!("{}", fig9::run(seed).render()),
        "fig10" => print!("{}", figures::fig10(seed).render()),
        "partition" => print!("{}", partition::run(effort, seed).render()),
        "mc" => print!("{}", mc::run(effort, seed)),
        "mc-selftest" => print!("{}", mc::selftest(effort, seed)),
        "dist" => match dist::run_one(effort, seed, workers, chaos, None) {
            Ok(outcome) => {
                print!("{}", dist::render(&outcome));
                if !outcome.matches() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("distributed sweep failed: {e}");
                std::process::exit(1);
            }
        },
        "dist-selftest" => {
            let (rendered, all_ok) = dist::selftest(effort, seed, None);
            print!("{rendered}");
            if !all_ok {
                std::process::exit(1);
            }
        }
        "worker" => {
            eprintln!(
                "repro worker: workers are spawned by the supervisor (repro dist), which \
                 re-executes this binary with {}/{} set in the environment; they are not \
                 started by hand",
                ree_dist::worker::ENV_WORKER_ID,
                ree_dist::worker::ENV_INCARNATION,
            );
            std::process::exit(2);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "usage: repro [--quick] [--seed N] [--workers N] [--chaos MODE] \
                 <table1..table12|table4a|fig6..fig10|fig6a|partition|mc|mc-selftest|\
                 dist|dist-selftest|all>"
            );
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "table2",
            "table3",
            "table4",
            "table4a",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "table10",
            "table11",
            "table12",
            "fig6",
            "fig6a",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "partition",
        ] {
            println!("==== {name} ====");
            run_one(name);
            println!();
        }
    } else {
        run_one(&what);
    }
}
