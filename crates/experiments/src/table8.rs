//! Tables 8 & 9: targeted single data-flip injections into the five FTM
//! elements (§7.2).
//!
//! One non-pointer flip per run, 100 runs per element. Table 8 classifies
//! the system failures by phase; Table 9 measures assertion efficiency:
//! "assertions coupled with the incremental microcheckpointing were able
//! to prevent system failures in 58% of the cases (27 of 64 runs in which
//! assertions fired)" — with `node_mgmt` the standout weak point (its
//! translate-to-daemon-0 default escapes detection until too late).

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, RunPlan, RunResult, SystemFailure, Target};
use ree_os::HeapTarget;
use ree_sim::SimTime;
use ree_stats::TableBuilder;

/// The five Table 8 elements.
pub const ELEMENTS: [&str; 5] =
    ["mgr_armor_info", "exec_armor_info", "app_param", "mgr_app_detect", "node_mgmt"];

/// Per-element outcome counts.
#[derive(Debug, Clone, Default)]
pub struct ElementOutcomes {
    /// Element name.
    pub element: String,
    /// Runs executed with a successful flip.
    pub runs: u64,
    /// System failures: unable to register daemons.
    pub sf_register: u64,
    /// System failures: unable to install Execution ARMORs.
    pub sf_install: u64,
    /// System failures: unable to start the application.
    pub sf_start: u64,
    /// System failures: unable to recognise completion / uninstall.
    pub sf_uninstall: u64,
    /// Other system failures (did not complete).
    pub sf_other: u64,
    /// Table 9 column: system failures in runs where no assertion fired.
    pub sf_without_assertion: u64,
    /// Table 9 column: system failures although an assertion fired.
    pub sf_after_assertion: u64,
    /// Table 9 column: assertion fired and the run recovered.
    pub recovered_after_assertion: u64,
}

impl ElementOutcomes {
    /// Total system failures for this element.
    pub fn total_system_failures(&self) -> u64 {
        self.sf_register + self.sf_install + self.sf_start + self.sf_uninstall + self.sf_other
    }

    /// Total runs in which an assertion fired.
    pub fn assertions_fired(&self) -> u64 {
        self.sf_after_assertion + self.recovered_after_assertion
    }
}

/// Combined Tables 8+9 output.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// One entry per element.
    pub elements: Vec<ElementOutcomes>,
}

impl Table8 {
    /// Assertion efficiency: recovered-after-assertion / assertions
    /// fired (paper: 27/64 ≈ 42% system failures *prevented* is phrased
    /// inversely; the recovered share is 37/64 ≈ 58%).
    pub fn assertion_efficiency(&self) -> f64 {
        let fired: u64 = self.elements.iter().map(ElementOutcomes::assertions_fired).sum();
        let recovered: u64 = self.elements.iter().map(|e| e.recovered_after_assertion).sum();
        if fired == 0 {
            0.0
        } else {
            recovered as f64 / fired as f64
        }
    }

    /// Renders Table 8.
    pub fn render_table8(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "ELEMENT",
            "RUNS",
            "NO-REGISTER",
            "NO-INSTALL",
            "NO-START",
            "NO-UNINSTALL",
            "OTHER",
            "TOTAL SF",
        ])
        .with_title("Table 8: system failures from targeted FTM heap injections");
        for e in &self.elements {
            t.row(vec![
                e.element.clone(),
                e.runs.to_string(),
                e.sf_register.to_string(),
                e.sf_install.to_string(),
                e.sf_start.to_string(),
                e.sf_uninstall.to_string(),
                e.sf_other.to_string(),
                e.total_system_failures().to_string(),
            ]);
        }
        t.render()
    }

    /// Renders Table 9.
    pub fn render_table9(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "ELEMENT",
            "SF WITHOUT ASSERTION",
            "SF AFTER ASSERTION",
            "RECOVERED AFTER ASSERTION",
        ])
        .with_title("Table 9: efficiency of assertion checks");
        for e in &self.elements {
            t.row(vec![
                e.element.clone(),
                e.sf_without_assertion.to_string(),
                e.sf_after_assertion.to_string(),
                e.recovered_after_assertion.to_string(),
            ]);
        }
        format!(
            "{}\nassertion efficiency: {:.0}% of assertion-flagged runs recovered (paper: 58%)\n",
            t.render(),
            self.assertion_efficiency() * 100.0
        )
    }
}

fn classify(results: &[RunResult], element: &str) -> ElementOutcomes {
    let mut out = ElementOutcomes { element: element.to_owned(), ..Default::default() };
    for r in results {
        if r.injections == 0 {
            continue;
        }
        out.runs += 1;
        match r.system_failure {
            Some(SystemFailure::UnableToRegisterDaemons) => out.sf_register += 1,
            Some(SystemFailure::UnableToInstallExecArmors) => out.sf_install += 1,
            Some(SystemFailure::UnableToStartApplication) => out.sf_start += 1,
            Some(SystemFailure::UnableToRecognizeCompletion) => out.sf_uninstall += 1,
            Some(SystemFailure::AppDidNotComplete) => out.sf_other += 1,
            None => {}
        }
        let failed = r.system_failure.is_some();
        match (r.assertion_fired, failed) {
            (false, true) => out.sf_without_assertion += 1,
            (true, true) => out.sf_after_assertion += 1,
            (true, false) => out.recovered_after_assertion += 1,
            (false, false) => {}
        }
    }
    out
}

/// Runs the Tables 8/9 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table8 {
    let runs = effort.scale(100);
    let mut elements = Vec::new();
    for element in ELEMENTS {
        let plan = RunPlan {
            scenario: Scenario::single_texture(0),
            target: Target::Ftm,
            model: ErrorModel::HeapSingle(HeapTarget::Region(element.to_owned())),
            timeout: SimTime::from_secs(360),
            net_faults: vec![],
        };
        let seed = seed0 ^ element.bytes().map(|b| b as u64).sum::<u64>();
        let results = Campaign::new(&plan).runs(runs).seed(seed).collect();
        elements.push(classify(&results, element));
    }
    Table8 { elements }
}
