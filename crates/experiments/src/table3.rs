//! Table 3: baseline application execution time without fault injection.
//!
//! Paper values: outside SIFT 75.71 ± 0.65 (perceived = actual); inside
//! SIFT 77.97 ± 0.48 perceived, 75.74 ± 0.48 actual — i.e. the SIFT
//! environment "adds less than two seconds to the perceived application
//! execution time" and "the actual execution time overhead is not
//! statistically significant".

use crate::effort::Effort;
use ree_apps::{run_without_sift, Scenario};
use ree_sim::SimTime;
use ree_stats::{Summary, TableBuilder};

/// Results of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// No-SIFT execution time (perceived == actual).
    pub no_sift: Summary,
    /// Perceived time under SIFT.
    pub sift_perceived: Summary,
    /// Actual time under SIFT.
    pub sift_actual: Summary,
}

impl Table3 {
    /// Perceived overhead of the SIFT environment in seconds.
    pub fn perceived_overhead(&self) -> f64 {
        self.sift_perceived.mean() - self.no_sift.mean()
    }

    /// Actual overhead of the SIFT environment in seconds.
    pub fn actual_overhead(&self) -> f64 {
        self.sift_actual.mean() - self.no_sift.mean()
    }

    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec!["CONFIGURATION", "PERCEIVED (s)", "ACTUAL (s)"])
            .with_title("Table 3: baseline application execution time (no fault injection)");
        t.row(vec![
            "Outside SIFT (Baseline No SIFT)".into(),
            self.no_sift.display_pm(),
            self.no_sift.display_pm(),
        ]);
        t.row(vec![
            "In SIFT environment (Baseline SIFT)".into(),
            self.sift_perceived.display_pm(),
            self.sift_actual.display_pm(),
        ]);
        format!(
            "{}\nperceived overhead = {:.2} s, actual overhead = {:.2} s (paper: ~2.3 s / ~0.03 s)\n",
            t.render(),
            self.perceived_overhead(),
            self.actual_overhead()
        )
    }
}

/// Runs the Table 3 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table3 {
    let runs = effort.scale(30);
    let mut no_sift = Summary::new();
    let mut sift_perceived = Summary::new();
    let mut sift_actual = Summary::new();
    for i in 0..runs {
        let scenario = Scenario::single_texture(seed0 + i as u64);
        let (_, duration) = run_without_sift(&scenario, SimTime::from_secs(200));
        if let Some(d) = duration {
            no_sift.push(d.as_secs_f64());
        }
        let mut run = scenario.start();
        if run.run_until_done(SimTime::from_secs(200)) {
            if let Some(times) = run.job_times(0) {
                if let (Some(p), Some(a)) = (times.perceived(), times.actual()) {
                    sift_perceived.push(p.as_secs_f64());
                    sift_actual.push(a.as_secs_f64());
                }
            }
        }
    }
    Table3 { no_sift, sift_perceived, sift_actual }
}
