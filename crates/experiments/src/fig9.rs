//! Figure 9: the SAN model of SIFT-induced application failures, swept
//! over the SIFT-process failure rate.

use ree_san::{solve, ReeModelParams};
use ree_stats::TableBuilder;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Mean time between SIFT failures (seconds).
    pub sift_mtbf_s: f64,
    /// Application unavailability.
    pub unavailability: f64,
    /// P(SIFT failure → application failure).
    pub correlated_probability: f64,
}

/// Full sweep output.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Points with the measured (fast, ~0.5 s) SIFT recovery.
    pub fast_recovery: Vec<Fig9Point>,
    /// Points with slow (60 s) recovery — the ablation showing why SIFT
    /// recovery time must stay small (§9 lessons).
    pub slow_recovery: Vec<Fig9Point>,
}

impl Fig9 {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t =
            TableBuilder::new(vec!["SIFT MTBF (s)", "RECOVERY", "APP UNAVAIL.", "P(CORRELATED)"])
                .with_title("Figure 9: SAN model of SIFT-induced application failures");
        for (label, points) in [("0.5 s", &self.fast_recovery), ("60 s", &self.slow_recovery)] {
            for p in points {
                t.row(vec![
                    format!("{:.0}", p.sift_mtbf_s),
                    label.into(),
                    format!("{:.5}", p.unavailability),
                    format!("{:.3}", p.correlated_probability),
                ]);
            }
        }
        format!(
            "{}\nfast recovery keeps P(correlated) near the paper's observed 1.6%; slow recovery multiplies it\n",
            t.render()
        )
    }
}

/// Runs the Figure 9 sweep.
pub fn run(seed: u64) -> Fig9 {
    let horizon = 2_000_000.0;
    let sweep = [3600.0, 1800.0, 600.0, 120.0];
    let mut out = Fig9 { fast_recovery: Vec::new(), slow_recovery: Vec::new() };
    for (k, mtbf) in sweep.into_iter().enumerate() {
        for slow in [false, true] {
            let params = ReeModelParams {
                sift_failure_rate: 1.0 / mtbf,
                sift_recovery_rate: if slow { 1.0 / 60.0 } else { 1.0 / 0.5 },
                ..ReeModelParams::default()
            };
            let sol = solve(&params, horizon, seed + k as u64 * 2 + slow as u64);
            let point = Fig9Point {
                sift_mtbf_s: mtbf,
                unavailability: sol.app_unavailability,
                correlated_probability: sol.correlated_failure_probability,
            };
            if slow {
                out.slow_recovery.push(point);
            } else {
                out.fast_recovery.push(point);
            }
        }
    }
    out
}
