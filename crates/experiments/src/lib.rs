//! # ree-experiments — reproduction harness
//!
//! One module per paper table/figure; see DESIGN.md §5 for the index and
//! EXPERIMENTS.md for paper-vs-measured results. The `repro` binary
//! regenerates any table: `cargo run --release --bin repro -- table4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod effort;
pub mod fig9;
pub mod figures;
pub mod mc;
pub mod partition;
pub mod table10;
pub mod table11;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

pub use effort::Effort;
pub use ree_apps::{run_without_sift, Running, Scenario};
