//! Distributed-sweep reproduction target: runs the paper's standard
//! register campaign across a supervised worker pool and **proves** the
//! aggregate byte-identical to the single-process `Campaign::aggregate`
//! — optionally with seeded self-chaos (worker kill/hang/frame
//! corruption) fired mid-sweep. The self-test sweeps the full
//! worker-count × chaos-mode matrix, applying the paper's own
//! experiment/verdict discipline to our campaign machinery.

use ree_dist::{distribute, ChaosMode, ChaosPlan, DistOptions, DistReport};
use ree_inject::{Aggregate, Campaign, ErrorModel, RunPlan, Target};
use ree_sim::SimTime;

use crate::Effort;

/// The paper's standard table campaign (texture on the 4-node testbed,
/// register error model) — the same workload `campaign_bench` measures
/// at 821.9 runs/sec single-process.
pub fn register_plan(seed: u64) -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(seed),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    }
}

/// Supervisor options for the repro targets: defaults, plus the chaos
/// plan seeded from the campaign seed when a mode is requested.
///
/// `worker_cmd` of `None` self-re-executes the current binary — safe
/// for the `repro` binary (its `main` calls
/// [`ree_dist::run_worker_if_spawned`] first), but NOT for a test
/// harness, which would recursively run its own suite; tests must pass
/// an explicit worker command.
fn options(
    workers: usize,
    chaos: Option<ChaosMode>,
    seed: u64,
    runs: u32,
    worker_cmd: Option<Vec<String>>,
) -> DistOptions {
    let mut o = DistOptions::new(workers);
    // Size batches so every worker gets several (~4) even at quick
    // effort — a pool that clamps down to fewer workers than requested
    // would make the seeded chaos victim silently nonexistent.
    let target_batches = (workers as u32).saturating_mul(4).max(1);
    o.batch = runs.div_ceil(target_batches).clamp(1, 16);
    let batches = runs.div_ceil(o.batch).max(1) as usize;
    let effective_workers = workers.min(batches);
    o.chaos = chaos.map(|mode| ChaosPlan::seeded(mode, seed, effective_workers));
    o.worker_cmd = worker_cmd;
    o
}

/// Outcome of one distributed-vs-single-process comparison.
pub struct DistOutcome {
    /// The distributed sweep's report.
    pub report: DistReport,
    /// The single-process reference aggregate.
    pub expected: Aggregate,
    /// Requested worker count.
    pub workers: usize,
    /// Chaos mode fired, if any.
    pub chaos: Option<ChaosMode>,
}

impl DistOutcome {
    /// Byte-identical check: did the distributed aggregate match?
    pub fn matches(&self) -> bool {
        self.report.completed() && self.report.aggregate == self.expected
    }

    fn verdict(&self) -> &'static str {
        if self.matches() {
            "IDENTICAL"
        } else if self.report.interrupted {
            "INTERRUPTED"
        } else {
            "DIVERGED"
        }
    }
}

/// Runs the register sweep distributed and single-process and compares.
///
/// `worker_cmd` of `None` self-re-executes the current binary — safe
/// only for binaries that call [`ree_dist::run_worker_if_spawned`]
/// first (never a test harness); tests must pass an explicit command.
pub fn run_one(
    effort: Effort,
    seed: u64,
    workers: usize,
    chaos: Option<ChaosMode>,
    worker_cmd: Option<Vec<String>>,
) -> Result<DistOutcome, ree_dist::DistError> {
    let plan = register_plan(seed);
    let runs = effort.scale(512);
    let report = distribute(&plan, runs, seed, &options(workers, chaos, seed, runs, worker_cmd))?;
    let expected = Campaign::new(&plan).runs(runs).seed(seed).aggregate();
    Ok(DistOutcome { report, expected, workers, chaos })
}

/// Renders one outcome: the equivalence verdict, the partial-progress
/// marker when interrupted, supervision warnings, and the shard ledger.
pub fn render(outcome: &DistOutcome) -> String {
    let mut out = String::new();
    let chaos = outcome.chaos.map_or("none".to_owned(), |m| m.to_string());
    let r = &outcome.report;
    out.push_str(&format!(
        "distributed register sweep: {} workers, chaos {chaos}\n",
        outcome.workers
    ));
    if r.interrupted {
        out.push_str(&format!(
            "INTERRUPTED after {}/{} runs — partial seed-prefix aggregate below\n",
            r.runs_folded, r.runs_total
        ));
    }
    for w in &r.warnings {
        out.push_str(&format!("  [supervisor] {w}\n"));
    }
    out.push_str(&r.ledger.render());
    out.push_str(&format!(
        "aggregate vs single-process: {} ({} recoveries / {} injected over {} runs)\n",
        outcome.verdict(),
        r.aggregate.successful_recoveries,
        r.aggregate.errors_injected,
        r.runs_folded,
    ));
    // Full deterministic dump: the byte-diffable form the CI chaos job
    // compares across double runs (the ledger above carries wall-clock
    // timings and scheduling detail, so it is excluded from the diff).
    out.push_str(&format!("aggregate = {:?}\n", r.aggregate));
    out
}

/// The chaos self-test matrix: 1/2/4 workers × {clean, kill, hang,
/// corrupt, truncate, poison}, each pinned byte-identical to the
/// single-process aggregate. Returns the rendered table and whether
/// **every** cell matched.
pub fn selftest(effort: Effort, seed: u64, worker_cmd: Option<Vec<String>>) -> (String, bool) {
    let plan = register_plan(seed);
    let runs = effort.scale(256);
    let expected = Campaign::new(&plan).runs(runs).seed(seed).aggregate();
    let mut table = ree_stats::TableBuilder::new(vec!["WORKERS", "CHAOS", "VERDICT", "DETAIL"]);
    let mut all_ok = true;
    for workers in [1usize, 2, 4] {
        let modes = std::iter::once(None).chain(ChaosMode::ALL.into_iter().map(Some));
        for chaos in modes {
            let label = chaos.map_or("none".to_owned(), |m| m.to_string());
            let opts = options(workers, chaos, seed, runs, worker_cmd.clone());
            let (verdict, detail) = match distribute(&plan, runs, seed, &opts) {
                // A chaos cell that never hurt anything proves
                // nothing: require a recorded failure.
                Ok(report)
                    if chaos.is_some()
                        && report.ledger.failures() == 0
                        && report.completed()
                        && report.aggregate == expected =>
                {
                    all_ok = false;
                    ("VACUOUS".to_owned(), "chaos never fired".to_owned())
                }
                Ok(report) if report.completed() && report.aggregate == expected => (
                    "IDENTICAL".to_owned(),
                    format!(
                        "{} runs, {} requeued, {} fallback",
                        report.runs_folded, report.ledger.requeued, report.ledger.fallback_runs
                    ),
                ),
                Ok(report) => {
                    all_ok = false;
                    (
                        "DIVERGED".to_owned(),
                        format!("folded {}/{} runs", report.runs_folded, report.runs_total),
                    )
                }
                Err(e) => {
                    all_ok = false;
                    ("ERROR".to_owned(), e.to_string())
                }
            };
            table.row(vec![workers.to_string(), label, verdict, detail]);
        }
    }
    let mut out = table.render();
    out.push_str(if all_ok {
        "chaos self-test: every cell byte-identical to the single-process aggregate\n"
    } else {
        "chaos self-test: DIVERGENCE DETECTED\n"
    });
    (out, all_ok)
}
