//! Tables 11 & 12: the two-application experiments (§8) — Mars Rover
//! texture (two images) and OTIS simultaneously on the six-node testbed.
//!
//! Paper shape: the SIFT environment adds a fixed overhead independent of
//! application load (~1 s perceived/actual gap, ARMOR recovery time
//! unchanged at ~0.5 s); injections into the OTIS application slow OTIS
//! but *improve* the Rover's time (less network contention); error
//! classifications mirror the single-application campaigns.

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, FailureClass, RunPlan, RunResult, Target};
use ree_sim::SimTime;
use ree_stats::{Summary, TableBuilder};

/// One row of Table 11.
#[derive(Debug, Clone)]
pub struct Table11Row {
    /// Row label.
    pub label: String,
    /// Rover perceived / actual execution times.
    pub rover: (Summary, Summary),
    /// OTIS perceived / actual execution times.
    pub otis: (Summary, Summary),
    /// ARMOR recovery time.
    pub recovery: Summary,
}

/// Full Table 11 output.
#[derive(Debug, Clone)]
pub struct Table11 {
    /// Baseline + two injection rows.
    pub rows: Vec<Table11Row>,
}

impl Table11 {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "TARGET",
            "ROVER PERC (s)",
            "ROVER ACT (s)",
            "OTIS PERC (s)",
            "OTIS ACT (s)",
            "RECOVERY (s)",
        ])
        .with_title("Table 11: two applications under error injection (6-node testbed)");
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                row.rover.0.display_pm(),
                row.rover.1.display_pm(),
                row.otis.0.display_pm(),
                row.otis.1.display_pm(),
                row.recovery.display_pm(),
            ]);
        }
        t.render()
    }
}

/// One row of Table 12.
#[derive(Debug, Clone)]
pub struct Table12Row {
    /// Row label (target × model group).
    pub label: String,
    /// Induced failures.
    pub failures: u64,
    /// Successful recoveries.
    pub successful_recoveries: u64,
    /// Segmentation faults.
    pub seg_faults: u64,
    /// Illegal instructions.
    pub illegal_instrs: u64,
    /// Hangs.
    pub hangs: u64,
    /// Self-checks (assertions).
    pub self_checks: u64,
}

/// Full Table 12 output.
#[derive(Debug, Clone)]
pub struct Table12 {
    /// Four rows: {SIGINT/SIGSTOP, register/text} × {OTIS app, ARMORs}.
    pub rows: Vec<Table12Row>,
}

impl Table12 {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "INJECTION TARGET",
            "FAILURES",
            "SUC. REC.",
            "SEG FAULT",
            "ILLEGAL",
            "HANG",
            "SELF-CHECK",
        ])
        .with_title("Table 12: error classification, two simultaneous applications");
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                row.failures.to_string(),
                row.successful_recoveries.to_string(),
                row.seg_faults.to_string(),
                row.illegal_instrs.to_string(),
                row.hangs.to_string(),
                row.self_checks.to_string(),
            ]);
        }
        t.render()
    }
}

fn collect_row(label: &str, results: &[RunResult]) -> (Table11Row, Table12Row) {
    let mut t11 = Table11Row {
        label: label.to_owned(),
        rover: (Summary::new(), Summary::new()),
        otis: (Summary::new(), Summary::new()),
        recovery: Summary::new(),
    };
    let mut t12 = Table12Row {
        label: label.to_owned(),
        failures: 0,
        successful_recoveries: 0,
        seg_faults: 0,
        illegal_instrs: 0,
        hangs: 0,
        self_checks: 0,
    };
    for r in results {
        if r.completed {
            if let Some(Some(p)) = r.perceived_all.first() {
                t11.rover.0.push(*p);
            }
            if let Some(Some(a)) = r.actual_all.first() {
                t11.rover.1.push(*a);
            }
            if let Some(Some(p)) = r.perceived_all.get(1) {
                t11.otis.0.push(*p);
            }
            if let Some(Some(a)) = r.actual_all.get(1) {
                t11.otis.1.push(*a);
            }
        }
        for rec in &r.recovery_times {
            t11.recovery.push(*rec);
        }
        if let Some(class) = r.induced {
            t12.failures += 1;
            if r.recovered() {
                t12.successful_recoveries += 1;
            }
            match class {
                FailureClass::SegFault => t12.seg_faults += 1,
                FailureClass::IllegalInstruction => t12.illegal_instrs += 1,
                FailureClass::Hang => t12.hangs += 1,
                FailureClass::Assertion => t12.self_checks += 1,
                _ => {}
            }
        }
    }
    (t11, t12)
}

/// Runs the Tables 11/12 experiment.
pub fn run(effort: Effort, seed0: u64) -> (Table11, Table12) {
    let runs = effort.scale(60);
    let timeout = SimTime::from_secs(700);
    let scenario = Scenario::two_apps(0);

    // Baseline: fault-free two-app runs.
    let mut baseline = Table11Row {
        label: "Baseline (no injection)".into(),
        rover: (Summary::new(), Summary::new()),
        otis: (Summary::new(), Summary::new()),
        recovery: Summary::new(),
    };
    for i in 0..effort.scale(20) {
        let mut s = scenario.clone();
        s.seed = seed0 ^ 0xBB ^ i as u64;
        let mut run = s.start();
        if run.run_until_done(timeout) {
            for (slot, side) in [(0u64, &mut baseline.rover), (1u64, &mut baseline.otis)] {
                if let Some(t) = run.job_times(slot) {
                    if let (Some(p), Some(a)) = (t.perceived(), t.actual()) {
                        side.0.push(p.as_secs_f64());
                        side.1.push(a.as_secs_f64());
                    }
                }
            }
        }
    }

    let mut rows11 = vec![baseline];
    let mut rows12 = Vec::new();

    // OTIS-app injections (all four models pooled per the paper's
    // grouping).
    for (label, models, target) in [
        (
            "OTIS app (SIGINT/SIGSTOP)",
            vec![ErrorModel::Sigint, ErrorModel::Sigstop],
            Target::NamedApp("otis".into()),
        ),
        (
            "ARMORs (SIGINT/SIGSTOP)",
            vec![ErrorModel::Sigint, ErrorModel::Sigstop],
            Target::AnyArmor,
        ),
        (
            "OTIS app (register/text)",
            vec![ErrorModel::Register, ErrorModel::TextSegment],
            Target::NamedApp("otis".into()),
        ),
        (
            "ARMORs (register/text)",
            vec![ErrorModel::Register, ErrorModel::TextSegment],
            Target::AnyArmor,
        ),
    ] {
        let mut pooled: Vec<RunResult> = Vec::new();
        for (k, model) in models.into_iter().enumerate() {
            let plan = RunPlan {
                scenario: scenario.clone(),
                target: target.clone(),
                model,
                timeout,
                net_faults: vec![],
            };
            let seed = seed0 ^ ((k as u64 + 3) << 20);
            pooled.extend(Campaign::new(&plan).runs(runs / 2).seed(seed).collect());
        }
        let (t11, t12) = collect_row(label, &pooled);
        rows11.push(t11);
        rows12.push(t12);
    }
    (Table11 { rows: rows11 }, Table12 { rows: rows12 })
}
