//! Partition-during-recovery sweep: recovery rate vs partition duration.
//!
//! The classic SIFT stressor the paper names but never runs (§5.2
//! attributes FTM recovery's only actual-execution-time overhead to
//! network contention): induce a failure, and the instant the
//! environment *detects* it, split the interconnect under the recovery
//! protocol. Each arm sweeps one partition duration via
//! [`ree_inject::NetFault::partition_on_recovery`]; the adaptive engine
//! spends runs where the recovery-rate confidence interval is widest,
//! so long-duration arms (where recoveries actually start failing) get
//! the budget.

use crate::effort::Effort;
use crate::table4::adaptive_rule;
use ree_apps::Scenario;
use ree_inject::{adaptive, Arm, ArmReport, ErrorModel, NetFault, RunPlan, StoppingRule, Target};
use ree_sim::{SimDuration, SimTime};
use ree_stats::TableBuilder;

/// Partition durations swept, in milliseconds.
pub const DURATIONS_MS: [u64; 5] = [500, 1_000, 2_000, 5_000, 10_000];

/// The split imposed on the 4-node testbed: the SIFT side (FTM and its
/// backup on nodes 0–1) is severed from the application side (texture
/// ranks on nodes 2–3) — exactly the traffic the recovery protocol
/// needs to cross.
fn partition_groups() -> Vec<Vec<u16>> {
    vec![vec![0, 1], vec![2, 3]]
}

/// Recovery rate vs partition duration, one adaptive arm per duration
/// plus a no-partition control.
#[derive(Debug, Clone)]
pub struct PartitionTable {
    /// The control row followed by one report per duration.
    pub rows: Vec<ArmReport>,
    /// The rule every arm ran under.
    pub rule: StoppingRule,
    /// Batch rounds the sweep took (scheduling-dependent).
    pub rounds: u32,
}

impl PartitionTable {
    /// Renders recovery rate and time against partition duration.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "PARTITION",
            "RUNS",
            "ERRORS INJ.",
            "RECOVERY RATE",
            "RECOVERY (s)",
            "CI TARGET",
        ])
        .with_title(
            "Partition during recovery: FTM/SIGINT with the interconnect split at detection",
        );
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                row.runs.to_string(),
                row.aggregate.errors_injected.to_string(),
                row.display_rate(),
                row.aggregate.recovery.display_pm(),
                if row.target_met { "met".into() } else { "budget exhausted".into() },
            ]);
        }
        let spent: u64 = self.rows.iter().map(|r| u64::from(r.runs)).sum();
        let fixed = u64::from(self.rule.max_runs) * self.rows.len() as u64;
        format!(
            "{}\ntarget ±{:.1}% at {:.0}% confidence; {} runs spent vs {} for a fixed sweep \
             ({} rounds)\n",
            t.render(),
            self.rule.half_width * 100.0,
            self.rule.confidence * 100.0,
            spent,
            fixed,
            self.rounds,
        )
    }
}

/// Runs the sweep under the effort level's standard adaptive rule.
pub fn run(effort: Effort, seed0: u64) -> PartitionTable {
    run_adaptive(&adaptive_rule(effort), seed0)
}

/// Runs the sweep under `rule`: a no-partition control arm and one arm
/// per [`DURATIONS_MS`] entry, all targeting the FTM with SIGINT so
/// every run starts a recovery for the partition to land on.
pub fn run_adaptive(rule: &StoppingRule, seed0: u64) -> PartitionTable {
    let mut arms = vec![arm("no partition", vec![], seed0)];
    for ms in DURATIONS_MS {
        let label = format!("partition {:.1} s", ms as f64 / 1000.0);
        let fault =
            NetFault::partition_on_recovery(partition_groups(), SimDuration::from_millis(ms));
        arms.push(arm(&label, vec![fault], seed0));
    }
    let report = adaptive::run_arms(&arms, rule);
    PartitionTable { rows: report.arms, rule: rule.clone(), rounds: report.rounds }
}

fn arm(label: &str, net_faults: Vec<NetFault>, seed0: u64) -> Arm {
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::Ftm,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults,
    };
    Arm::new(label.to_owned(), plan, seed0 ^ hash_label(label))
}

fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0x9E37_79B9;
    for b in label.bytes() {
        h = h.rotate_left(5) ^ b as u64;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rule() -> StoppingRule {
        StoppingRule::default().half_width(0.45).batch(2).min_runs(2).max_runs(2)
    }

    #[test]
    fn sweep_runs_and_renders() {
        let table = run_adaptive(&tiny_rule(), 7);
        assert_eq!(table.rows.len(), DURATIONS_MS.len() + 1);
        assert!(table.rows.iter().all(|r| r.runs >= 2));
        let rendered = table.render();
        assert!(rendered.contains("no partition"), "{rendered}");
        assert!(rendered.contains("partition 10.0 s"), "{rendered}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_adaptive(&tiny_rule(), 42).render();
        let b = run_adaptive(&tiny_rule(), 42).render();
        assert_eq!(a, b);
    }
}
