//! `repro mc` / `repro mc-selftest` — bounded model checking of the
//! 2-node register-corruption scenario (see `docs/MODELCHECK.md`).
//!
//! Where every table in this crate *samples* executions by seed, `mc`
//! *enumerates* a bounded execution tree — every activation instant on
//! the grid × every candidate target × every admissible same-instant
//! delivery order — and proves the SIFT environment recovers all of it.
//! The output is deterministic: CI runs the target twice and diffs the
//! bytes.

use crate::Effort;
use ree_mc::presets::{two_node_register_plan, two_node_sigint_plan};
use ree_mc::{model_check, replay, McBounds};

/// Bounds tier for an effort level.
pub fn bounds(effort: Effort) -> McBounds {
    match effort {
        Effort::Quick => McBounds::quick(),
        Effort::Paper => McBounds::paper(),
    }
}

/// Exhaustively verifies the bounded 2-node execution trees: zero
/// escapes expected on a healthy build. Two fault models are explored:
/// register corruption (the paper's canonical transient model — some
/// placements are benign and never manifest) and SIGINT kill (which
/// forces a detection + respawn on *every* placement, so every branch
/// exercises the recovery protocol). The rendered report ends with a
/// machine-checkable `mc: PASS`/`mc: FAIL` verdict line over the total
/// escape count; the `planted-bug` mutated build drops every respawn
/// wake-up, so the SIGINT tree flips the verdict to FAIL.
pub fn run(effort: Effort, seed: u64) -> String {
    let bounds = bounds(effort);
    let register = two_node_register_plan(seed);
    let reg = model_check(&register, seed, &bounds);
    let sigint = two_node_sigint_plan(seed);
    let sig = model_check(&sigint, seed, &bounds);
    let escapes = reg.escapes.len() + sig.escapes.len();
    let verdict = if escapes == 0 { "PASS" } else { "FAIL" };
    format!(
        "bounded model check: 2-node SIFT cluster (seed {seed})\n\
         bounds: {bounds:?}\n\
         [register corruption]\n{reg}\n\
         [SIGINT kill]\n{sig}\n\
         mc: {verdict} ({escapes} escapes)\n"
    )
}

/// Proves the checker *can* find recovery bugs: explores the SIGINT tree
/// with recovery sabotaged (respawn wake-ups dropped), demands at least
/// one escape, and replays its counterexample both sabotaged (must
/// reproduce) and healthy (must recover). Panics — failing the repro
/// run — if any of that does not hold.
pub fn selftest(effort: Effort, seed: u64) -> String {
    let plan = two_node_sigint_plan(seed);
    let planted = McBounds { plant: true, ..bounds(effort) };
    let report = model_check(&plan, seed, &planted);
    assert!(
        !report.escapes.is_empty(),
        "self-test FAILED: planted recovery bug not found\n{report}"
    );
    let cex = &report.escapes[0];
    let sabotaged = replay(&plan, cex, &planted);
    assert!(!sabotaged.recovered(), "self-test FAILED: counterexample did not replay\n{report}");
    // On the feature-mutated build the sabotage cannot be turned off, so
    // the healthy-replay half of the proof only runs on a real build.
    let healthy_note = if cfg!(feature = "planted-bug") {
        "healthy replay: skipped (planted-bug build)".to_string()
    } else {
        let healthy = replay(&plan, cex, &bounds(effort));
        assert!(
            healthy.recovered(),
            "self-test FAILED: healthy build lost the counterexample schedule"
        );
        "healthy replay: recovered (defect is the plant, not the interleaving)".to_string()
    };
    format!(
        "model-checker self-test: planted recovery bug (seed {seed})\n{report}\n\
         counterexample replay: reproduced ({:?}, {:?})\n{healthy_note}\nmc-selftest: PASS\n",
        cex.system_failure, cex.output
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_renders_deterministically() {
        let a = run(Effort::Quick, 5);
        assert_eq!(a, run(Effort::Quick, 5));
        if cfg!(feature = "planted-bug") {
            assert!(a.contains("mc: FAIL"), "mutated build must escape:\n{a}");
        } else {
            assert!(a.contains("mc: PASS"), "healthy build must not escape:\n{a}");
        }
    }

    #[test]
    fn selftest_passes() {
        assert!(selftest(Effort::Quick, 5).contains("mc-selftest: PASS"));
    }
}
