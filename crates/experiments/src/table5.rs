//! Table 5: application execution time vs. heartbeat period (§5.3).
//!
//! SIGINT into the FTM with heartbeat periods of 5/10/20/30 s, 30 runs
//! per row. Paper shape: *perceived* time grows markedly with the period
//! (FTM failures are detected more slowly, stretching setup/teardown
//! exposure), while *actual* time is almost flat (<1% spread) because the
//! application is decoupled from the FTM while running.

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
use ree_sim::{SimDuration, SimTime};
use ree_stats::{Summary, TableBuilder};

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Heartbeat period in seconds.
    pub period_s: u64,
    /// Perceived execution time.
    pub perceived: Summary,
    /// Actual execution time.
    pub actual: Summary,
}

/// Full Table 5 output.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// One row per heartbeat period.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec!["HB PERIOD (s)", "PERCEIVED (s)", "ACTUAL (s)"])
            .with_title("Table 5: execution time vs heartbeat period (FTM SIGINT)");
        for row in &self.rows {
            t.row(vec![
                row.period_s.to_string(),
                row.perceived.display_pm(),
                row.actual.display_pm(),
            ]);
        }
        t.render()
    }
}

/// Runs the Table 5 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table5 {
    let runs = effort.scale(30);
    let mut rows = Vec::new();
    for period_s in [5u64, 10, 20, 30] {
        let mut scenario = Scenario::single_texture(0);
        scenario.sift = scenario.sift.with_heartbeat_period(SimDuration::from_secs(period_s));
        let plan = RunPlan {
            scenario,
            target: Target::Ftm,
            model: ErrorModel::Sigint,
            timeout: SimTime::from_secs(400),
            net_faults: vec![],
        };
        let results = Campaign::new(&plan).runs(runs).seed(seed0 ^ (period_s << 8)).collect();
        let mut perceived = Summary::new();
        let mut actual = Summary::new();
        for r in &results {
            if r.injections > 0 && r.completed {
                if let Some(p) = r.perceived {
                    perceived.push(p);
                }
                if let Some(a) = r.actual {
                    actual.push(a);
                }
            }
        }
        rows.push(Table5Row { period_s, perceived, actual });
    }
    Table5 { rows }
}
