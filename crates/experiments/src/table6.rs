//! Table 6: register and text-segment injection results (§6).
//!
//! Repeated single-bit flips until a failure is induced, ~90–100 induced
//! failures per target. Paper shape: segmentation faults dominate,
//! text-segment flips produce relatively more illegal instructions than
//! register flips, ARMOR targets occasionally fire assertions, and a
//! handful of runs become system failures (11 of ~700 failures —
//! text-segment errors caused more of them than register errors because
//! register values are short-lived).

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, FailureClass, RunPlan, RunResult, Target};
use ree_sim::SimTime;
use ree_stats::{Summary, TableBuilder};

/// One row of Table 6.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Error model (register or text segment).
    pub model: ErrorModel,
    /// Injection target.
    pub target: Target,
    /// Runs in which a failure was induced.
    pub failures: u64,
    /// Runs that recovered.
    pub successful_recoveries: u64,
    /// Segmentation-fault count.
    pub seg_faults: u64,
    /// Illegal-instruction count.
    pub illegal_instrs: u64,
    /// Hang count.
    pub hangs: u64,
    /// Assertion count.
    pub assertions: u64,
    /// Perceived execution time.
    pub perceived: Summary,
    /// Actual execution time.
    pub actual: Summary,
    /// SIFT recovery time.
    pub recovery: Summary,
    /// System failures.
    pub system_failures: u64,
}

/// Full Table 6 output.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Eight rows: {register, text} × four targets.
    pub rows: Vec<Table6Row>,
}

impl Table6 {
    /// Total system failures across rows (paper: 11).
    pub fn total_system_failures(&self) -> u64 {
        self.rows.iter().map(|r| r.system_failures).sum()
    }

    /// System failures caused by text-segment injections.
    pub fn text_system_failures(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.model == ErrorModel::TextSegment)
            .map(|r| r.system_failures)
            .sum()
    }

    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "TARGET",
            "FAILURES",
            "SUC. REC.",
            "SEG FAULT",
            "ILLEGAL",
            "HANG",
            "ASSERT",
            "PERCEIVED (s)",
            "ACTUAL (s)",
            "RECOVERY (s)",
        ])
        .with_title("Table 6: register and text-segment injection results");
        for row in &self.rows {
            t.row(vec![
                format!("{} / {}", row.model, row.target),
                row.failures.to_string(),
                row.successful_recoveries.to_string(),
                row.seg_faults.to_string(),
                row.illegal_instrs.to_string(),
                row.hangs.to_string(),
                row.assertions.to_string(),
                row.perceived.display_pm(),
                row.actual.display_pm(),
                row.recovery.display_pm(),
            ]);
        }
        format!(
            "{}\nsystem failures: {} total, {} from text-segment errors (paper: 11 total, more from text than register)\n",
            t.render(),
            self.total_system_failures(),
            self.text_system_failures()
        )
    }
}

fn summarize(model: ErrorModel, target: Target, results: &[RunResult]) -> Table6Row {
    let mut row = Table6Row {
        model,
        target,
        failures: 0,
        successful_recoveries: 0,
        seg_faults: 0,
        illegal_instrs: 0,
        hangs: 0,
        assertions: 0,
        perceived: Summary::new(),
        actual: Summary::new(),
        recovery: Summary::new(),
        system_failures: 0,
    };
    for r in results {
        if let Some(class) = r.induced {
            row.failures += 1;
            match class {
                FailureClass::SegFault => row.seg_faults += 1,
                FailureClass::IllegalInstruction => row.illegal_instrs += 1,
                FailureClass::Hang => row.hangs += 1,
                FailureClass::Assertion => row.assertions += 1,
                _ => {}
            }
            if r.recovered() {
                row.successful_recoveries += 1;
            }
        }
        if r.system_failure.is_some() {
            row.system_failures += 1;
        }
        if r.injections > 0 && r.completed {
            if let Some(p) = r.perceived {
                row.perceived.push(p);
            }
            if let Some(a) = r.actual {
                row.actual.push(a);
            }
        }
        for rec in &r.recovery_times {
            row.recovery.push(*rec);
        }
    }
    row
}

/// Runs the Table 6 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table6 {
    // The paper aimed for 90–100 *activated* failures per target; with
    // our activation rate ~100–140 runs per target achieve that.
    let runs = effort.scale(130);
    let mut rows = Vec::new();
    for model in [ErrorModel::Register, ErrorModel::TextSegment] {
        for target in [Target::App, Target::Ftm, Target::ExecArmor, Target::Heartbeat] {
            let plan = RunPlan {
                scenario: Scenario::single_texture(0),
                target: target.clone(),
                model: model.clone(),
                timeout: SimTime::from_secs(400),
                net_faults: vec![],
            };
            let seed = seed0 ^ seed_of(&model, &target);
            let results = Campaign::new(&plan).runs(runs).seed(seed).collect();
            rows.push(summarize(model.clone(), target, &results));
        }
    }
    Table6 { rows }
}

fn seed_of(model: &ErrorModel, target: &Target) -> u64 {
    let mut h: u64 = 0x7ab1e6;
    for b in format!("{model}{target}").bytes() {
        h = h.wrapping_mul(31) ^ b as u64;
    }
    h
}
