//! Table 4: SIGINT/SIGSTOP injection results (§5).
//!
//! 100 runs per target × {application, FTM, Execution ARMOR, Heartbeat
//! ARMOR} × {SIGINT, SIGSTOP}. The paper's headline: *every* injected
//! error was recovered; hang-model injections into the application cost
//! far more execution time than crash-model ones (detection through the
//! 20 s progress-indicator poll); SIFT-process recovery takes ~0.5–0.8 s.

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{
    adaptive, Arm, ArmReport, Campaign, ErrorModel, RunPlan, RunResult, StoppingRule, Target,
};
use ree_sim::SimTime;
use ree_stats::{no_failure_upper_bound, Summary, TableBuilder};

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Error model.
    pub model: ErrorModel,
    /// Injection target.
    pub target: Target,
    /// Runs in which an error was injected (injection times falling
    /// after completion mean "no error injected").
    pub errors_injected: u64,
    /// Runs that recovered.
    pub successful_recoveries: u64,
    /// Perceived execution time.
    pub perceived: Summary,
    /// Actual execution time.
    pub actual: Summary,
    /// SIFT recovery time.
    pub recovery: Summary,
    /// Correlated failures observed (§5.2).
    pub correlated: u64,
}

/// Full Table 4 output.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Fault-free baseline (perceived/actual).
    pub baseline: (Summary, Summary),
    /// The eight injection rows.
    pub rows: Vec<Table4Row>,
    /// Total runs with injections (for the §5 probability bound).
    pub total_injected: u64,
}

impl Table4 {
    /// The §5 bound on unrecoverable-failure probability.
    pub fn failure_probability_bound(&self) -> f64 {
        no_failure_upper_bound(self.total_injected.max(1))
    }

    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "TARGET",
            "ERRORS INJ.",
            "SUC. REC.",
            "PERCEIVED (s)",
            "ACTUAL (s)",
            "RECOVERY (s)",
            "CORRELATED",
        ])
        .with_title("Table 4: SIGINT/SIGSTOP injection results");
        t.row(vec![
            "Baseline (no injection)".into(),
            "-".into(),
            "-".into(),
            self.baseline.0.display_pm(),
            self.baseline.1.display_pm(),
            "-".into(),
            "-".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                format!("{} / {}", row.model, row.target),
                row.errors_injected.to_string(),
                row.successful_recoveries.to_string(),
                row.perceived.display_pm(),
                row.actual.display_pm(),
                row.recovery.display_pm(),
                row.correlated.to_string(),
            ]);
        }
        format!(
            "{}\nwith n = {} injected runs and zero unrecovered errors, p < {:.4}% (95% conf.)\n",
            t.render(),
            self.total_injected,
            self.failure_probability_bound() * 100.0
        )
    }
}

fn summarize(model: ErrorModel, target: Target, results: &[RunResult]) -> Table4Row {
    let mut row = Table4Row {
        model,
        target,
        errors_injected: 0,
        successful_recoveries: 0,
        perceived: Summary::new(),
        actual: Summary::new(),
        recovery: Summary::new(),
        correlated: 0,
    };
    for r in results {
        if r.injections > 0 {
            row.errors_injected += 1;
            if r.recovered() {
                row.successful_recoveries += 1;
            }
            if let Some(p) = r.perceived {
                row.perceived.push(p);
            }
            if let Some(a) = r.actual {
                row.actual.push(a);
            }
            for rec in &r.recovery_times {
                row.recovery.push(*rec);
            }
            if r.correlated {
                row.correlated += 1;
            }
        }
    }
    row
}

/// Runs the Table 4 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table4 {
    let runs = effort.scale(100);
    // Fault-free baseline.
    let mut base_p = Summary::new();
    let mut base_a = Summary::new();
    for i in 0..effort.scale(30) {
        let scenario = Scenario::single_texture(seed0 ^ 0xBA5E ^ i as u64);
        let mut run = scenario.start();
        if run.run_until_done(SimTime::from_secs(200)) {
            if let Some(times) = run.job_times(0) {
                base_p.push(times.perceived().map(|d| d.as_secs_f64()).unwrap_or(0.0));
                base_a.push(times.actual().map(|d| d.as_secs_f64()).unwrap_or(0.0));
            }
        }
    }
    let mut rows = Vec::new();
    let mut total_injected = 0;
    for model in [ErrorModel::Sigint, ErrorModel::Sigstop] {
        for target in [Target::App, Target::Ftm, Target::ExecArmor, Target::Heartbeat] {
            let plan = RunPlan {
                scenario: Scenario::single_texture(0),
                target: target.clone(),
                model: model.clone(),
                timeout: SimTime::from_secs(320),
                net_faults: vec![],
            };
            let results =
                Campaign::new(&plan).runs(runs).seed(seed0 ^ hash_pair(&model, &target)).collect();
            let row = summarize(model.clone(), target, &results);
            total_injected += row.errors_injected;
            rows.push(row);
        }
    }
    Table4 { baseline: (base_p, base_a), rows, total_injected }
}

/// Table 4 under the adaptive engine: the same eight cells as [`run`],
/// but each cell stops as soon as its recovery-rate Wilson interval
/// meets the stopping rule's target instead of spending a fixed run
/// count.
#[derive(Debug, Clone)]
pub struct Table4Adaptive {
    /// One report per cell, in the fixed table's row order.
    pub rows: Vec<ArmReport>,
    /// The rule every cell ran under.
    pub rule: StoppingRule,
    /// Batch rounds the sweep took (scheduling-dependent).
    pub rounds: u32,
}

impl Table4Adaptive {
    /// Renders the per-cell spend next to what a fixed sweep would cost.
    pub fn render(&self) -> String {
        let mut t =
            TableBuilder::new(vec!["TARGET", "RUNS", "ERRORS INJ.", "RECOVERY RATE", "CI TARGET"])
                .with_title("Table 4 (adaptive): confidence-targeted SIGINT/SIGSTOP cells");
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                row.runs.to_string(),
                row.aggregate.errors_injected.to_string(),
                row.display_rate(),
                if row.target_met { "met".into() } else { "budget exhausted".into() },
            ]);
        }
        let spent: u64 = self.rows.iter().map(|r| u64::from(r.runs)).sum();
        let fixed = u64::from(self.rule.max_runs) * self.rows.len() as u64;
        format!(
            "{}\ntarget ±{:.1}% at {:.0}% confidence; {} runs spent vs {} for a fixed sweep \
             ({} rounds)\n",
            t.render(),
            self.rule.half_width * 100.0,
            self.rule.confidence * 100.0,
            spent,
            fixed,
            self.rounds,
        )
    }
}

/// Runs the eight Table 4 cells as one adaptive sweep under `rule`,
/// reallocating each round's batches to the widest-interval cells.
pub fn run_adaptive(rule: &StoppingRule, seed0: u64) -> Table4Adaptive {
    let mut arms = Vec::new();
    for model in [ErrorModel::Sigint, ErrorModel::Sigstop] {
        for target in [Target::App, Target::Ftm, Target::ExecArmor, Target::Heartbeat] {
            let plan = RunPlan {
                scenario: Scenario::single_texture(0),
                target: target.clone(),
                model: model.clone(),
                timeout: SimTime::from_secs(320),
                net_faults: vec![],
            };
            arms.push(Arm::new(
                format!("{model} / {target}"),
                plan,
                seed0 ^ hash_pair(&model, &target),
            ));
        }
    }
    let report = adaptive::run_arms(&arms, rule);
    Table4Adaptive { rows: report.arms, rule: rule.clone(), rounds: report.rounds }
}

/// The stopping rule the `repro` binary uses for the adaptive table:
/// the paper-standard ±2%-at-95% target, scaled down (wider target,
/// smaller batches and budget) for `Effort::Quick` CI runs.
pub fn adaptive_rule(effort: Effort) -> StoppingRule {
    match effort {
        Effort::Paper => StoppingRule::default(),
        Effort::Quick => StoppingRule::default().half_width(0.08).batch(8).min_runs(8).max_runs(32),
    }
}

fn hash_pair(model: &ErrorModel, target: &Target) -> u64 {
    let mut h: u64 = 0x9E37_79B9;
    for b in format!("{model}{target}").bytes() {
        h = h.rotate_left(5) ^ b as u64;
    }
    h
}
