//! Table 4: SIGINT/SIGSTOP injection results (§5).
//!
//! 100 runs per target × {application, FTM, Execution ARMOR, Heartbeat
//! ARMOR} × {SIGINT, SIGSTOP}. The paper's headline: *every* injected
//! error was recovered; hang-model injections into the application cost
//! far more execution time than crash-model ones (detection through the
//! 20 s progress-indicator poll); SIFT-process recovery takes ~0.5–0.8 s.

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_inject::{run_campaign, ErrorModel, RunPlan, RunResult, Target};
use ree_sim::SimTime;
use ree_stats::{no_failure_upper_bound, Summary, TableBuilder};

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Error model.
    pub model: ErrorModel,
    /// Injection target.
    pub target: Target,
    /// Runs in which an error was injected (injection times falling
    /// after completion mean "no error injected").
    pub errors_injected: u64,
    /// Runs that recovered.
    pub successful_recoveries: u64,
    /// Perceived execution time.
    pub perceived: Summary,
    /// Actual execution time.
    pub actual: Summary,
    /// SIFT recovery time.
    pub recovery: Summary,
    /// Correlated failures observed (§5.2).
    pub correlated: u64,
}

/// Full Table 4 output.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Fault-free baseline (perceived/actual).
    pub baseline: (Summary, Summary),
    /// The eight injection rows.
    pub rows: Vec<Table4Row>,
    /// Total runs with injections (for the §5 probability bound).
    pub total_injected: u64,
}

impl Table4 {
    /// The §5 bound on unrecoverable-failure probability.
    pub fn failure_probability_bound(&self) -> f64 {
        no_failure_upper_bound(self.total_injected.max(1))
    }

    /// Renders the paper-shaped table.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "TARGET",
            "ERRORS INJ.",
            "SUC. REC.",
            "PERCEIVED (s)",
            "ACTUAL (s)",
            "RECOVERY (s)",
            "CORRELATED",
        ])
        .with_title("Table 4: SIGINT/SIGSTOP injection results");
        t.row(vec![
            "Baseline (no injection)".into(),
            "-".into(),
            "-".into(),
            self.baseline.0.display_pm(),
            self.baseline.1.display_pm(),
            "-".into(),
            "-".into(),
        ]);
        for row in &self.rows {
            t.row(vec![
                format!("{} / {}", row.model, row.target),
                row.errors_injected.to_string(),
                row.successful_recoveries.to_string(),
                row.perceived.display_pm(),
                row.actual.display_pm(),
                row.recovery.display_pm(),
                row.correlated.to_string(),
            ]);
        }
        format!(
            "{}\nwith n = {} injected runs and zero unrecovered errors, p < {:.4}% (95% conf.)\n",
            t.render(),
            self.total_injected,
            self.failure_probability_bound() * 100.0
        )
    }
}

fn summarize(model: ErrorModel, target: Target, results: &[RunResult]) -> Table4Row {
    let mut row = Table4Row {
        model,
        target,
        errors_injected: 0,
        successful_recoveries: 0,
        perceived: Summary::new(),
        actual: Summary::new(),
        recovery: Summary::new(),
        correlated: 0,
    };
    for r in results {
        if r.injections > 0 {
            row.errors_injected += 1;
            if r.recovered() {
                row.successful_recoveries += 1;
            }
            if let Some(p) = r.perceived {
                row.perceived.push(p);
            }
            if let Some(a) = r.actual {
                row.actual.push(a);
            }
            for rec in &r.recovery_times {
                row.recovery.push(*rec);
            }
            if r.correlated {
                row.correlated += 1;
            }
        }
    }
    row
}

/// Runs the Table 4 experiment.
pub fn run(effort: Effort, seed0: u64) -> Table4 {
    let runs = effort.scale(100);
    // Fault-free baseline.
    let mut base_p = Summary::new();
    let mut base_a = Summary::new();
    for i in 0..effort.scale(30) {
        let scenario = Scenario::single_texture(seed0 ^ 0xBA5E ^ i as u64);
        let mut run = scenario.start();
        if run.run_until_done(SimTime::from_secs(200)) {
            if let Some(times) = run.job_times(0) {
                base_p.push(times.perceived().map(|d| d.as_secs_f64()).unwrap_or(0.0));
                base_a.push(times.actual().map(|d| d.as_secs_f64()).unwrap_or(0.0));
            }
        }
    }
    let mut rows = Vec::new();
    let mut total_injected = 0;
    for model in [ErrorModel::Sigint, ErrorModel::Sigstop] {
        for target in [Target::App, Target::Ftm, Target::ExecArmor, Target::Heartbeat] {
            let plan = RunPlan {
                scenario: Scenario::single_texture(0),
                target: target.clone(),
                model: model.clone(),
                timeout: SimTime::from_secs(320),
            };
            let results = run_campaign(&plan, runs, seed0 ^ hash_pair(&model, &target));
            let row = summarize(model.clone(), target, &results);
            total_injected += row.errors_injected;
            rows.push(row);
        }
    }
    Table4 { baseline: (base_p, base_a), rows, total_injected }
}

fn hash_pair(model: &ErrorModel, target: &Target) -> u64 {
    let mut h: u64 = 0x9E37_79B9;
    for b in format!("{model}{target}").bytes() {
        h = h.rotate_left(5) ^ b as u64;
    }
    h
}
