//! Figure reproductions: 6 (hang-detection latency), 7 (FTM failures in
//! setup/teardown), 8 (slave-block correlated failure), 10 (the
//! install/notify race condition).

use crate::effort::Effort;
use ree_apps::Scenario;
use ree_armor::{ArmorEvent, ControlOp, Value};
use ree_inject::{adaptive, Arm, ArmReport, ErrorModel, RunPlan, StoppingRule, Target};
use ree_os::{Signal, SpawnSpec, TraceEvent};
use ree_sift::{ids, tags};
use ree_sim::{SimDuration, SimTime};
use ree_stats::{Summary, TableBuilder};

/// Figure 6: distribution of application hang-detection latency under the
/// polling progress-indicator design (up to 2× the check period) versus
/// the interrupt-driven §5.1 variant (≤ ~1× period).
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Detection latencies with the polling design (seconds).
    pub polling: Summary,
    /// Detection latencies with the interrupt-driven design (seconds).
    pub interrupt: Summary,
    /// The configured check period (seconds).
    pub period_s: f64,
}

impl Fig6 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec!["DESIGN", "MEAN (s)", "MIN (s)", "MAX (s)", "SAMPLES"])
            .with_title("Figure 6: hang-detection latency (progress indicators, 20 s period)");
        for (name, s) in
            [("polling (paper)", &self.polling), ("interrupt-driven (§5.1)", &self.interrupt)]
        {
            t.row(vec![
                name.into(),
                format!("{:.1}", s.mean()),
                format!("{:.1}", s.min()),
                format!("{:.1}", s.max()),
                s.n().to_string(),
            ]);
        }
        format!(
            "{}\npolling latency is bounded by 2x the checking period ({}s); interrupt-driven by ~1x\n",
            t.render(),
            self.period_s * 2.0
        )
    }
}

/// Measures hang-detection latency: SIGSTOP an application rank, read the
/// interval from injection to the Execution ARMOR's hang detection.
pub fn fig6(effort: Effort, seed0: u64) -> Fig6 {
    let period_s = 20.0;
    let mut out = Fig6 { polling: Summary::new(), interrupt: Summary::new(), period_s };
    for interrupt_driven in [false, true] {
        let runs = effort.scale(40);
        for i in 0..runs {
            let mut scenario = Scenario::single_texture(seed0 + i as u64);
            scenario.sift.interrupt_driven_pi = interrupt_driven;
            let mut running = scenario.start();
            // Stop a rank mid-computation (well inside the filter phases).
            running.run_until(SimTime::from_secs(25 + (i as u64 % 30)));
            let Some(pid) =
                running.cluster.all_procs().into_iter().find(|p| {
                    running.cluster.name_of(*p).map(|n| n.contains("-r1-")).unwrap_or(false)
                })
            else {
                continue;
            };
            let injected_at = running.cluster.now();
            running.cluster.send_signal(pid, Signal::Stop);
            let detected = running.cluster.run_until_pred(SimTime::from_secs(150), |c| {
                c.trace().of_event(TraceEvent::AppHangDetected).any(|r| r.time > injected_at)
            });
            if detected {
                let t = running
                    .cluster
                    .trace()
                    .of_event(TraceEvent::AppHangDetected)
                    .find(|r| r.time > injected_at)
                    .map(|r| r.time)
                    .expect("detection record");
                let latency = t.since(injected_at).as_secs_f64();
                if interrupt_driven {
                    out.interrupt.push(latency);
                } else {
                    out.polling.push(latency);
                }
            }
        }
    }
    out
}

/// Figure 6 under the adaptive engine: a two-arm sweep (polling vs
/// interrupt-driven progress indicators) of SIGSTOP-into-application
/// hang campaigns, each arm stopping at its own confidence target.
#[derive(Debug, Clone)]
pub struct Fig6Adaptive {
    /// The polling-design arm.
    pub polling: ArmReport,
    /// The interrupt-driven arm.
    pub interrupt: ArmReport,
    /// The rule both arms ran under.
    pub rule: StoppingRule,
}

impl Fig6Adaptive {
    /// Renders the two arms' spend and perceived-time cost.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec![
            "DESIGN",
            "RUNS",
            "RECOVERY RATE",
            "PERCEIVED (s)",
            "CI TARGET",
        ])
        .with_title("Figure 6 (adaptive): hang campaigns, polling vs interrupt-driven PI");
        for row in [&self.polling, &self.interrupt] {
            t.row(vec![
                row.label.clone(),
                row.runs.to_string(),
                row.display_rate(),
                row.aggregate.perceived.display_pm(),
                if row.target_met { "met".into() } else { "budget exhausted".into() },
            ]);
        }
        format!(
            "{}\ntarget ±{:.1}% at {:.0}% confidence; slower hang detection surfaces as \
             perceived-time cost, not lost recoveries\n",
            t.render(),
            self.rule.half_width * 100.0,
            self.rule.confidence * 100.0,
        )
    }
}

/// Runs the two Figure 6 designs as one adaptive sweep: SIGSTOP the
/// application (the hang model fig6 measures) with the progress
/// indicators polling vs interrupt-driven, until each arm's
/// recovery-rate interval meets `rule`'s target.
pub fn fig6_adaptive(rule: &StoppingRule, seed0: u64) -> Fig6Adaptive {
    let arm = |interrupt_driven: bool, label: &str, seed: u64| {
        let mut scenario = Scenario::single_texture(0);
        scenario.sift.interrupt_driven_pi = interrupt_driven;
        let plan = RunPlan {
            scenario,
            target: Target::App,
            model: ErrorModel::Sigstop,
            timeout: SimTime::from_secs(320),
            net_faults: vec![],
        };
        Arm::new(label, plan, seed)
    };
    let arms =
        [arm(false, "polling (paper)", seed0), arm(true, "interrupt-driven (§5.1)", seed0 ^ 0x61)];
    let mut report = adaptive::run_arms(&arms, rule);
    let interrupt = report.arms.pop().expect("two arms");
    let polling = report.arms.pop().expect("two arms");
    Fig6Adaptive { polling, interrupt, rule: rule.clone() }
}

/// Figure 7: FTM failures during setup/teardown inflate *perceived* time
/// while failures during execution barely touch *actual* time.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// (phase label, perceived summary, actual summary).
    pub phases: Vec<(String, Summary, Summary)>,
}

impl Fig7 {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TableBuilder::new(vec!["FTM KILLED DURING", "PERCEIVED (s)", "ACTUAL (s)"])
            .with_title("Figure 7: FTM failures in setup/takedown vs execution");
        for (label, p, a) in &self.phases {
            t.row(vec![label.clone(), p.display_pm(), a.display_pm()]);
        }
        t.render()
    }
}

/// Runs the Figure 7 experiment: SIGINT the FTM in a controlled phase.
pub fn fig7(effort: Effort, seed0: u64) -> Fig7 {
    let runs = effort.scale(30);
    let mut phases = Vec::new();
    for (label, window) in [
        ("setup (5.0-6.5 s)", (5_000_000u64, 6_500_000u64)),
        ("execution (20-70 s)", (20_000_000, 70_000_000)),
        ("takedown (last 2 s)", (0, 0)), // resolved dynamically below
    ] {
        let mut perceived = Summary::new();
        let mut actual = Summary::new();
        for i in 0..runs {
            let scenario = Scenario::single_texture(seed0 ^ (window.0) ^ i as u64);
            let mut running = scenario.start();
            let kill_at = if window.1 > 0 {
                SimTime::from_micros(window.0 + (i as u64 * 77_777) % (window.1 - window.0))
            } else {
                // Takedown: kill just as the ranks finish (~80.5 s).
                SimTime::from_micros(80_400_000 + (i as u64 * 50_000) % 900_000)
            };
            running.run_until(kill_at);
            if let Some(ftm) = running.cluster.find_by_name("ftm") {
                running.cluster.send_signal(ftm, Signal::Int);
            }
            if running.run_until_done(SimTime::from_secs(400)) {
                if let Some(t) = running.job_times(0) {
                    if let (Some(p), Some(a)) = (t.perceived(), t.actual()) {
                        perceived.push(p.as_secs_f64());
                        actual.push(a.as_secs_f64());
                    }
                }
            }
        }
        phases.push((label.to_owned(), perceived, actual));
    }
    Fig7 { phases }
}

/// Figure 8 outcome: the FTM dies during MPI startup; the slave blocks,
/// rank 0 times out and aborts, and the environment restarts the
/// application once the FTM recovers.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Runs attempted.
    pub runs: u64,
    /// Runs exhibiting the MPI-abort correlated failure.
    pub aborts_observed: u64,
    /// Runs that finally completed anyway.
    pub completed: u64,
}

impl Fig8 {
    /// Renders the summary.
    pub fn render(&self) -> String {
        format!(
            "Figure 8: FTM killed during MPI launch: {} runs, {} rank-0 init aborts, {} completed after restart\n",
            self.runs, self.aborts_observed, self.completed
        )
    }
}

/// Runs the Figure 8 experiment.
pub fn fig8(effort: Effort, seed0: u64) -> Fig8 {
    let runs = effort.scale(30) as u64;
    let mut out = Fig8 { runs, aborts_observed: 0, completed: 0 };
    for i in 0..runs {
        let scenario = Scenario::single_texture(seed0 + i);
        let mut running = scenario.start();
        // Kill the FTM right as rank 0 spawns the slave and the rank-pid
        // forwarding is in flight.
        running.run_until(SimTime::from_micros(6_600_000 + (i * 37_000) % 600_000));
        if let Some(ftm) = running.cluster.find_by_name("ftm") {
            running.cluster.send_signal(ftm, Signal::Int);
        }
        let done = running.run_until_done(SimTime::from_secs(400));
        if running.cluster.trace().any(TraceEvent::MpiInitTimeout)
            || running.cluster.trace().any(TraceEvent::MpiRankGaveUp)
        {
            out.aborts_observed += 1;
        }
        if done {
            out.completed += 1;
        }
    }
    out
}

/// Figure 10 outcome: with the race fix disabled, a failure notification
/// racing ahead of the install ack leaves the Execution ARMOR
/// unrecovered; with the fix, recovery proceeds.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// With the fix off: was the ARMOR left unrecovered?
    pub unrecovered_without_fix: bool,
    /// With the fix on: was the ARMOR recovered?
    pub recovered_with_fix: bool,
}

impl Fig10 {
    /// Renders the summary.
    pub fn render(&self) -> String {
        format!(
            "Figure 10: install/notify race — without fix: armor unrecovered = {}; with fix: armor recovered = {}\n",
            self.unrecovered_without_fix, self.recovered_with_fix
        )
    }
}

/// Reproduces the Figure 10 race deterministically by delivering the
/// failure notification to the FTM *before* the install ack (the paper's
/// adverse timing), with and without the registration fix.
pub fn fig10(seed0: u64) -> Fig10 {
    let mut outcomes = [false, false];
    for (slot, race_fix) in [(0usize, false), (1usize, true)] {
        let mut scenario = Scenario::single_texture(seed0 + slot as u64);
        scenario.sift.race_fix_enabled = race_fix;
        scenario.jobs.clear(); // no applications; we drive the race by hand
        let mut running = scenario.start();
        running.run_until(SimTime::from_secs(4));
        let ftm_pid = running.cluster.find_by_name("ftm").expect("ftm installed");

        // Synthesise the adverse ordering: the FTM hears about the failed
        // Execution ARMOR before the install ack arrives.
        let exec_id = ids::exec(0, 0).0 as u64;
        if race_fix {
            // With the fix the FTM pre-registers on `need-install`; here
            // we emulate its effect by delivering the registration first
            // (an `install-ack`-shaped record with the same timing).
            let pre = ArmorEvent::new(tags::INSTALL_ACK)
                .with("armor", Value::U64(exec_id))
                .with("pid", Value::U64(0))
                .with("node", Value::U64(2))
                .with("slot", Value::U64(0))
                .with("rank", Value::U64(0))
                .with("kind", Value::Str("exec".into()));
            send_control(&mut running, ftm_pid, pre);
        }
        let failure = ArmorEvent::new(tags::ARMOR_FAILED)
            .with("armor", Value::U64(exec_id))
            .with("node", Value::U64(2));
        send_control(&mut running, ftm_pid, failure);
        running.run_until(SimTime::from_secs(8));
        // Did the FTM initiate a reinstall?
        let reinstalled = running.cluster.trace().any(TraceEvent::ExecArmorInstalled);
        outcomes[slot] = reinstalled;
    }
    Fig10 { unrecovered_without_fix: !outcomes[0], recovered_with_fix: outcomes[1] }
}

fn send_control(running: &mut ree_apps::Running, to: ree_os::Pid, ev: ArmorEvent) {
    // Use a throwaway driver process to deliver control events.
    #[derive(Clone)]
    struct Driver {
        to: ree_os::Pid,
        ev: Option<ArmorEvent>,
    }
    impl ree_os::Process for Driver {
        fn kind(&self) -> &'static str {
            "driver"
        }
        fn on_start(&mut self, ctx: &mut ree_os::ProcCtx<'_>) {
            if let Some(ev) = self.ev.take() {
                ctx.send(self.to, "armor-control", 96, ControlOp::Raise(ev));
            }
            ctx.exit(0);
        }
        fn on_message(&mut self, _m: ree_os::Message, _c: &mut ree_os::ProcCtx<'_>) {}
    }
    running.cluster.spawn(SpawnSpec::new(
        "race-driver",
        ree_os::NodeId(0),
        Box::new(Driver { to, ev: Some(ev) }),
    ));
    let now = running.cluster.now();
    running.cluster.run_until(now + SimDuration::from_millis(400));
}

/// Runs a figure-6-style quick latency check used by tests.
pub fn run_all_quick(seed0: u64) -> (Fig6, Fig7, Fig8, Fig10) {
    (
        fig6(Effort::Quick, seed0),
        fig7(Effort::Quick, seed0 + 1),
        fig8(Effort::Quick, seed0 + 2),
        fig10(seed0 + 3),
    )
}
