//! End-to-end smoke test for the `repro` binary: CI exercises the
//! actual paper-reproduction path, not just the library APIs.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn quick_table3_exits_zero_and_prints_a_table() {
    let out =
        repro().args(["--quick", "--seed", "7", "table3"]).output().expect("repro binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "repro exited with {:?}; stderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("Table 3"), "expected a Table 3 header, got:\n{stdout}");
    assert!(stdout.contains("Baseline"), "expected baseline rows, got:\n{stdout}");
}

#[test]
fn textual_targets_exit_zero() {
    for target in ["table1", "table2"] {
        let out = repro().arg(target).output().expect("repro binary runs");
        assert!(out.status.success(), "repro {target} failed");
        assert!(!out.stdout.is_empty(), "repro {target} printed nothing");
    }
}

#[test]
fn quick_partition_sweep_exits_zero_and_prints_rates() {
    let out =
        repro().args(["--quick", "--seed", "7", "partition"]).output().expect("repro binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "repro exited with {:?}; stderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("Partition during recovery"), "expected sweep title, got:\n{stdout}");
    assert!(stdout.contains("no partition"), "expected control row, got:\n{stdout}");
    assert!(stdout.contains("partition 10.0 s"), "expected duration rows, got:\n{stdout}");
}

#[test]
fn unknown_target_fails_with_usage() {
    let out = repro().arg("table99").output().expect("repro binary runs");
    assert!(!out.status.success(), "unknown target should exit non-zero");
}
