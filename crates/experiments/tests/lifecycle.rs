//! Table 1 end-to-end: the full SIFT environment boots, runs the texture
//! application, and reports completion to the SCC.

use ree_experiments::Scenario;
use ree_sim::SimTime;

#[test]
fn texture_app_completes_under_sift() {
    let scenario = Scenario::single_texture(1);
    let mut run = scenario.start();
    let done = run.run_until_done(SimTime::from_secs(300));
    if !done {
        // Dump trace tail for debugging.
        for r in run.cluster.trace().records().rev().take(60).collect::<Vec<_>>().iter().rev() {
            eprintln!("{} {:?} {}", r.time, r.pid, r.detail);
        }
    }
    assert!(done, "app did not complete; now={}", run.cluster.now());
    let times = run.job_times(0).expect("job record");
    let perceived = times.perceived().expect("perceived").as_secs_f64();
    let actual = times.actual().expect("actual").as_secs_f64();
    eprintln!("perceived={perceived:.2}s actual={actual:.2}s restarts={}", times.restarts);
    assert!(actual > 60.0 && actual < 90.0, "actual {actual}");
    assert!(perceived > actual, "perceived {perceived} must exceed actual {actual}");
    assert_eq!(times.restarts, 0);
}
