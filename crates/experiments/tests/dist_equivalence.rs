//! Equivalence of the repro-facing distributed target: the `dist`
//! wrapper (the same code path `repro dist` runs) must byte-match the
//! single-process aggregate, clean and under chaos. Workers are the
//! real `repro` binary, exactly as a user's supervisor would spawn it.

use ree_experiments::{dist, Effort};

fn repro_worker() -> Option<Vec<String>> {
    Some(vec![env!("CARGO_BIN_EXE_repro").to_string()])
}

#[test]
fn quick_dist_run_matches_single_process() {
    let outcome = dist::run_one(Effort::Quick, 7, 2, None, repro_worker()).expect("plan validates");
    assert!(outcome.matches(), "{}", dist::render(&outcome));
    assert!(dist::render(&outcome).contains("IDENTICAL"));
}

#[test]
fn quick_dist_run_with_kill_chaos_matches() {
    let outcome =
        dist::run_one(Effort::Quick, 7, 2, Some(ree_dist::ChaosMode::Kill), repro_worker())
            .expect("plan validates");
    assert!(outcome.matches(), "{}", dist::render(&outcome));
}
