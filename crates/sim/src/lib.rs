//! # ree-sim — deterministic discrete-event simulation kernel
//!
//! Foundation of the REE SIFT reproduction (Whisnant et al., CRHC-02-02):
//! virtual time, a deterministic future-event list, seedable random
//! streams, and a small generic executor.
//!
//! All higher layers (the simulated cluster OS, the ARMOR runtime, the
//! fault-injection campaigns, the SAN solver) are built on these types.
//! Determinism is the load-bearing property: a `(seed, configuration)`
//! pair must replay the identical trace so that injection campaigns are
//! debuggable and ablations comparable.
//!
//! ## Example
//!
//! ```
//! use ree_sim::{Engine, Scheduler, SimDuration, SimRng, SimTime, World};
//!
//! struct Poisson { rng: SimRng, arrivals: u32 }
//! impl World for Poisson {
//!     type Event = ();
//!     fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
//!         self.arrivals += 1;
//!         let gap = self.rng.exp_duration(2.0);
//!         sched.after(gap, ());
//!     }
//! }
//!
//! let mut engine = Engine::new(Poisson { rng: SimRng::new(1), arrivals: 0 });
//! engine.seed(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(100));
//! // Rate 2/s over 100 s: expect on the order of 200 arrivals.
//! assert!(engine.world().arrivals > 120 && engine.world().arrivals < 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod rng;
mod time;

pub use engine::{Engine, Scheduler, World};
pub use queue::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
