//! Virtual time for the discrete-event simulation.
//!
//! All timing in the reproduction is expressed in *virtual microseconds*.
//! The paper's measurements (75 s application runs, 10 s heartbeats, 0.5 s
//! recoveries) map 1:1 onto virtual seconds, so results read directly
//! against the paper's tables.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds since the start of
/// the simulation.
///
/// # Examples
///
/// ```
/// use ree_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(10);
/// assert_eq!(t.as_micros(), 10_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use ree_sim::SimDuration;
/// assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole virtual seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant expressed in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(5);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_seconds_conversion() {
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d.as_micros(), 500_000);
        assert_eq!(d.as_secs_f64(), 0.5);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.05), SimDuration::from_millis(500));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
