//! A minimal generic discrete-event executor.
//!
//! The cluster OS layer drives its own specialised loop, but smaller models
//! (the SAN solver, unit experiments) reuse this engine: a [`World`]
//! receives events in virtual-time order and may schedule more.

use crate::queue::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// The event-scheduling facade handed to a [`World`] while it processes an
/// event.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler { now: SimTime::ZERO, queue: EventQueue::new() }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules `event` at an absolute instant (clamped to now if in the
    /// past, preserving causality).
    pub fn at(&mut self, time: SimTime, event: E) -> EventHandle {
        let t = if time < self.now { self.now } else { time };
        self.queue.schedule(t, event)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

/// A simulated world: state plus an event handler.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at its firing time; may schedule further events
    /// through `sched`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Drives a [`World`] until quiescence or a time horizon.
///
/// # Examples
///
/// ```
/// use ree_sim::{Engine, Scheduler, SimDuration, SimTime, World};
///
/// struct Counter(u32);
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, _ev: (), sched: &mut Scheduler<()>) {
///         self.0 += 1;
///         if self.0 < 3 {
///             sched.after(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Counter(0));
/// engine.seed(SimTime::ZERO, ());
/// engine.run_until(SimTime::MAX);
/// assert_eq!(engine.world().0, 3);
/// ```
pub struct Engine<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    steps: u64,
}

impl<W: World> Engine<W> {
    /// Wraps a world with an empty schedule at time zero.
    pub fn new(world: W) -> Self {
        Engine { world, sched: Scheduler::new(), steps: 0 }
    }

    /// Schedules an initial event.
    pub fn seed(&mut self, time: SimTime, event: W::Event) -> EventHandle {
        self.sched.at(time, event)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Returns the final virtual time.
    ///
    /// Clock-at-horizon semantics: if the world went **quiescent** (no
    /// events left anywhere), virtual time stops at the last executed
    /// event — there is nothing left that could ever advance it. If the
    /// **horizon** was reached with events still pending beyond it, the
    /// clock advances to `horizon`: that much virtual time observably
    /// passed, and a subsequent `run_until` with a later horizon resumes
    /// from there.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (time, _, ev) = self.sched.queue.pop().expect("peeked event exists");
            self.sched.now = time;
            self.steps += 1;
            self.world.handle(ev, &mut self.sched);
        }
        if !self.sched.queue.is_empty() && self.sched.now < horizon {
            // Horizon reached with work still pending: time passed.
            self.sched.now = horizon;
        }
        self.sched.now
    }

    /// Executes a single event if one is pending; returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, _, ev) = self.sched.queue.pop()?;
        self.sched.now = time;
        self.steps += 1;
        self.world.handle(ev, &mut self.sched);
        Some(time)
    }

    /// Handles of every event that could legally fire next: all events
    /// scheduled for the earliest pending instant, in deterministic
    /// `(time, seq)` order. A model checker branches here — [`Engine::step`]
    /// always fires the first, but same-instant delivery order is a
    /// modelling choice, not a causal one. Empty when quiescent.
    pub fn step_choices(&self) -> Vec<EventHandle> {
        self.sched.queue.ready_handles()
    }

    /// Executes the specific pending event addressed by `handle`, which
    /// must be one of the current [`Engine::step_choices`] — firing an
    /// event scheduled *later* than the earliest pending instant would
    /// break causality, so such handles (and stale or foreign ones) are
    /// rejected with `None` and the engine is left untouched.
    pub fn step_with(&mut self, handle: EventHandle) -> Option<SimTime> {
        let time = self.sched.queue.time_of(handle)?;
        if Some(time) != self.sched.queue.peek_time() {
            return None;
        }
        let (time, ev) = self.sched.queue.pop_at(handle).expect("handle verified live");
        self.sched.now = time;
        self.steps += 1;
        self.world.handle(ev, &mut self.sched);
        Some(time)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Number of events executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Immutable access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world state.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

impl<W: World + std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.sched.now)
            .field("steps", &self.steps)
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ping {
        fired: Vec<u32>,
    }

    impl World for Ping {
        type Event = u32;
        fn handle(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
            self.fired.push(ev);
            if ev < 5 {
                sched.after(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn chains_events_in_order() {
        let mut e = Engine::new(Ping { fired: vec![] });
        e.seed(SimTime::ZERO, 0);
        e.run_until(SimTime::MAX);
        assert_eq!(e.world().fired, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.steps(), 6);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut e = Engine::new(Ping { fired: vec![] });
        e.seed(SimTime::ZERO, 0);
        e.run_until(SimTime::from_secs(2));
        assert_eq!(e.world().fired, vec![0, 1, 2]);
        // Remaining events still pending.
        assert_eq!(e.step(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn clock_at_horizon_semantics() {
        // Horizon reached with events pending beyond it: the clock
        // advances to the horizon even though no event fired there.
        let mut e = Engine::new(Ping { fired: vec![] });
        e.seed(SimTime::from_secs(30), 0);
        assert_eq!(e.run_until(SimTime::from_secs(10)), SimTime::from_secs(10));
        assert_eq!(e.now(), SimTime::from_secs(10));
        assert_eq!(e.steps(), 0);
        // Quiescence before the horizon: the clock stops at the last
        // executed event, not the horizon.
        let mut e = Engine::new(Ping { fired: vec![] });
        e.seed(SimTime::ZERO, 4); // fires at 0, chains once more at 1 s
        assert_eq!(e.run_until(SimTime::from_secs(100)), SimTime::from_secs(1));
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn step_with_explores_alternate_same_instant_orders() {
        struct Log(Vec<u32>);
        impl World for Log {
            type Event = u32;
            fn handle(&mut self, ev: u32, _sched: &mut Scheduler<u32>) {
                self.0.push(ev);
            }
        }
        let mut e = Engine::new(Log(vec![]));
        let t = SimTime::from_secs(1);
        e.seed(t, 10);
        e.seed(t, 11);
        let h_later = e.seed(SimTime::from_secs(2), 12);
        let choices = e.step_choices();
        assert_eq!(choices.len(), 2, "only the earliest instant is ready");
        // Causality guard: the later event cannot be forced ahead.
        assert_eq!(e.step_with(h_later), None);
        assert!(e.world().0.is_empty());
        // Fire the ready set in reverse order — legal, and observable.
        assert_eq!(e.step_with(choices[1]), Some(t));
        assert_eq!(e.step_with(choices[0]), Some(t));
        // A consumed choice handle is stale.
        assert_eq!(e.step_with(choices[0]), None);
        assert_eq!(e.step(), Some(SimTime::from_secs(2)));
        assert_eq!(e.world().0, vec![11, 10, 12]);
        assert_eq!(e.steps(), 3);
        assert!(e.step_choices().is_empty());
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct P(Vec<SimTime>);
        impl World for P {
            type Event = bool;
            fn handle(&mut self, first: bool, sched: &mut Scheduler<bool>) {
                self.0.push(sched.now());
                if first {
                    // Attempt to schedule in the past.
                    sched.at(SimTime::ZERO, false);
                }
            }
        }
        let mut e = Engine::new(P(vec![]));
        e.seed(SimTime::from_secs(10), true);
        e.run_until(SimTime::MAX);
        assert_eq!(e.world().0, vec![SimTime::from_secs(10), SimTime::from_secs(10)]);
    }
}
