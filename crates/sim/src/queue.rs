//! The pending-event set: a time-ordered queue with deterministic
//! tie-breaking and O(log n) cancellation.
//!
//! Implemented as an **indexed binary heap**: entries live in a slab
//! (`slots`, recycled through a free list) and the heap itself is an
//! array of `(time, seq, slot)` entries ordered by `(time, seq)`. The
//! key is stored *inline* in the heap entry, so sift comparisons touch
//! only the heap array — the slot-indirected layout cost two dependent
//! random loads per comparison, which dominated the dispatch loop's
//! cache misses. Every slot records its current heap position, so
//! cancellation removes the entry from the heap in O(log n) — no
//! tombstones accumulate, nothing is hashed on the hot path, and
//! [`EventQueue::peek_time`] is a true `&self` O(1) read. Slots carry a
//! generation that is bumped on every free, so a stale [`EventHandle`]
//! (fired, cancelled, or cleared) can never cancel the slot's next
//! occupant.

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Packs the slab slot index and the slot's generation; a handle whose
/// event already fired (or was cancelled) no longer matches the slot's
/// generation and is rejected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(index: u32, gen: u32) -> Self {
        EventHandle(u64::from(gen) << 32 | u64::from(index))
    }

    fn index(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Sentinel heap position for a slot that is not scheduled.
const FREE: u32 = u32::MAX;

#[derive(Clone)]
struct Slot<E> {
    /// Bumped every time the slot is vacated; half of handle validity.
    gen: u32,
    /// Current index into `EventQueue::heap`, or [`FREE`].
    pos: u32,
    event: Option<E>,
}

/// One heap entry: the full ordering key plus the payload's slot. The
/// key lives here (not in the slot) so sifting never chases the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    /// Scheduling order; ties on `time` fire in `seq` order, which keeps
    /// runs bit-for-bit reproducible.
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant fire in the order they were
/// scheduled. Cancellation physically removes the entry, so `len` and
/// `is_empty` are exact and no cancelled entry is ever touched again.
///
/// # Examples
///
/// ```
/// use ree_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().2, "sooner");
/// ```
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Min-heap of `(time, seq, slot)` entries, ordered by `(time, seq)`.
    heap: Vec<HeapEntry>,
    next_seq: u64,
}

/// Cloning a queue clones every pending event (warm-boot snapshot
/// forking); handles issued by the original remain valid against the
/// clone because slot indices, generations, and heap layout are copied
/// verbatim. Capacity is preserved too: the snapshot's vectors sit at
/// their boot-time high-water mark and every forked run schedules past
/// the current length immediately, so a `len`-sized clone would re-grow
/// through the same doublings on every run.
impl<E: Clone> Clone for EventQueue<E> {
    fn clone(&self) -> Self {
        fn presized<T: Clone>(v: &[T], capacity: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(capacity);
            out.extend_from_slice(v);
            out
        }
        EventQueue {
            slots: presized(&self.slots, self.slots.capacity()),
            free: presized(&self.free, self.free.capacity()),
            heap: presized(&self.heap, self.heap.capacity()),
            next_seq: self.next_seq,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { slots: Vec::new(), free: Vec::new(), heap: Vec::new(), next_seq: 0 }
    }

    /// Writes `entry` into heap position `pos` and records the position.
    #[inline]
    fn place(&mut self, pos: usize, entry: HeapEntry) {
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }

    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.place(pos, self.heap[parent]);
            pos = parent;
        }
        self.place(pos, entry);
    }

    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        loop {
            let mut child = 2 * pos + 1;
            if child >= self.heap.len() {
                break;
            }
            let right = child + 1;
            if right < self.heap.len() && self.heap[right].key() < self.heap[child].key() {
                child = right;
            }
            if key <= self.heap[child].key() {
                break;
            }
            self.place(pos, self.heap[child]);
            pos = child;
        }
        self.place(pos, entry);
    }

    /// Removes the heap entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.pop().expect("remove_at on non-empty heap");
        if pos < self.heap.len() {
            self.place(pos, last);
            // The swapped-in entry may violate the property in either
            // direction relative to its new neighbourhood.
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    /// Fast path for [`EventQueue::pop`]: removes the root and re-sifts
    /// the last entry down from it (the root never needs `sift_up`).
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on non-empty heap");
        if !self.heap.is_empty() {
            self.place(0, last);
            self.sift_down(0);
        }
    }

    /// Vacates `slot`, invalidating all outstanding handles to it.
    fn release(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = FREE;
        let ev = s.event.take().expect("released slot holds an event");
        self.free.push(slot);
        ev
    }

    /// Schedules `event` to fire at `time`; returns a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].event = Some(event);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Slot { gen: 0, pos: FREE, event: Some(event) });
                i
            }
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { time, seq, slot });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventHandle::new(slot, self.slots[slot as usize].gen)
    }

    /// Cancels a previously scheduled event in O(log n). Returns `true`
    /// only if the event was still pending — cancelling an event that
    /// already fired (or was already cancelled) is a no-op reporting
    /// `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let idx = handle.index();
        let Some(slot) = self.slots.get(idx as usize) else { return false };
        if slot.gen != handle.gen() || slot.pos == FREE {
            return false;
        }
        let pos = slot.pos as usize;
        self.remove_at(pos);
        self.release(idx);
        true
    }

    /// Removes and returns the earliest live event as `(time, handle, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventHandle, E)> {
        let HeapEntry { time, slot, .. } = *self.heap.first()?;
        let gen = self.slots[slot as usize].gen;
        self.remove_root();
        let ev = self.release(slot);
        Some((time, EventHandle::new(slot, gen), ev))
    }

    /// Time of the earliest live event without removing it — O(1), and
    /// borrows the queue immutably.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|entry| entry.time)
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (handles to them become stale).
    pub fn clear(&mut self) {
        while let Some(entry) = self.heap.pop() {
            self.release(entry.slot);
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.heap.len())
            .field("slots", &self.slots.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_survive_slot_reuse() {
        // Slot indices get recycled out of order; the (time, seq) key —
        // not the slot index — must decide simultaneous events.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        let h0 = q.schedule(t, 100);
        let h1 = q.schedule(t, 101);
        assert!(q.cancel(h1));
        assert!(q.cancel(h0));
        for i in 0..6 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_is_immutable_and_exact() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.cancel(h);
        let q_ref: &EventQueue<&str> = &q;
        assert_eq!(q_ref.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn interleaved_cancel_peek_pop_never_sees_cancelled() {
        // Deterministic pseudo-random interleaving of all four ops; the
        // popped stream must never contain a cancelled payload and peek
        // must always agree with the next pop.
        let mut q = EventQueue::new();
        let mut live: Vec<(EventHandle, u64)> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next_id: u64 = 0;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 4 {
                0 | 1 => {
                    let h = q.schedule(SimTime::from_micros(x % 1000), next_id);
                    live.push((h, next_id));
                    next_id += 1;
                }
                2 => {
                    if !live.is_empty() {
                        let (h, id) = live.swap_remove((x / 7) as usize % live.len());
                        assert!(q.cancel(h), "live handle must cancel (step {step})");
                        assert!(!q.cancel(h), "second cancel must fail");
                        cancelled.push(id);
                    }
                }
                _ => {
                    let peeked = q.peek_time();
                    match q.pop() {
                        Some((t, h, id)) => {
                            assert_eq!(peeked, Some(t), "peek/pop disagree (step {step})");
                            assert!(
                                !cancelled.contains(&id),
                                "cancelled event {id} surfaced (step {step})"
                            );
                            assert!(!q.cancel(h), "cancel after fire must fail");
                            live.retain(|(_, l)| *l != id);
                        }
                        None => {
                            assert_eq!(peeked, None);
                            assert!(live.is_empty());
                        }
                    }
                }
            }
            assert_eq!(q.len(), live.len(), "len drift at step {step}");
        }
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(!q.cancel(h), "handles go stale on clear");
        // The queue remains fully usable after clear.
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn cancel_after_fire_reports_false_and_keeps_len_honest() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        // The event already fired: cancel must be a truthful no-op.
        assert!(!q.cancel(h1), "cancel after fire must report false");
        assert_eq!(q.len(), 1, "len must not be decremented by a stale cancel");
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(!q.cancel(h2), "cancel after fire must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Nothing leaks: a fresh schedule still behaves normally.
        let h3 = q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().2, "a");
        // "b" reuses the freed slot; the stale handle must not kill it.
        q.schedule(SimTime::from_secs(2), "b");
        assert!(!q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
