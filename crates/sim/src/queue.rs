//! The pending-event set: a time-ordered queue with deterministic
//! tie-breaking and O(log n) cancellation.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: Option<E>,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The seq tie-break makes simultaneous events fire in
        // scheduling order, which keeps runs bit-for-bit reproducible.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant fire in the order they were
/// scheduled. Cancellation is lazy: cancelled entries stay in the heap
/// and are skipped on pop. The `pending` set holds exactly the seqs that
/// are scheduled but have neither fired nor been cancelled, so
/// [`EventQueue::cancel`] is truthful after the event has already fired
/// and `len`/`is_empty` never drift.
///
/// # Examples
///
/// ```
/// use ree_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().2, "sooner");
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    pending: std::collections::HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`; returns a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event: Some(event) });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` only if the
    /// event was still pending — cancelling an event that already fired
    /// (or was already cancelled) is a no-op reporting `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest live event as `(time, handle, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventHandle, E)> {
        while let Some(mut entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                // Cancelled tombstone: drop it.
                continue;
            }
            let ev = entry.event.take().expect("event present for live entry");
            return Some((entry.time, EventHandle(entry.seq), ev));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let skip = match self.heap.peek() {
                Some(entry) => !self.pending.contains(&entry.seq),
                None => return None,
            };
            if skip {
                self.heap.pop().expect("peeked entry exists");
            } else {
                return self.heap.peek().map(|e| e.time);
            }
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.pending.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_reports_false_and_keeps_len_honest() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        // The event already fired: cancel must be a truthful no-op.
        assert!(!q.cancel(h1), "cancel after fire must report false");
        assert_eq!(q.len(), 1, "len must not be decremented by a stale cancel");
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(!q.cancel(h2), "cancel after fire must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Nothing leaks: a fresh schedule still behaves normally.
        let h3 = q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
