//! The pending-event set: a time-ordered queue with deterministic
//! tie-breaking and O(log n) cancellation.
//!
//! Implemented as an **indexed binary heap**: entries live in a slab
//! (`slots`, recycled through a free list) and the heap itself is an
//! array of `(time, seq, slot)` entries ordered by `(time, seq)`. The
//! key is stored *inline* in the heap entry, so sift comparisons touch
//! only the heap array — the slot-indirected layout cost two dependent
//! random loads per comparison, which dominated the dispatch loop's
//! cache misses. Every slot records its current heap position, so
//! cancellation removes the entry from the heap in O(log n) — no
//! tombstones accumulate, nothing is hashed on the hot path, and
//! [`EventQueue::peek_time`] is a true `&self` O(1) read. Slots carry a
//! generation that is bumped on every free, so a stale [`EventHandle`]
//! (fired, cancelled, or cleared) can never cancel the slot's next
//! occupant.

use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide queue-identity counter. Validity of a handle is tied to
/// the exact queue instance that minted it, so every queue — including
/// every clone — gets a fresh identity. Only uniqueness matters here,
/// never the numeric value, so the allocation order of concurrent forks
/// cannot perturb simulation behaviour.
static NEXT_QUEUE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_queue_id() -> u64 {
    NEXT_QUEUE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Carries the identity of the queue that minted it plus the slab slot
/// index and the slot's generation. A handle whose event already fired
/// (or was cancelled) no longer matches the slot's generation and is
/// rejected; a handle presented to a *different* queue — including a
/// clone of the minting queue — is rejected by the queue identity.
/// Without the identity check, two clones that independently recycle
/// the same slot mint indistinguishable handles, and a handle from one
/// clone could cancel an unrelated event in the other.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventHandle {
    queue: u64,
    packed: u64,
}

impl EventHandle {
    fn new(queue: u64, index: u32, gen: u32) -> Self {
        EventHandle { queue, packed: u64::from(gen) << 32 | u64::from(index) }
    }

    fn index(self) -> u32 {
        self.packed as u32
    }

    fn gen(self) -> u32 {
        (self.packed >> 32) as u32
    }
}

/// Sentinel heap position for a slot that is not scheduled.
const FREE: u32 = u32::MAX;

#[derive(Clone)]
struct Slot<E> {
    /// Bumped every time the slot is vacated; half of handle validity.
    gen: u32,
    /// Current index into `EventQueue::heap`, or [`FREE`].
    pos: u32,
    event: Option<E>,
}

/// One heap entry: the full ordering key plus the payload's slot. The
/// key lives here (not in the slot) so sifting never chases the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    /// Scheduling order; ties on `time` fire in `seq` order, which keeps
    /// runs bit-for-bit reproducible.
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant fire in the order they were
/// scheduled. Cancellation physically removes the entry, so `len` and
/// `is_empty` are exact and no cancelled entry is ever touched again.
///
/// # Examples
///
/// ```
/// use ree_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().unwrap().2, "sooner");
/// ```
pub struct EventQueue<E> {
    /// This queue's identity; embedded in every handle it mints.
    id: u64,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Min-heap of `(time, seq, slot)` entries, ordered by `(time, seq)`.
    heap: Vec<HeapEntry>,
    next_seq: u64,
}

/// Cloning a queue clones every pending event (warm-boot snapshot
/// forking). The clone gets a **fresh queue identity**, so handles
/// minted by the original are rejected by the clone and vice versa:
/// after the fork the two queues recycle slots independently, and a
/// pre-fork handle could otherwise cancel an unrelated occupant of the
/// same slot on the other side. Capacity is preserved: the snapshot's
/// vectors sit at their boot-time high-water mark and every forked run
/// schedules past the current length immediately, so a `len`-sized
/// clone would re-grow through the same doublings on every run.
impl<E: Clone> Clone for EventQueue<E> {
    fn clone(&self) -> Self {
        fn presized<T: Clone>(v: &[T], capacity: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(capacity);
            out.extend_from_slice(v);
            out
        }
        EventQueue {
            id: fresh_queue_id(),
            slots: presized(&self.slots, self.slots.capacity()),
            free: presized(&self.free, self.free.capacity()),
            heap: presized(&self.heap, self.heap.capacity()),
            next_seq: self.next_seq,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            id: fresh_queue_id(),
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// Writes `entry` into heap position `pos` and records the position.
    #[inline]
    fn place(&mut self, pos: usize, entry: HeapEntry) {
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].pos = pos as u32;
    }

    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[parent].key() <= key {
                break;
            }
            self.place(pos, self.heap[parent]);
            pos = parent;
        }
        self.place(pos, entry);
    }

    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        loop {
            let mut child = 2 * pos + 1;
            if child >= self.heap.len() {
                break;
            }
            let right = child + 1;
            if right < self.heap.len() && self.heap[right].key() < self.heap[child].key() {
                child = right;
            }
            if key <= self.heap[child].key() {
                break;
            }
            self.place(pos, self.heap[child]);
            pos = child;
        }
        self.place(pos, entry);
    }

    /// Removes the heap entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.pop().expect("remove_at on non-empty heap");
        if pos < self.heap.len() {
            self.place(pos, last);
            // The swapped-in entry may violate the property in either
            // direction relative to its new neighbourhood.
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    /// Fast path for [`EventQueue::pop`]: removes the root and re-sifts
    /// the last entry down from it (the root never needs `sift_up`).
    fn remove_root(&mut self) {
        let last = self.heap.pop().expect("remove_root on non-empty heap");
        if !self.heap.is_empty() {
            self.place(0, last);
            self.sift_down(0);
        }
    }

    /// Vacates `slot`, invalidating all outstanding handles to it.
    fn release(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = FREE;
        let ev = s.event.take().expect("released slot holds an event");
        self.free.push(slot);
        ev
    }

    /// Schedules `event` to fire at `time`; returns a cancellation handle.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].event = Some(event);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Slot { gen: 0, pos: FREE, event: Some(event) });
                i
            }
        };
        let pos = self.heap.len();
        self.heap.push(HeapEntry { time, seq, slot });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventHandle::new(self.id, slot, self.slots[slot as usize].gen)
    }

    /// Returns the heap position of a live event this queue minted a
    /// handle for, or `None` if the handle is stale or foreign.
    #[inline]
    fn live_pos(&self, handle: EventHandle) -> Option<usize> {
        if handle.queue != self.id {
            return None;
        }
        let slot = self.slots.get(handle.index() as usize)?;
        if slot.gen != handle.gen() || slot.pos == FREE {
            return None;
        }
        Some(slot.pos as usize)
    }

    /// Cancels a previously scheduled event in O(log n). Returns `true`
    /// only if the event was still pending — cancelling an event that
    /// already fired (or was already cancelled) is a no-op reporting
    /// `false`, as is presenting a handle minted by a different queue
    /// (e.g. the pre-fork original of a cloned queue).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pop_at(handle).is_some()
    }

    /// Removes and returns the earliest live event as `(time, handle, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventHandle, E)> {
        let HeapEntry { time, slot, .. } = *self.heap.first()?;
        let gen = self.slots[slot as usize].gen;
        self.remove_root();
        let ev = self.release(slot);
        Some((time, EventHandle::new(self.id, slot, gen), ev))
    }

    /// Removes and returns a *specific* live event by handle, as
    /// `(time, event)` — the choice-point primitive: a model checker
    /// picks one of several same-instant events to fire first instead of
    /// always taking the `(time, seq)` minimum. Returns `None` for
    /// stale or foreign handles; the queue is untouched in that case.
    pub fn pop_at(&mut self, handle: EventHandle) -> Option<(SimTime, E)> {
        let pos = self.live_pos(handle)?;
        let time = self.heap[pos].time;
        self.remove_at(pos);
        let ev = self.release(handle.index());
        Some((time, ev))
    }

    /// Time of the earliest live event without removing it — O(1), and
    /// borrows the queue immutably.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|entry| entry.time)
    }

    /// Scheduled time of a specific live event, or `None` for stale or
    /// foreign handles.
    pub fn time_of(&self, handle: EventHandle) -> Option<SimTime> {
        self.live_pos(handle).map(|pos| self.heap[pos].time)
    }

    /// Borrows a specific live event, or `None` for stale/foreign handles.
    pub fn get(&self, handle: EventHandle) -> Option<&E> {
        let pos = self.live_pos(handle)?;
        self.slots[self.heap[pos].slot as usize].event.as_ref()
    }

    /// Handles of every event scheduled for the earliest pending
    /// instant, in deterministic `(time, seq)` pop order — the set of
    /// events [`EventQueue::pop`] could legally fire next under a
    /// relaxed same-instant ordering. Empty when the queue is empty;
    /// a singleton when the next instant has exactly one event.
    pub fn ready_handles(&self) -> Vec<EventHandle> {
        let Some(first) = self.heap.first() else { return Vec::new() };
        let t = first.time;
        let mut ready: Vec<(u64, EventHandle)> = self
            .heap
            .iter()
            .filter(|entry| entry.time == t)
            .map(|entry| {
                let slot = entry.slot;
                (entry.seq, EventHandle::new(self.id, slot, self.slots[slot as usize].gen))
            })
            .collect();
        ready.sort_unstable_by_key(|&(seq, _)| seq);
        ready.into_iter().map(|(_, h)| h).collect()
    }

    /// Iterates over every pending event as `(time, seq, event)`.
    ///
    /// Order is **heap order**, not firing order — callers that need a
    /// canonical view (e.g. state hashing) must sort by `(time, seq)`.
    /// `seq` values are only meaningful relative to each other.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.heap.iter().map(|entry| {
            let ev = self.slots[entry.slot as usize]
                .event
                .as_ref()
                .expect("heap entry points at occupied slot");
            (entry.time, entry.seq, ev)
        })
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (handles to them become stale).
    pub fn clear(&mut self) {
        while let Some(entry) = self.heap.pop() {
            self.release(entry.slot);
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.heap.len())
            .field("slots", &self.slots.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_survive_slot_reuse() {
        // Slot indices get recycled out of order; the (time, seq) key —
        // not the slot index — must decide simultaneous events.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        let h0 = q.schedule(t, 100);
        let h1 = q.schedule(t, 101);
        assert!(q.cancel(h1));
        assert!(q.cancel(h0));
        for i in 0..6 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_is_immutable_and_exact() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.cancel(h);
        let q_ref: &EventQueue<&str> = &q;
        assert_eq!(q_ref.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn interleaved_cancel_peek_pop_never_sees_cancelled() {
        // Deterministic pseudo-random interleaving of all four ops; the
        // popped stream must never contain a cancelled payload and peek
        // must always agree with the next pop.
        let mut q = EventQueue::new();
        let mut live: Vec<(EventHandle, u64)> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next_id: u64 = 0;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 4 {
                0 | 1 => {
                    let h = q.schedule(SimTime::from_micros(x % 1000), next_id);
                    live.push((h, next_id));
                    next_id += 1;
                }
                2 => {
                    if !live.is_empty() {
                        let (h, id) = live.swap_remove((x / 7) as usize % live.len());
                        assert!(q.cancel(h), "live handle must cancel (step {step})");
                        assert!(!q.cancel(h), "second cancel must fail");
                        cancelled.push(id);
                    }
                }
                _ => {
                    let peeked = q.peek_time();
                    match q.pop() {
                        Some((t, h, id)) => {
                            assert_eq!(peeked, Some(t), "peek/pop disagree (step {step})");
                            assert!(
                                !cancelled.contains(&id),
                                "cancelled event {id} surfaced (step {step})"
                            );
                            assert!(!q.cancel(h), "cancel after fire must fail");
                            live.retain(|(_, l)| *l != id);
                        }
                        None => {
                            assert_eq!(peeked, None);
                            assert!(live.is_empty());
                        }
                    }
                }
            }
            assert_eq!(q.len(), live.len(), "len drift at step {step}");
        }
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(!q.cancel(h), "handles go stale on clear");
        // The queue remains fully usable after clear.
        q.schedule(SimTime::from_secs(3), ());
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
    }

    #[test]
    fn cancel_after_fire_reports_false_and_keeps_len_honest() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        let h2 = q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().2, "a");
        // The event already fired: cancel must be a truthful no-op.
        assert!(!q.cancel(h1), "cancel after fire must report false");
        assert_eq!(q.len(), 1, "len must not be decremented by a stale cancel");
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(!q.cancel(h2), "cancel after fire must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Nothing leaks: a fresh schedule still behaves normally.
        let h3 = q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().2, "a");
        // "b" reuses the freed slot; the stale handle must not kill it.
        q.schedule(SimTime::from_secs(2), "b");
        assert!(!q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn cross_clone_handles_are_rejected() {
        // Regression: before handles carried a queue identity, a handle
        // minted by the original could address the *same slot index* in
        // a clone. Once both sides independently recycle that slot the
        // generations can re-align, and the foreign handle would cancel
        // an unrelated event.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "b");
        let mut q2 = q.clone();
        // Both queues now mint slot 1 with the same generation.
        let hc = q.schedule(SimTime::from_secs(2), "c");
        let hd = q2.schedule(SimTime::from_secs(2), "d");
        assert!(!q2.cancel(hc), "foreign handle must not cancel in the clone");
        assert_eq!(q2.len(), 2, "clone's own event must survive the foreign cancel");
        assert!(!q.cancel(hd), "foreign handle must not cancel in the original");
        assert!(q.cancel(hc), "handle stays valid against its minting queue");
        assert!(q2.cancel(hd), "handle stays valid against its minting queue");
        assert_eq!(q2.pop().unwrap().2, "b");
        // Lookups are gated the same way as cancellation.
        let he = q.schedule(SimTime::from_secs(3), "e");
        assert!(q2.get(he).is_none());
        assert!(q2.time_of(he).is_none());
        assert!(q2.pop_at(he).is_none());
    }

    #[test]
    fn ready_handles_cover_the_earliest_instant_in_pop_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(SimTime::from_secs(5), 99);
        let h0 = q.schedule(t, 0);
        let h1 = q.schedule(t, 1);
        let h2 = q.schedule(t, 2);
        assert_eq!(q.ready_handles(), vec![h0, h1, h2]);
        // Cancelling the seq-minimum re-elects the next in seq order.
        assert!(q.cancel(h0));
        assert_eq!(q.ready_handles(), vec![h1, h2]);
        // pop_at can fire a non-minimum ready event out of seq order.
        assert_eq!(q.pop_at(h2), Some((t, 2)));
        assert_eq!(q.ready_handles(), vec![h1]);
        assert_eq!(q.pop().unwrap().2, 1);
        assert_eq!(q.ready_handles().len(), 1, "later instant becomes ready");
        assert_eq!(q.pop().unwrap().2, 99);
        assert!(q.ready_handles().is_empty());
    }

    #[test]
    fn pop_at_matches_pop_for_the_minimum_and_rejects_stale() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.get(h), Some(&"a"));
        assert_eq!(q.time_of(h), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop_at(h), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop_at(h), None, "second pop_at of same handle fails");
        assert!(q.get(h).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().2, "b");
    }

    #[test]
    fn iter_pending_enumerates_all_live_events() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(2), "dead");
        q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(3), "y");
        q.cancel(h);
        let mut seen: Vec<(SimTime, u64, &str)> =
            q.iter_pending().map(|(t, s, e)| (t, s, *e)).collect();
        seen.sort_unstable_by_key(|&(t, s, _)| (t, s));
        assert_eq!(seen, vec![(SimTime::from_secs(1), 1, "x"), (SimTime::from_secs(3), 2, "y")]);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
