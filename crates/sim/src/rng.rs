//! Deterministic random-number generation for reproducible experiments.
//!
//! Every injection run in the paper reproduction is driven by a single
//! seeded stream so a (seed, campaign) pair always replays the identical
//! trace. The generator is a self-contained xoshiro256++ (public domain
//! algorithm by Blackman & Vigna) seeded through SplitMix64, so results do
//! not depend on `rand`'s version-specific `StdRng` internals.

use crate::time::SimDuration;

/// A deterministic pseudo-random generator with cheap substream forking.
///
/// # Examples
///
/// ```
/// use ree_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// The raw xoshiro256++ state words — a stable fingerprint of the
    /// stream's position. Two generators with equal state produce
    /// identical futures, so state digests (e.g. model-checker
    /// convergence hashing) can include this to distinguish runs whose
    /// visible state matches but whose randomness has diverged.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derives an independent substream tagged by `tag`.
    ///
    /// Forking lets each subsystem (network, per-process machine model,
    /// injector) own its own stream so adding draws in one subsystem does
    /// not perturb another — essential when comparing ablations run for
    /// run.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng::new(mixed)
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed sample with the given `rate` (per second),
    /// returned as a duration.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp_duration(&mut self, rate: f64) -> SimDuration {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        SimDuration::from_secs_f64((-u.ln() / rate).min(1e12))
    }

    /// Uniform duration in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.range_u64(lo.as_micros(), hi.as_micros()))
    }

    /// Normally distributed sample (Box–Muller) with the given mean and
    /// standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "weights must be non-empty with positive sum");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut child1 = parent1.fork(3);
        let mut child2 = parent2.fork(3);
        // Drawing extra numbers from one parent must not affect its child.
        let _ = parent1.next_u64();
        for _ in 0..16 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_roughly_matches_rate() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(0.5).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} should be near 2.0");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(19);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03);
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SimRng::new(23);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
