//! Model-based property test for `EventQueue` clone independence.
//!
//! The model checker's fork-per-branch driver clones a queue mid-run and
//! then mutates both sides along different explorations. That is only
//! sound if (a) a clone is an exact snapshot — identical pop order and
//! `(time, seq)` tie-breaks from the moment of the fork — and (b) the
//! two sides are fully independent afterwards: operations on one never
//! perturb the other, and handles never work across the fork in either
//! direction.

use proptest::prelude::*;
use ree_sim::{EventHandle, EventQueue, SimTime};

/// Sorted-vec reference model of one queue: `(time, seq, id)` entries in
/// pop order, plus the handle book-keeping needed to replay cancels.
struct Model {
    entries: Vec<(u64, u64, u64)>,
    /// Every handle this queue ever minted, with its seq.
    handles: Vec<(EventHandle, u64)>,
}

impl Model {
    fn new() -> Self {
        Model { entries: Vec::new(), handles: Vec::new() }
    }

    /// Forks the model at a clone point. Pending entries carry over;
    /// handle history does NOT — pre-clone handles belong to the
    /// original queue only, so the clone's model starts with an empty
    /// mint history.
    fn fork(&self) -> Self {
        Model { entries: self.entries.clone(), handles: Vec::new() }
    }

    fn schedule(&mut self, q: &mut EventQueue<u64>, time: u64, seq: u64, id: u64) {
        let h = q.schedule(SimTime::from_micros(time), id);
        self.entries.push((time, seq, id));
        self.entries.sort_unstable();
        self.handles.push((h, seq));
    }
}

/// Applies one op to a (queue, model) pair and checks agreement. Returns
/// an error string on divergence so `prop_assert!` can surface it.
fn apply_op(
    q: &mut EventQueue<u64>,
    m: &mut Model,
    op: u8,
    time: u64,
    pick: u64,
    next_seq: &mut u64,
    next_id: &mut u64,
) -> Result<(), String> {
    match op {
        0..=4 => {
            m.schedule(q, time, *next_seq, *next_id);
            *next_seq += 1;
            *next_id += 1;
        }
        5 | 6 => {
            if !m.handles.is_empty() {
                let i = (pick as usize) % m.handles.len();
                let (h, seq) = m.handles[i];
                let in_model = m.entries.iter().any(|(_, s, _)| *s == seq);
                if q.cancel(h) != in_model {
                    return Err(format!("cancel truthfulness for seq {seq}"));
                }
                m.entries.retain(|(_, s, _)| *s != seq);
            }
        }
        _ => match (q.pop(), m.entries.is_empty()) {
            (Some((t, _, id)), false) => {
                let (mt, _, mid) = m.entries.remove(0);
                if t != SimTime::from_micros(mt) || id != mid {
                    return Err(format!("pop mismatch: got ({t:?}, {id}), want ({mt}, {mid})"));
                }
            }
            (None, true) => {}
            (got, _) => {
                return Err(format!("pop mismatch: {:?} vs model {:?}", got, m.entries.first()))
            }
        },
    }
    if q.len() != m.entries.len() {
        return Err(format!("len drift: queue {} vs model {}", q.len(), m.entries.len()));
    }
    let model_head = m.entries.first().map(|(t, _, _)| SimTime::from_micros(*t));
    if q.peek_time() != model_head {
        return Err("peek disagrees with model head".into());
    }
    Ok(())
}

proptest! {
    /// Clone a queue mid-churn, then interleave schedule/cancel/pop on
    /// both sides against two independent sorted-vec models. Each side
    /// must track its own model exactly, cross-side handles must always
    /// be rejected without perturbing anything, and draining both sides
    /// at the end must replay each model verbatim.
    #[test]
    fn cloned_queues_evolve_independently(
        pre_ops in proptest::collection::vec((0u8..10, 0u64..500, any::<u64>()), 1..80),
        post_ops in proptest::collection::vec(
            (any::<bool>(), 0u8..10, 0u64..500, any::<u64>()),
            1..200,
        ),
    ) {
        let mut q = EventQueue::new();
        let mut m = Model::new();
        let mut next_seq: u64 = 0;
        let mut next_id: u64 = 0;
        for (op, time, pick) in pre_ops {
            prop_assert!(
                apply_op(&mut q, &mut m, op, time, pick, &mut next_seq, &mut next_id).is_ok()
            );
        }

        // Fork mid-churn. The clone inherits the pending set but not the
        // original's handle validity.
        let mut q2 = q.clone();
        let mut m2 = m.fork();
        let pre_clone_handles: Vec<EventHandle> = m.handles.iter().map(|(h, _)| *h).collect();
        // Ids stay globally unique so a pop on the wrong side could never
        // masquerade as the right payload; seqs restart per side because
        // only relative order within one queue matters.
        let mut seq1 = next_seq;
        let mut seq2 = next_seq;
        let mut id2 = next_id + 1_000_000;

        for (side, op, time, pick) in post_ops {
            let (qq, mm, sq, id) = if side {
                (&mut q2, &mut m2, &mut seq2, &mut id2)
            } else {
                (&mut q, &mut m, &mut seq1, &mut next_id)
            };
            if let Err(e) = apply_op(qq, mm, op, time, pick, sq, id) {
                prop_assert!(false, "side {} diverged: {}", side as u8, e);
            }
            // Cross-fork probes: pre-clone handles must never act on the
            // clone, and each side's fresh handles must never act on the
            // other. A rejected op must also leave state untouched —
            // verified implicitly because both models keep matching.
            if let Some(h) = pre_clone_handles.get((pick as usize) % pre_clone_handles.len().max(1))
            {
                prop_assert!(!q2.cancel(*h), "pre-clone handle acted on the clone");
                prop_assert!(q2.pop_at(*h).is_none());
                prop_assert!(q2.get(*h).is_none());
            }
            if let Some((h, _)) = m2.handles.last() {
                prop_assert!(!q.cancel(*h), "clone-minted handle acted on the original");
            }
            if let Some((h, _)) = m.handles.iter().find(|(_, s)| *s >= next_seq) {
                prop_assert!(!q2.cancel(*h), "post-clone original handle acted on the clone");
            }
        }

        // Drain both sides: exact model order, on each side independently.
        for (qq, mm) in [(&mut q, &mut m), (&mut q2, &mut m2)] {
            while let Some((t, _, id)) = qq.pop() {
                prop_assert!(!mm.entries.is_empty(), "queue outlived its model");
                let (mt, _, mid) = mm.entries.remove(0);
                prop_assert_eq!(t, SimTime::from_micros(mt));
                prop_assert_eq!(id, mid);
            }
            prop_assert!(mm.entries.is_empty(), "model outlived its queue");
        }
    }
}
