//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use ree_sim::{EventHandle, EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Popping the queue always yields non-decreasing times, regardless of
    /// the insertion order.
    #[test]
    fn queue_pops_monotonically(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelled events never surface; everything else does, exactly once.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule(SimTime::from_micros(*t), i)))
            .collect();
        let mut expected: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for (i, h) in &handles {
            if *cancel_mask.get(*i % cancel_mask.len()).unwrap_or(&false) {
                q.cancel(*h);
                expected.remove(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, _, id)) = q.pop() {
            prop_assert!(seen.insert(id), "event {} delivered twice", id);
        }
        prop_assert_eq!(seen, expected);
    }

    /// Model-based check of the indexed-heap queue: a random
    /// schedule/cancel/pop/clear interleaving behaves exactly like a
    /// sorted-vec reference model — identical pop order (including
    /// `(time, seq)` tie-breaks), identical `len`, identical `cancel`
    /// return values, and `peek_time` always equal to the model's head.
    #[test]
    fn queue_matches_sorted_vec_model(
        ops in proptest::collection::vec((0u8..10, 0u64..500, any::<u64>()), 1..300),
    ) {
        // Reference model: Vec of (time, seq, id) kept sorted; seq is the
        // global scheduling order.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut handles: Vec<(EventHandle, u64)> = Vec::new(); // (handle, seq)
        let mut next_seq: u64 = 0;
        let mut next_id: u64 = 0;
        for (op, time, pick) in ops {
            match op {
                // Weight scheduling highest so interleavings stay deep.
                0..=4 => {
                    let h = q.schedule(SimTime::from_micros(time), next_id);
                    model.push((time, next_seq, next_id));
                    model.sort_unstable();
                    handles.push((h, next_seq));
                    next_seq += 1;
                    next_id += 1;
                }
                5 | 6 => {
                    // Cancel a handle (possibly already fired/cancelled).
                    if !handles.is_empty() {
                        let i = (pick as usize) % handles.len();
                        let (h, seq) = handles[i];
                        let in_model = model.iter().any(|(_, s, _)| *s == seq);
                        prop_assert_eq!(q.cancel(h), in_model, "cancel truthfulness");
                        model.retain(|(_, s, _)| *s != seq);
                    }
                }
                7 | 8 => {
                    let popped = q.pop();
                    match (popped, model.is_empty()) {
                        (Some((t, _, id)), false) => {
                            let (mt, _, mid) = model.remove(0);
                            prop_assert_eq!(t, SimTime::from_micros(mt), "pop time");
                            prop_assert_eq!(id, mid, "pop order");
                        }
                        (None, true) => {}
                        (got, _) => prop_assert!(false, "pop mismatch: {:?} vs model {:?}", got, model.first()),
                    }
                }
                _ => {
                    if pick % 11 == 0 {
                        // Clear rarely: it resets the whole interleaving.
                        q.clear();
                        model.clear();
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len(), "len agrees with model");
            prop_assert_eq!(
                q.peek_time(),
                model.first().map(|(t, _, _)| SimTime::from_micros(*t)),
                "peek agrees with model head"
            );
        }
        // Drain: the tail must come out in exact model order.
        while let Some((t, _, id)) = q.pop() {
            let (mt, _, mid) = model.remove(0);
            prop_assert_eq!(t, SimTime::from_micros(mt));
            prop_assert_eq!(id, mid);
        }
        prop_assert!(model.is_empty());
    }

    /// Identical seeds produce identical streams across all helper
    /// distributions (replay determinism).
    #[test]
    fn rng_replay_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(a.below(97), b.below(97));
            prop_assert!((a.f64() - b.f64()).abs() == 0.0);
            prop_assert_eq!(a.exp_duration(1.5), b.exp_duration(1.5));
        }
    }

    /// `below(n)` is always strictly less than `n`.
    #[test]
    fn below_upper_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Uniform durations stay inside their half-open interval.
    #[test]
    fn uniform_duration_in_range(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        let lo_d = SimDuration::from_micros(lo);
        let hi_d = SimDuration::from_micros(lo + width);
        for _ in 0..20 {
            let d = rng.uniform_duration(lo_d, hi_d);
            prop_assert!(d >= lo_d && d < hi_d);
        }
    }

    /// Time arithmetic: (t + d) - t == d for all representable pairs.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - time, dur);
    }
}
