//! # ree-sift — the REE SIFT environment (the paper's contribution)
//!
//! A software-implemented fault tolerance environment built from ARMOR
//! processes (§3): a **Fault Tolerance Manager** interfacing with the
//! Spacecraft Control Computer and recovering subordinate ARMORs, a
//! **Heartbeat ARMOR** watching the FTM, per-node **daemons** acting as
//! communication gateways and local failure detectors, and per-rank
//! **Execution ARMORs** overseeing MPI application processes through
//! `waitpid`, process-table polling, and progress indicators.
//!
//! The crate also provides the [`Scc`] driver (Table 1's one-time
//! installation + job submission), the application-side [`SiftClient`]
//! (progress indicators, attach/exit notifications — with the blocking
//! semantics behind §5.2's correlated failures), and the [`Blueprint`]
//! factory that assembles every ARMOR kind from its elements.
//!
//! The five FTM elements of Table 8 (`mgr_armor_info`, `exec_armor_info`,
//! `app_param`, `mgr_app_detect`, `node_mgmt`) are faithful down to the
//! unchecked default-daemon-ID-zero translation bug the paper documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blueprint;
mod client;
mod common;
pub mod config;
mod daemon;
mod exec;
mod ftm;
mod heartbeat;
mod report;
mod scc;
#[doc(hidden)]
pub mod util;

pub use blueprint::{AppFactory, AppLaunch, Blueprint};
pub use client::{ClientNote, SiftClient};
pub use common::{Configurator, ProbeResponder};
pub use config::{ids, names, tags, SiftConfig};
pub use daemon::{DaemonGateway, DaemonInstaller, LocalProber, IMAGE_RELOAD_THRESHOLD};
pub use exec::{AppMonitor, ProgressWatch};
pub use ftm::{
    AppParam, DaemonHb, ExecArmorInfo, FtmHbResponder, MgrAppDetect, MgrArmorInfo, NodeMgmt,
    SccIface,
};
pub use heartbeat::HbWatch;
pub use report::{ArmorInstalled, JobTimes, SccReport};
pub use scc::{JobSpec, Scc};
