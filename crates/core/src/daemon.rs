//! The daemon ARMOR (§3.1): one per node, gateway for ARMOR-to-ARMOR
//! communication, installer of other ARMORs, and detector of local ARMOR
//! crash (via `waitpid`) and hang (via "Are-you-alive?" probes) failures.

use crate::blueprint::Blueprint;
use crate::config::{ids, tags};
use crate::util::{rec_str, rec_u64, table_get, table_remove, table_set};
use ree_armor::{
    ArmorEvent, ArmorId, ControlOp, Element, ElementCtx, ElementOutcome, Fields, Value,
};
use ree_os::{NodeId, Pid, Signal, SpawnSpec, TextSource, TraceDetail, TraceEvent};
use ree_sim::SimDuration;
use std::sync::Arc;

/// Number of fork-image recoveries of the same ARMOR before the daemon
/// reloads a pristine image from disk (paper §3.4 footnote: "if the ARMOR
/// repeatedly fails after being recovered in this manner, then the error
/// may reside in the daemon's text segment, requiring that the ARMOR's
/// image be reloaded from disk").
pub const IMAGE_RELOAD_THRESHOLD: u64 = 3;

/// Gateway duties: heartbeat replies to the FTM, route updates, and
/// registration with the FTM.
#[derive(Clone)]
pub struct DaemonGateway {
    state: Fields,
}

impl DaemonGateway {
    /// Creates the gateway element for a daemon on `node`.
    pub fn new(node: NodeId) -> Self {
        let mut state = Fields::new();
        state.set("node", Value::U64(node.0 as u64));
        state.set("hb_acks_sent", Value::U64(0));
        DaemonGateway { state }
    }
}

impl Element for DaemonGateway {
    fn name(&self) -> &'static str {
        "gateway"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[tags::DAEMON_HB_PING, "register-with-ftm", tags::ROUTE_UPDATE, "sift-configure"]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            tags::DAEMON_HB_PING => {
                self.state.bump("hb_acks_sent");
                let node = self.state.u64("node").unwrap_or(0);
                ctx.send_unreliable(
                    ids::FTM,
                    vec![ArmorEvent::new(tags::DAEMON_HB_ACK)
                        .with("node", Value::U64(node))
                        .with("daemon", Value::U64(ctx.armor_id().0 as u64))
                        .with("seq", Value::U64(ev.u64("seq").unwrap_or(0)))],
                );
            }
            "register-with-ftm" => {
                let node = self.state.u64("node").unwrap_or(0);
                ctx.trace_event(
                    TraceEvent::DaemonRegistered,
                    TraceDetail::DaemonRegistering { node },
                );
                ctx.send(
                    ids::FTM,
                    vec![ArmorEvent::new(tags::DAEMON_REGISTER)
                        .with("daemon", Value::U64(ctx.armor_id().0 as u64))
                        .with("node", Value::U64(node))],
                );
            }
            tags::ROUTE_UPDATE => {
                if let (Some(armor), Some(pid)) = (ev.u64("armor"), ev.u64("pid")) {
                    ctx.install_route(ArmorId(armor as u32), Pid(pid));
                }
            }
            "sift-configure" => {
                for (name, value) in ev.fields.iter() {
                    self.state.set(name.clone(), value.clone());
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        match self.state.u64("node") {
            Some(n) if n < 64 => Ok(()),
            Some(n) => Err(format!("gateway node {n} out of range")),
            None => Err("gateway node missing".into()),
        }
    }
}

/// Installs, reinstalls, and uninstalls ARMOR processes on this node, and
/// detects their failures through `waitpid`.
#[derive(Clone)]
pub struct DaemonInstaller {
    state: Fields,
    blueprint: Arc<Blueprint>,
}

impl DaemonInstaller {
    /// Creates the installer element.
    pub fn new(node: NodeId, blueprint: Arc<Blueprint>) -> Self {
        let mut state = Fields::new();
        state.set("node", Value::U64(node.0 as u64));
        state.set("local", Value::Map(Default::default()));
        state.set("installs", Value::U64(0));
        DaemonInstaller { state, blueprint }
    }

    fn node(&self) -> NodeId {
        NodeId(self.state.u64("node").unwrap_or(0) as u16)
    }

    fn scc_pid(&self) -> Option<Pid> {
        self.state.u64("scc_pid").map(Pid)
    }

    fn peer_daemons(&self) -> Vec<ArmorId> {
        self.state
            .get("peers")
            .and_then(Value::as_list)
            .map(|l| l.iter().filter_map(|v| v.as_u64()).map(|v| ArmorId(v as u32)).collect())
            .unwrap_or_default()
    }

    /// Spawns one ARMOR process and performs the bookkeeping shared by
    /// install and reinstall: local table entry, route install, route
    /// broadcast to peer daemons, SCC notification.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::fn_params_excessive_bools)]
    fn spawn_armor(
        &mut self,
        ctx: &mut ElementCtx<'_, '_>,
        armor: ArmorId,
        kind: &str,
        slot: u64,
        rank: u64,
        pristine: bool,
        initial: bool,
        extra_config: Vec<(&str, Value)>,
    ) -> Pid {
        let node = self.node();
        let my_pid = ctx.os.pid();
        let behavior = self.blueprint.make_armor(kind, armor, my_pid, slot as u32, rank as u32);
        let name = self.blueprint.armor_instance_name(kind, slot as u32, rank as u32);
        let text = if pristine {
            // Reloading the executable from disk: slower, and the
            // transfer contends with application traffic.
            ctx.os.net_load(SimDuration::from_millis(700), 1.5);
            TextSource::Pristine
        } else {
            // fork()-style copy of the daemon's own image (§3.4) — this
            // propagates daemon text corruption into the recovered ARMOR.
            TextSource::CopyFrom(my_pid)
        };
        let latency = if pristine {
            Some(SimDuration::from_millis(400))
        } else if initial {
            // First-time installation does one-time configuration work
            // (part of the perceived-vs-actual gap of Table 3/Figure 5).
            Some(SimDuration::from_millis(450))
        } else {
            None
        };
        let mut spec = SpawnSpec::new(name, node, behavior).with_parent(my_pid).with_text(text);
        if let Some(l) = latency {
            spec = spec.with_latency(l);
        }
        let pid = ctx.os.spawn(spec);
        table_set(
            &mut self.state,
            "local",
            &armor.0.to_string(),
            crate::util::record(vec![
                ("pid", Value::U64(pid.0)),
                ("kind", Value::Str(kind.to_owned())),
                ("slot", Value::U64(slot)),
                ("rank", Value::U64(rank)),
            ]),
        );
        self.state.bump("installs");
        ctx.install_route(armor, pid);
        // Post-configuration of the new ARMOR.
        let mut cfg = ArmorEvent::new("sift-configure")
            .with("slot", Value::U64(slot))
            .with("rank", Value::U64(rank))
            .with("node", Value::U64(node.0 as u64));
        for (k, v) in extra_config {
            cfg = cfg.with(k, v);
        }
        ctx.os.send(pid, "armor-control", 96, ControlOp::Raise(cfg));
        // Route propagation to every peer daemon (and the SCC).
        for peer in self.peer_daemons() {
            if peer != ctx.armor_id() {
                ctx.send_unreliable(
                    peer,
                    vec![ArmorEvent::new(tags::ROUTE_UPDATE)
                        .with("armor", Value::U64(armor.0 as u64))
                        .with("pid", Value::U64(pid.0))],
                );
            }
        }
        if let Some(scc) = self.scc_pid() {
            ctx.os.send(
                scc,
                "armor-installed",
                64,
                crate::report::ArmorInstalled { armor, pid, kind: kind.to_owned() },
            );
        }
        // Tell the prober to start watching.
        ctx.raise(ArmorEvent::new("local-armor-added").with("armor", Value::U64(armor.0 as u64)));
        let event = if kind == "exec" {
            TraceEvent::ExecArmorInstalled
        } else {
            TraceEvent::ArmorInstalled
        };
        ctx.trace_event(
            event,
            TraceDetail::ArmorInstall { kind: kind.into(), armor: armor.0, pid, node },
        );
        pid
    }
}

impl Element for DaemonInstaller {
    fn name(&self) -> &'static str {
        "installer"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            tags::INSTALL_ARMOR,
            tags::REINSTALL_ARMOR,
            tags::UNINSTALL_ARMOR,
            "os-child-exit",
            "armor-hung",
            "sift-configure",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "sift-configure" => {
                for (name, value) in ev.fields.iter() {
                    self.state.set(name.clone(), value.clone());
                }
            }
            tags::INSTALL_ARMOR => {
                let Some(kind) = ev.str("kind") else {
                    return ElementOutcome::AbortThread("install without kind".into());
                };
                let kind = kind.to_owned();
                let armor = match kind.as_str() {
                    "ftm" => ids::FTM,
                    "heartbeat" => ids::HEARTBEAT,
                    _ => match ev.u64("armor") {
                        Some(a) => ArmorId(a as u32),
                        None => {
                            return ElementOutcome::AbortThread("exec install without id".into())
                        }
                    },
                };
                let slot = ev.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                // A resubmission may re-install over a live ARMOR.
                if let Some(rec) = table_get(&self.state, "local", &armor.0.to_string()) {
                    if let Some(old) = rec_u64(rec, "pid") {
                        if ctx.os.process_alive(Pid(old)) {
                            ctx.os.kill(Pid(old), Signal::Kill);
                        }
                    }
                }
                let mut extra = Vec::new();
                if let Some(fd) = ev.u64("ftm_daemon") {
                    extra.push(("ftm_daemon", Value::U64(fd)));
                }
                if let Some(scc) = self.state.u64("scc_pid") {
                    extra.push(("scc_pid", Value::U64(scc)));
                }
                let pid = self.spawn_armor(ctx, armor, &kind, slot, rank, false, true, extra);
                // Confirm to whoever asked (the FTM for exec/heartbeat
                // ARMORs; the SCC learns through armor-installed).
                if ev.u64("requester").is_some() {
                    ctx.send(
                        ids::FTM,
                        vec![ArmorEvent::new(tags::INSTALL_ACK)
                            .with("armor", Value::U64(armor.0 as u64))
                            .with("pid", Value::U64(pid.0))
                            .with("node", Value::U64(self.state.u64("node").unwrap_or(0)))
                            .with("slot", Value::U64(slot))
                            .with("rank", Value::U64(rank))
                            .with("kind", Value::Str(kind))],
                    );
                }
            }
            tags::REINSTALL_ARMOR => {
                let Some(armor) = ev.u64("armor").map(|a| ArmorId(a as u32)) else {
                    return ElementOutcome::AbortThread("reinstall without armor id".into());
                };
                let key = armor.0.to_string();
                // Kill the old incarnation if it is somehow still alive.
                if let Some(rec) = table_get(&self.state, "local", &key) {
                    if let Some(old_pid) = rec_u64(rec, "pid") {
                        if ctx.os.process_alive(Pid(old_pid)) {
                            ctx.os.kill(Pid(old_pid), Signal::Kill);
                        }
                    }
                }
                let (kind, slot, rank) = match table_get(&self.state, "local", &key) {
                    Some(rec) => (
                        rec_str(rec, "kind").unwrap_or("exec").to_owned(),
                        rec_u64(rec, "slot").unwrap_or(0),
                        rec_u64(rec, "rank").unwrap_or(0),
                    ),
                    None => (
                        ev.str("kind").unwrap_or("exec").to_owned(),
                        ev.u64("slot").unwrap_or(0),
                        ev.u64("rank").unwrap_or(0),
                    ),
                };
                let restarts_key = format!("restarts_{}", armor.0);
                let restarts = self.state.bump(&restarts_key).unwrap_or(1);
                let pristine = restarts >= IMAGE_RELOAD_THRESHOLD;
                if pristine {
                    ctx.trace(TraceDetail::ArmorImageReload { armor: armor.0, restarts });
                }
                let mut extra = Vec::new();
                if let Some(fd) = ev.u64("ftm_daemon") {
                    extra.push(("ftm_daemon", Value::U64(fd)));
                }
                if let Some(scc) = self.state.u64("scc_pid") {
                    extra.push(("scc_pid", Value::U64(scc)));
                }
                // Recovery traffic competes with the application (§5.2).
                ctx.os.net_load(SimDuration::from_millis(650), 0.8);
                let pid = self.spawn_armor(ctx, armor, &kind, slot, rank, pristine, false, extra);
                if let Some(requester) = ev.u64("requester").map(|r| ArmorId(r as u32)) {
                    ctx.send(
                        requester,
                        vec![ArmorEvent::new(tags::REINSTALL_ACK)
                            .with("armor", Value::U64(armor.0 as u64))
                            .with("pid", Value::U64(pid.0))
                            .with("node", Value::U64(self.state.u64("node").unwrap_or(0)))],
                    );
                }
            }
            tags::UNINSTALL_ARMOR => {
                let Some(armor) = ev.u64("armor") else { return ElementOutcome::Ok };
                // Remove before killing so the child-exit is not treated
                // as a failure.
                if let Some(rec) = table_remove(&mut self.state, "local", &armor.to_string()) {
                    if let Some(pid) = rec_u64(&rec, "pid") {
                        if ctx.os.process_alive(Pid(pid)) {
                            ctx.os.kill(Pid(pid), Signal::Kill);
                        }
                    }
                    ctx.raise(
                        ArmorEvent::new("local-armor-removed").with("armor", Value::U64(armor)),
                    );
                    ctx.trace_event(
                        TraceEvent::ArmorUninstalled,
                        TraceDetail::ArmorUninstall { armor },
                    );
                }
            }
            "armor-hung" => {
                // The prober found a local ARMOR unresponsive: kill it so
                // the crash path (waitpid) takes over (§3.3).
                let Some(armor) = ev.u64("armor") else { return ElementOutcome::Ok };
                if let Some(rec) = table_get(&self.state, "local", &armor.to_string()) {
                    if let Some(pid) = rec_u64(rec, "pid") {
                        ctx.os.trace_recovery_event(
                            TraceEvent::HangDetected,
                            TraceDetail::DetectHang { armor },
                        );
                        ctx.os.kill(Pid(pid), Signal::Kill);
                    }
                }
            }
            "os-child-exit" => {
                let Some(child) = ev.u64("child") else { return ElementOutcome::Ok };
                // Which local ARMOR was this?
                let mut failed: Option<u64> = None;
                if let Some(Value::Map(local)) = self.state.get("local") {
                    for (key, rec) in local {
                        if rec_u64(rec, "pid") == Some(child) {
                            failed = key.parse::<u64>().ok();
                            break;
                        }
                    }
                }
                let Some(armor) = failed else { return ElementOutcome::Ok };
                ctx.raise(ArmorEvent::new("local-armor-removed").with("armor", Value::U64(armor)));
                if ArmorId(armor as u32) == ids::FTM {
                    // FTM recovery is the Heartbeat ARMOR's job (§3.1);
                    // the daemon only observes.
                    ctx.trace("local FTM died; awaiting Heartbeat ARMOR recovery");
                } else {
                    ctx.os.trace_recovery_event(
                        TraceEvent::CrashDetected,
                        TraceDetail::DetectCrash { armor },
                    );
                    ctx.send(
                        ids::FTM,
                        vec![ArmorEvent::new(tags::ARMOR_FAILED)
                            .with("armor", Value::U64(armor))
                            .with("node", Value::U64(self.state.u64("node").unwrap_or(0)))],
                    );
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        ree_armor::assertions::map_integrity(&self.state, "local", |rec| {
            rec_u64(rec, "pid").map(|p| p > 0 && p < 1_000_000).unwrap_or(false)
        })
    }
}

fn table_keys_local(fields: &Fields, table: &str) -> Vec<String> {
    crate::util::table_keys(fields, table)
}

/// Sends "Are-you-alive?" probes to local ARMORs every probe period and
/// raises `armor-hung` when one stops answering (§3.3).
#[derive(Clone)]
pub struct LocalProber {
    state: Fields,
    period: SimDuration,
}

impl LocalProber {
    /// Creates the prober with the configured probe period.
    pub fn new(period: SimDuration) -> Self {
        let mut state = Fields::new();
        state.set("watch", Value::Map(Default::default()));
        state.set("probes_sent", Value::U64(0));
        LocalProber { state, period }
    }
}

impl Element for LocalProber {
    fn name(&self) -> &'static str {
        "prober"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            tags::ARMOR_START,
            "armor-restored",
            "probe-cycle",
            tags::ALIVE_ACK,
            "local-armor-added",
            "local-armor-removed",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            tags::ARMOR_START => {
                ctx.set_timer_event(self.period, ArmorEvent::new("probe-cycle"));
            }
            "armor-restored" => {
                // Probes the predecessor sent are not pending for us.
                for key in table_keys_local(&self.state, "watch") {
                    table_set(&mut self.state, "watch", &key, Value::Bool(false));
                }
            }
            "probe-cycle" => {
                let watched: Vec<(String, bool)> = self
                    .state
                    .get("watch")
                    .and_then(Value::as_map)
                    .map(|m| {
                        m.iter().map(|(k, v)| (k.clone(), v.as_bool().unwrap_or(false))).collect()
                    })
                    .unwrap_or_default();
                for (key, awaiting) in watched {
                    let armor: u64 = key.parse().unwrap_or(0);
                    if awaiting {
                        // No reply since the previous round: hung.
                        ctx.raise(ArmorEvent::new("armor-hung").with("armor", Value::U64(armor)));
                        table_set(&mut self.state, "watch", &key, Value::Bool(false));
                    } else {
                        self.state.bump("probes_sent");
                        ctx.send_unreliable(
                            ArmorId(armor as u32),
                            vec![ArmorEvent::new(tags::ARE_YOU_ALIVE)
                                .with("daemon", Value::U64(ctx.armor_id().0 as u64))
                                .with(
                                    "seq",
                                    Value::U64(self.state.u64("probes_sent").unwrap_or(0)),
                                )],
                        );
                        table_set(&mut self.state, "watch", &key, Value::Bool(true));
                    }
                }
                ctx.set_timer_event(self.period, ArmorEvent::new("probe-cycle"));
            }
            tags::ALIVE_ACK => {
                if let Some(armor) = ev.u64("armor") {
                    table_set(&mut self.state, "watch", &armor.to_string(), Value::Bool(false));
                }
            }
            "local-armor-added" => {
                if let Some(armor) = ev.u64("armor") {
                    table_set(&mut self.state, "watch", &armor.to_string(), Value::Bool(false));
                }
            }
            "local-armor-removed" => {
                if let Some(armor) = ev.u64("armor") {
                    table_remove(&mut self.state, "watch", &armor.to_string());
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }
}
