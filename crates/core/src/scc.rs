//! The Spacecraft Control Computer driver.
//!
//! The SCC is the trusted, rad-hard computer outside the SIFT
//! environment's fault model (§2, Figure 1 — "the system does not include
//! the rad-hard SCC"). It performs the one-time installation of Table 1
//! step 1, submits applications, receives status reports, and persists
//! job timing records for the experiment harness. It is never an
//! injection target.

use crate::blueprint::Blueprint;
use crate::config::{ids, tags};
use crate::report::{ArmorInstalled, JobTimes, SccReport};
use ree_armor::{ArmorEvent, ControlOp, Value};
use ree_os::{Message, NodeId, Pid, ProcCtx, Process, SpawnSpec, TraceDetail};
use ree_sim::SimDuration;
use std::sync::Arc;

/// One job the SCC will submit.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Application name (must be registered in the blueprint).
    pub app: String,
    /// Number of MPI ranks.
    pub ranks: u32,
    /// Node per rank.
    pub nodes: Vec<u16>,
    /// Virtual time at which the SCC submits the job.
    pub submit_at: SimDuration,
}

const TIMER_INSTALL_FTM: u64 = 1;
const TIMER_REGISTER: u64 = 2;
const TIMER_SUBMIT_BASE: u64 = 100;
const TIMER_VERIFY_BASE: u64 = 200;
const MAX_SUBMIT_ATTEMPTS: u32 = 5;

/// The SCC driver process.
#[derive(Clone)]
pub struct Scc {
    blueprint: Arc<Blueprint>,
    jobs: Vec<JobSpec>,
    cluster_nodes: u16,
    daemon_pids: Vec<Pid>,
    ftm_pid: Option<Pid>,
    job_times: Vec<JobTimes>,
    submit_attempts: Vec<u32>,
    registered: bool,
}

impl Scc {
    /// Creates the driver for a cluster of `cluster_nodes` nodes running
    /// the given jobs.
    pub fn new(blueprint: Arc<Blueprint>, cluster_nodes: u16, jobs: Vec<JobSpec>) -> Self {
        let job_times = jobs.iter().map(|_| JobTimes::default()).collect();
        let submit_attempts = jobs.iter().map(|_| 0).collect();
        Scc {
            blueprint,
            jobs,
            cluster_nodes,
            daemon_pids: Vec::new(),
            ftm_pid: None,
            job_times,
            submit_attempts,
            registered: false,
        }
    }

    fn persist(&self, slot: usize, ctx: &mut ProcCtx<'_>) {
        let record = self.job_times[slot].encode();
        ctx.remote_fs().write(&JobTimes::path(slot as u64), record);
        if self.job_times.iter().all(|t| t.completed.is_some()) {
            ctx.remote_fs().write("scc/alldone", b"1".to_vec());
        }
    }
}

impl Process for Scc {
    fn kind(&self) -> &'static str {
        "scc"
    }

    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.trace("SCC initializing the SIFT environment");
        // Table 1 step 1a: install daemon processes on each node.
        for node in 0..self.cluster_nodes {
            let behavior = self.blueprint.make_daemon(NodeId(node));
            let pid = ctx.spawn(SpawnSpec::new(
                crate::config::names::daemon(node),
                NodeId(node),
                behavior,
            ));
            self.daemon_pids.push(pid);
        }
        // Seed every daemon's routing table with all daemons, tell them
        // who their peers and the SCC are.
        let me = ctx.pid();
        let peers: Vec<Value> =
            (0..self.cluster_nodes).map(|n| Value::U64(ids::daemon(n).0 as u64)).collect();
        for (node, pid) in self.daemon_pids.clone().into_iter().enumerate() {
            for (other_node, other_pid) in self.daemon_pids.clone().into_iter().enumerate() {
                let _ = other_node;
                let other_id = ids::daemon(
                    self.daemon_pids.iter().position(|p| *p == other_pid).unwrap_or(0) as u16,
                );
                ctx.send(pid, "armor-control", 48, ControlOp::AddRoute(other_id, other_pid));
            }
            let cfg = ArmorEvent::new("sift-configure")
                .with("peers", Value::List(peers.clone()))
                .with("scc_pid", Value::U64(me.0))
                .with("node", Value::U64(node as u64));
            ctx.send(pid, "armor-control", 96, ControlOp::Raise(cfg));
        }
        // Step 1b after the daemons are up.
        ctx.set_timer(SimDuration::from_millis(800), TIMER_INSTALL_FTM);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        match tag {
            TIMER_INSTALL_FTM => {
                // Table 1 step 1b: install the FTM through the daemon on
                // node 0.
                if let Some(daemon0) = self.daemon_pids.first().copied() {
                    ctx.trace("SCC instructs daemon0 to install the FTM");
                    ctx.send(
                        daemon0,
                        "armor-control",
                        96,
                        ControlOp::Raise(
                            ArmorEvent::new(tags::INSTALL_ARMOR)
                                .with("kind", Value::Str("ftm".into())),
                        ),
                    );
                }
            }
            TIMER_REGISTER => {
                // Table 1 step 1c: register all daemons with the FTM.
                ctx.trace("SCC registers daemons with the FTM");
                for pid in self.daemon_pids.clone() {
                    ctx.send(
                        pid,
                        "armor-control",
                        64,
                        ControlOp::Raise(ArmorEvent::new("register-with-ftm")),
                    );
                }
                // Schedule job submissions.
                for (slot, job) in self.jobs.clone().into_iter().enumerate() {
                    ctx.set_timer(job.submit_at, TIMER_SUBMIT_BASE + slot as u64);
                }
            }
            verify if (TIMER_VERIFY_BASE..TIMER_VERIFY_BASE + 64).contains(&verify) => {
                // Submission watchdog: if the FTM never reported the
                // application started (the submission may have reached a
                // dead FTM), resubmit.
                let slot = (verify - TIMER_VERIFY_BASE) as usize;
                let started = self.job_times.get(slot).map(|t| t.started.is_some()).unwrap_or(true);
                if !started
                    && self.submit_attempts.get(slot).copied().unwrap_or(0) < MAX_SUBMIT_ATTEMPTS
                {
                    ctx.trace(TraceDetail::SccResubmit { slot: slot as u64 });
                    ctx.set_timer(SimDuration::from_micros(1), TIMER_SUBMIT_BASE + slot as u64);
                }
            }
            submit if (TIMER_SUBMIT_BASE..TIMER_SUBMIT_BASE + 64).contains(&submit) => {
                let slot = (submit - TIMER_SUBMIT_BASE) as usize;
                let Some(job) = self.jobs.get(slot).cloned() else { return };
                let Some(ftm) = self.ftm_pid else {
                    // FTM not up yet; retry shortly.
                    ctx.set_timer(SimDuration::from_secs(1), submit);
                    return;
                };
                ctx.trace(TraceDetail::SccSubmit {
                    app: job.app.as_str().into(),
                    slot: slot as u64,
                });
                if self.job_times[slot].submitted.is_none() {
                    self.job_times[slot].submitted = Some(ctx.now());
                }
                self.submit_attempts[slot] += 1;
                ctx.set_timer(SimDuration::from_secs(45), TIMER_VERIFY_BASE + slot as u64);
                let me = ctx.pid();
                let nodes: Vec<Value> = job.nodes.iter().map(|n| Value::U64(*n as u64)).collect();
                ctx.send(
                    ftm,
                    "armor-control",
                    128,
                    ControlOp::Raise(
                        ArmorEvent::new(tags::SUBMIT_APP)
                            .with("app", Value::Str(job.app.clone()))
                            .with("ranks", Value::U64(job.ranks as u64))
                            .with("nodes", Value::List(nodes))
                            .with("scc_pid", Value::U64(me.0))
                            .with("slot", Value::U64(slot as u64)),
                    ),
                );
                self.persist(slot, ctx);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        match msg.label {
            "armor-installed" => {
                if let Some(installed) = msg.peek::<ArmorInstalled>() {
                    if installed.armor == ids::FTM {
                        let first = self.ftm_pid.is_none();
                        self.ftm_pid = Some(installed.pid);
                        if first && !self.registered {
                            self.registered = true;
                            ctx.set_timer(SimDuration::from_millis(600), TIMER_REGISTER);
                        }
                    }
                }
            }
            "scc-report" => {
                if let Some(report) = msg.peek::<SccReport>().cloned() {
                    let slot = match report {
                        SccReport::Started { slot, .. }
                        | SccReport::Restarted { slot, .. }
                        | SccReport::Ended { slot, .. }
                        | SccReport::Completed { slot }
                        | SccReport::ConnectTimeout { slot } => slot as usize,
                    };
                    let Some(times) = self.job_times.get_mut(slot) else { return };
                    match report {
                        SccReport::Started { .. } => {
                            if times.started.is_none() {
                                times.started = Some(ctx.now());
                            }
                        }
                        SccReport::Restarted { .. } => times.restarts += 1,
                        SccReport::Ended { end_us, .. } => {
                            // The FTM reports the instant the last rank
                            // exited; fall back to report-arrival time.
                            times.ended = Some(if end_us > 0 {
                                ree_sim::SimTime::from_micros(end_us)
                            } else {
                                ctx.now()
                            });
                        }
                        SccReport::Completed { .. } => {
                            if times.completed.is_none() {
                                times.completed = Some(ctx.now());
                            }
                        }
                        SccReport::ConnectTimeout { .. } => times.connect_timeouts += 1,
                    }
                    ctx.trace(report.trace_detail());
                    self.persist(slot, ctx);
                }
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for Scc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scc")
            .field("jobs", &self.jobs.len())
            .field("ftm_pid", &self.ftm_pid)
            .finish()
    }
}
