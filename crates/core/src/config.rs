//! SIFT environment configuration and identity conventions.

use ree_armor::ArmorId;
use ree_sim::SimDuration;

/// Fixed ARMOR identity assignments used by the SIFT environment.
pub mod ids {
    use ree_armor::ArmorId;

    /// The Fault Tolerance Manager.
    pub const FTM: ArmorId = ArmorId(1);
    /// The Heartbeat ARMOR.
    pub const HEARTBEAT: ArmorId = ArmorId(2);

    /// The daemon ARMOR for a node.
    pub fn daemon(node: u16) -> ArmorId {
        ArmorId(10 + node as u32)
    }

    /// The Execution ARMOR overseeing MPI rank `rank` of an application
    /// slot (one slot per concurrently managed application).
    pub fn exec(slot: u32, rank: u32) -> ArmorId {
        ArmorId(100 + slot * 32 + rank)
    }
}

/// Tunable parameters of the SIFT environment.
///
/// Defaults follow the paper: 10 s heartbeats at every level ("every 10 s
/// in our experiments", §3.3), 20 s progress-indicator checks (§3.3: the
/// FFT filters run ~20 s, so checking faster would raise false alarms).
#[derive(Clone, Debug)]
pub struct SiftConfig {
    /// FTM → daemon heartbeat period (node/daemon failure detection).
    pub ftm_daemon_hb_period: SimDuration,
    /// Heartbeat-ARMOR → FTM polling period.
    pub hb_ftm_period: SimDuration,
    /// Daemon → local ARMOR "Are-you-alive?" probe period.
    pub daemon_probe_period: SimDuration,
    /// Execution-ARMOR progress-indicator check period.
    pub pi_check_period: SimDuration,
    /// How long an application blocks on an unavailable SIFT process
    /// before giving up (the SAN model's `app_timeout`).
    pub app_block_timeout: SimDuration,
    /// Rank-0 timeout waiting for peer ranks during MPI startup.
    pub mpi_init_timeout: SimDuration,
    /// Whether the Figure 10 race-condition fix is applied (register the
    /// Execution ARMOR in the FTM's table *before* instructing the
    /// daemon to install it).
    pub race_fix_enabled: bool,
    /// Whether the Execution ARMOR uses the interrupt-driven
    /// progress-indicator design (§5.1 discussion) instead of polling.
    pub interrupt_driven_pi: bool,
    /// Run assertions before event delivery (§11 preemptive-check
    /// extension; the evaluated system checks after processing).
    pub precheck_assertions: bool,
    /// Whether element assertions are enabled at all (ablation for
    /// Table 9: without assertions, every escape is a potential system
    /// failure).
    pub assertions_enabled: bool,
    /// Guard timeout on the application connecting to the SIFT
    /// environment after submission (§9 "lessons": a connect timeout
    /// detects critical-phase errors). `None` = disabled (as evaluated).
    pub connect_timeout: Option<SimDuration>,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            ftm_daemon_hb_period: SimDuration::from_secs(10),
            hb_ftm_period: SimDuration::from_secs(10),
            daemon_probe_period: SimDuration::from_secs(10),
            pi_check_period: SimDuration::from_secs(20),
            app_block_timeout: SimDuration::from_secs(30),
            mpi_init_timeout: SimDuration::from_secs(15),
            race_fix_enabled: true,
            interrupt_driven_pi: false,
            precheck_assertions: false,
            assertions_enabled: true,
            connect_timeout: None,
        }
    }
}

impl SiftConfig {
    /// The configuration evaluated in the paper's experiments.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Variant with a different heartbeat period everywhere (Table 5
    /// sweep).
    pub fn with_heartbeat_period(mut self, period: SimDuration) -> Self {
        self.ftm_daemon_hb_period = period;
        self.hb_ftm_period = period;
        self.daemon_probe_period = period;
        self
    }
}

/// Event tags of the SIFT protocol. Kept in one place so elements and
/// tests agree on the vocabulary.
pub mod tags {
    /// Runtime start event (raised once an ARMOR is ready).
    pub const ARMOR_START: &str = "armor-start";
    /// Daemon registers itself with the FTM.
    pub const DAEMON_REGISTER: &str = "daemon-register";
    /// SCC or FTM instructs a daemon to install an ARMOR.
    pub const INSTALL_ARMOR: &str = "install-armor";
    /// Daemon confirms an installation.
    pub const INSTALL_ACK: &str = "install-ack";
    /// Daemon notifies the FTM that a local ARMOR failed.
    pub const ARMOR_FAILED: &str = "armor-failed";
    /// FTM (or Heartbeat ARMOR) instructs a daemon to reinstall an ARMOR.
    pub const REINSTALL_ARMOR: &str = "reinstall-armor";
    /// Daemon confirms a reinstallation (carries the new pid).
    pub const REINSTALL_ACK: &str = "reinstall-ack";
    /// SCC submits an application for execution.
    pub const SUBMIT_APP: &str = "submit-app";
    /// FTM instructs an Execution ARMOR to launch its MPI process.
    pub const LAUNCH_APP: &str = "launch-app";
    /// Execution ARMOR reports the application process started.
    pub const APP_STARTED: &str = "app-started";
    /// Rank-0 reports a peer rank's pid (routed app → Exec ARMOR → FTM →
    /// peer's Exec ARMOR, Table 1 step 6).
    pub const RANK_PID: &str = "rank-pid";
    /// FTM forwards a rank pid to the owning Execution ARMOR.
    pub const YOUR_RANK_PID: &str = "your-rank-pid";
    /// Application attaches to its local Execution ARMOR (SIFT interface
    /// channel setup).
    pub const APP_ATTACH: &str = "app-attach";
    /// Progress-indicator creation (declares the check frequency).
    pub const PI_CREATE: &str = "pi-create";
    /// Progress-indicator update.
    pub const PI_UPDATE: &str = "progress-indicator";
    /// Application announces clean exit (so the ARMOR does not treat the
    /// exit as a crash, §3.3).
    pub const APP_EXITING: &str = "app-exiting";
    /// Execution ARMOR reports application termination to the FTM.
    pub const APP_TERMINATED: &str = "app-terminated";
    /// Execution ARMOR reports an application failure to the FTM.
    pub const APP_FAILED: &str = "app-failed";
    /// FTM instructs Execution ARMORs to kill their local rank (app-wide
    /// restart).
    pub const STOP_APP: &str = "stop-app";
    /// FTM heartbeat ping to a daemon.
    pub const DAEMON_HB_PING: &str = "daemon-hb-ping";
    /// Daemon heartbeat reply.
    pub const DAEMON_HB_ACK: &str = "daemon-hb-ack";
    /// Heartbeat-ARMOR ping to the FTM.
    pub const FTM_HB_PING: &str = "ftm-hb-ping";
    /// FTM reply to the Heartbeat ARMOR.
    pub const FTM_HB_ACK: &str = "ftm-hb-ack";
    /// Daemon probe of a local ARMOR.
    pub const ARE_YOU_ALIVE: &str = "are-you-alive";
    /// Local ARMOR probe reply.
    pub const ALIVE_ACK: &str = "alive-ack";
    /// Route propagation (armor id → pid) among daemons.
    pub const ROUTE_UPDATE: &str = "route-update";
    /// Node declared failed (raised inside the FTM).
    pub const NODE_FAILED: &str = "node-failed";
    /// Uninstall an Execution ARMOR after its application completed.
    pub const UNINSTALL_ARMOR: &str = "uninstall-armor";
    /// Internal FTM event: all ranks of an app finished cleanly.
    pub const APP_COMPLETE: &str = "app-complete";
    /// Periodic internal cycle events.
    pub const CYCLE: &str = "cycle";
}

/// Well-known instance-name prefixes (trace queries and tests).
pub mod names {
    /// The FTM process name.
    pub const FTM: &str = "ftm";
    /// The Heartbeat ARMOR process name.
    pub const HEARTBEAT: &str = "heartbeat";

    /// Daemon instance name for a node.
    pub fn daemon(node: u16) -> String {
        format!("daemon{node}")
    }

    /// Execution ARMOR instance name.
    pub fn exec(slot: u32, rank: u32) -> String {
        format!("exec{slot}_{rank}")
    }
}

/// Returns true for identities in the Execution-ARMOR range.
pub fn is_exec_armor(id: ArmorId) -> bool {
    id.0 >= 100
}

/// Returns true for identities in the daemon range.
pub fn is_daemon(id: ArmorId) -> bool {
    (10..100).contains(&id.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ranges_do_not_collide() {
        assert!(is_daemon(ids::daemon(0)));
        assert!(is_daemon(ids::daemon(63)));
        assert!(is_exec_armor(ids::exec(0, 0)));
        assert!(is_exec_armor(ids::exec(3, 31)));
        assert!(!is_exec_armor(ids::FTM));
        assert!(!is_daemon(ids::FTM));
        assert!(!is_daemon(ids::HEARTBEAT));
        assert_ne!(ids::exec(0, 1), ids::exec(1, 0));
    }

    #[test]
    fn default_config_matches_paper() {
        let c = SiftConfig::paper();
        assert_eq!(c.ftm_daemon_hb_period, SimDuration::from_secs(10));
        assert_eq!(c.pi_check_period, SimDuration::from_secs(20));
        assert!(c.race_fix_enabled);
        assert!(!c.interrupt_driven_pi);
        assert!(c.assertions_enabled);
    }

    #[test]
    fn heartbeat_sweep_helper() {
        let c = SiftConfig::paper().with_heartbeat_period(SimDuration::from_secs(5));
        assert_eq!(c.hb_ftm_period, SimDuration::from_secs(5));
        assert_eq!(c.daemon_probe_period, SimDuration::from_secs(5));
    }
}
