//! Small helpers for manipulating element state ([`Fields`]) in the SIFT
//! protocol elements.

use ree_armor::{Fields, Value};
use std::collections::BTreeMap;

/// Reads `fields[table][key]` as a nested map entry.
pub fn table_get<'a>(fields: &'a Fields, table: &str, key: &str) -> Option<&'a Value> {
    fields.get(table)?.as_map()?.get(key)
}

/// Inserts `fields[table][key] = value`, creating the table if needed.
pub fn table_set(fields: &mut Fields, table: &str, key: &str, value: Value) {
    match fields.get_mut(table) {
        Some(Value::Map(map)) => {
            map.insert(key.to_owned(), value);
        }
        _ => {
            let mut map = BTreeMap::new();
            map.insert(key.to_owned(), value);
            fields.set(table, Value::Map(map));
        }
    }
}

/// Removes `fields[table][key]`.
pub fn table_remove(fields: &mut Fields, table: &str, key: &str) -> Option<Value> {
    match fields.get_mut(table) {
        Some(Value::Map(map)) => map.remove(key),
        _ => None,
    }
}

/// Iterates a table's keys (owned, so callers can mutate afterwards).
pub fn table_keys(fields: &Fields, table: &str) -> Vec<String> {
    fields
        .get(table)
        .and_then(Value::as_map)
        .map(|m| m.keys().cloned().collect())
        .unwrap_or_default()
}

/// Number of entries in a table.
pub fn table_len(fields: &Fields, table: &str) -> usize {
    fields.get(table).and_then(Value::as_map).map(BTreeMap::len).unwrap_or(0)
}

/// Builds a record (nested map value) from `(name, value)` pairs.
///
/// Every record automatically carries structural pointers (`fwd_ptr`,
/// `bwd_ptr`) modelling the forward/backward links of the list nodes the
/// paper describes (§7.2: "pointers that connect the various items of
/// the data structures, such as forward and backward pointers in
/// doubly-linked lists"). Untargeted heap flips therefore hit pointers
/// at a realistic rate, and "crash failures were most often caused by
/// segmentation faults raised when a corrupted pointer was dereferenced".
pub fn record(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    map.insert("fwd_ptr".to_owned(), ree_armor::valid_ptr(11));
    map.insert("bwd_ptr".to_owned(), ree_armor::valid_ptr(13));
    for (k, v) in pairs {
        map.insert(k.to_owned(), v);
    }
    Value::Map(map)
}

/// Reads a `u64` field of a record value.
pub fn rec_u64(rec: &Value, field: &str) -> Option<u64> {
    rec.as_map()?.get(field)?.as_u64()
}

/// Reads a string field of a record value.
pub fn rec_str<'a>(rec: &'a Value, field: &str) -> Option<&'a str> {
    rec.as_map()?.get(field)?.as_str()
}

/// Reads a bool field of a record value.
pub fn rec_bool(rec: &Value, field: &str) -> Option<bool> {
    rec.as_map()?.get(field)?.as_bool()
}

/// Updates one field of a record stored at `fields[table][key]`.
pub fn rec_set(fields: &mut Fields, table: &str, key: &str, field: &str, value: Value) -> bool {
    if let Some(Value::Map(map)) = fields.get_mut(table) {
        if let Some(Value::Map(rec)) = map.get_mut(key) {
            rec.insert(field.to_owned(), value);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut f = Fields::new();
        table_set(&mut f, "t", "a", Value::U64(1));
        table_set(&mut f, "t", "b", Value::U64(2));
        assert_eq!(table_get(&f, "t", "a").unwrap().as_u64(), Some(1));
        assert_eq!(table_len(&f, "t"), 2);
        assert_eq!(table_keys(&f, "t"), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(table_remove(&mut f, "t", "a"), Some(Value::U64(1)));
        assert_eq!(table_len(&f, "t"), 1);
        assert!(table_get(&f, "missing", "x").is_none());
    }

    #[test]
    fn record_accessors() {
        let r = record(vec![
            ("pid", Value::U64(9)),
            ("kind", Value::Str("exec".into())),
            ("ok", Value::Bool(true)),
        ]);
        assert_eq!(rec_u64(&r, "pid"), Some(9));
        assert_eq!(rec_str(&r, "kind"), Some("exec"));
        assert_eq!(rec_bool(&r, "ok"), Some(true));
        assert_eq!(rec_u64(&r, "nope"), None);
    }

    #[test]
    fn rec_set_updates_nested_field() {
        let mut f = Fields::new();
        table_set(&mut f, "t", "k", record(vec![("status", Value::Str("up".into()))]));
        assert!(rec_set(&mut f, "t", "k", "status", Value::Str("down".into())));
        assert_eq!(rec_str(table_get(&f, "t", "k").unwrap(), "status"), Some("down"));
        assert!(!rec_set(&mut f, "t", "zzz", "status", Value::U64(0)));
    }
}
