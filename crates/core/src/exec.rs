//! The Execution ARMOR (§3.1): oversees one MPI application process —
//! launches it (rank 0), detects crashes via `waitpid` / process-table
//! polling, watches progress indicators for hangs, and notifies the FTM.

use crate::blueprint::{AppLaunch, Blueprint};
use crate::config::{ids, tags};
use ree_armor::{valid_ptr, ArmorEvent, Element, ElementCtx, ElementOutcome, Fields, Value};
use ree_os::{Pid, Signal, SpawnSpec, TraceDetail, TraceEvent};
use ree_sim::SimDuration;
use std::sync::Arc;

/// How often an Execution ARMOR polls the OS process table for MPI ranks
/// it did not spawn (§3.3).
const PROC_POLL_PERIOD: SimDuration = SimDuration::from_secs(2);

/// Launches and monitors the local MPI application process.
#[derive(Clone)]
pub struct AppMonitor {
    state: Fields,
    blueprint: Arc<Blueprint>,
}

impl AppMonitor {
    /// Creates the monitor element.
    pub fn new(blueprint: Arc<Blueprint>) -> Self {
        let mut state = Fields::new();
        state.set("slot", Value::U64(0));
        state.set("rank", Value::U64(0));
        state.set("app", Value::Str(String::new()));
        state.set("app_pid", Value::U64(0));
        state.set("app_status", Value::Str("idle".into()));
        state.set("attempt", Value::U64(0));
        state.set("clean_exit", Value::Bool(false));
        // Structural pointer to the (simulated) status block shared with
        // the SIFT interface; a corrupted pointer here crashes the ARMOR
        // on its next event — the dominant §7 crash mechanism.
        state.set("status_block", valid_ptr(3));
        AppMonitor { state, blueprint }
    }

    fn app_pid(&self) -> Option<Pid> {
        match self.state.u64("app_pid") {
            Some(0) | None => None,
            Some(p) => Some(Pid(p)),
        }
    }

    fn status(&self) -> String {
        self.state.get("app_status").and_then(Value::as_str).unwrap_or("idle").to_owned()
    }

    fn set_status(&mut self, s: &str) {
        self.state.set("app_status", Value::Str(s.to_owned()));
    }

    fn report_failure(&mut self, ctx: &mut ElementCtx<'_, '_>, reason: &'static str) {
        if self.status() == "failed" {
            return;
        }
        self.set_status("failed");
        let slot = self.state.u64("slot").unwrap_or(0);
        let rank = self.state.u64("rank").unwrap_or(0);
        ctx.trace(TraceDetail::AppFailureReport { slot, rank, reason });
        ctx.send(
            ids::FTM,
            vec![ArmorEvent::new(tags::APP_FAILED)
                .with("slot", Value::U64(slot))
                .with("rank", Value::U64(rank))
                .with("reason", Value::Str(reason.to_owned()))],
        );
    }
}

impl Element for AppMonitor {
    fn name(&self) -> &'static str {
        "app_monitor"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "sift-configure",
            tags::ARMOR_START,
            tags::LAUNCH_APP,
            tags::YOUR_RANK_PID,
            tags::APP_ATTACH,
            tags::RANK_PID,
            tags::APP_EXITING,
            tags::STOP_APP,
            "os-child-exit",
            "proc-poll",
            "pi-hang-detected",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "sift-configure" => {
                for key in ["slot", "rank", "scc_pid", "node"] {
                    if let Some(v) = ev.u64(key) {
                        self.state.set(key, Value::U64(v));
                    }
                }
            }
            tags::ARMOR_START => {
                ctx.set_timer_event(PROC_POLL_PERIOD, ArmorEvent::new("proc-poll"));
                // After a recovery, re-advertise the channel endpoint to
                // the application so blocked SIFT-interface calls resume.
                if let Some(pid) = self.app_pid() {
                    if ctx.os.process_alive(pid) {
                        let me = ctx.os.pid();
                        ctx.os.send(pid, "sift-rebind", 48, me);
                    }
                }
            }
            tags::LAUNCH_APP => {
                // Only the rank-0 Execution ARMOR receives this (Table 1
                // step 4); the MPI process becomes its child.
                let Some(app) = ev.str("app") else {
                    return ElementOutcome::AbortThread("launch without app name".into());
                };
                let app = app.to_owned();
                let slot = self.state.u64("slot").unwrap_or(0);
                let rank = self.state.u64("rank").unwrap_or(0);
                let attempt = ev.u64("attempt").unwrap_or(0);
                let nodes: Vec<u16> = ev
                    .fields
                    .get("nodes")
                    .and_then(Value::as_list)
                    .map(|l| l.iter().filter_map(|v| v.as_u64()).map(|v| v as u16).collect())
                    .unwrap_or_default();
                let exec_pids: Vec<u64> = ev
                    .fields
                    .get("exec_pids")
                    .and_then(Value::as_list)
                    .map(|l| l.iter().filter_map(|v| v.as_u64()).collect())
                    .unwrap_or_default();
                let Some(factory) = self.blueprint.app_factory(&app) else {
                    return ElementOutcome::AbortThread(format!("unknown application {app}"));
                };
                let launch = AppLaunch {
                    app: app.clone(),
                    slot: slot as u32,
                    rank: rank as u32,
                    size: ev.u64("ranks").unwrap_or(1) as u32,
                    nodes: nodes.clone(),
                    exec_pids: exec_pids.iter().map(|p| Pid(*p)).collect(),
                    attempt: attempt as u32,
                    sift_enabled: true,
                    rank0_pid: None,
                    block_timeout: self.blueprint.config.app_block_timeout,
                    factory: factory.clone(),
                };
                // A stale incarnation may still be running if the
                // stop-app instruction was lost in a recovery.
                if let Some(old) = self.app_pid() {
                    if ctx.os.process_alive(old) {
                        ctx.os.kill(old, Signal::Kill);
                    }
                }
                let me = ctx.os.pid();
                let node = ctx.os.node();
                let pid = ctx.os.spawn(
                    SpawnSpec::new(format!("{app}-r{rank}-a{attempt}"), node, factory(&launch))
                        .with_parent(me),
                );
                if attempt > 0 {
                    ctx.os.trace_recovery_event(
                        TraceEvent::RecoveryCompleted,
                        TraceDetail::AppRecovered { slot, attempt },
                    );
                }
                self.state.set("app", Value::Str(app));
                self.state.set("app_pid", Value::U64(pid.0));
                self.state.set("attempt", Value::U64(attempt));
                self.state.set("clean_exit", Value::Bool(false));
                self.set_status("running");
                ctx.raise(ArmorEvent::new("pi-reset"));
                ctx.send(
                    ids::FTM,
                    vec![ArmorEvent::new(tags::APP_STARTED)
                        .with("slot", Value::U64(slot))
                        .with("attempt", Value::U64(attempt))],
                );
            }
            tags::YOUR_RANK_PID => {
                // Table 1 step 7: establish the channel with our MPI rank.
                if let Some(pid) = ev.u64("pid") {
                    self.state.set("app_pid", Value::U64(pid));
                    self.state.set("clean_exit", Value::Bool(false));
                    self.set_status("running");
                    ctx.raise(ArmorEvent::new("pi-reset"));
                }
            }
            tags::APP_ATTACH => {
                let Some(pid) = ev.u64("pid") else { return ElementOutcome::Ok };
                let rank = self.state.u64("rank").unwrap_or(0);
                // Rank 0 is our child, attach immediately. Ranks 1..n may
                // only attach once the FTM forwarded their pid (Figure 8:
                // the slave blocks when the FTM is unavailable).
                let known = self.state.u64("app_pid").unwrap_or(0);
                if rank == 0 || known == pid {
                    if known == 0 {
                        self.state.set("app_pid", Value::U64(pid));
                    }
                    self.set_status("running");
                    ctx.os.send(Pid(pid), "sift-ack", 32, tags::APP_ATTACH);
                }
                // Otherwise: no ack; the client keeps retrying.
            }
            tags::RANK_PID => {
                // Rank 0's client reports peer pids; forward to the FTM
                // (Table 1 step 6).
                let slot = self.state.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                let pid = ev.u64("pid").unwrap_or(0);
                ctx.send(
                    ids::FTM,
                    vec![ArmorEvent::new(tags::RANK_PID)
                        .with("slot", Value::U64(slot))
                        .with("rank", Value::U64(rank))
                        .with("pid", Value::U64(pid))],
                );
            }
            tags::APP_EXITING => {
                // Clean termination notice (§3.3): do not treat the
                // upcoming exit as a crash.
                self.state.set("clean_exit", Value::Bool(true));
                self.set_status("exiting");
                if let Some(pid) = ev.u64("pid") {
                    ctx.os.send(Pid(pid), "sift-ack", 32, tags::APP_EXITING);
                }
                let slot = self.state.u64("slot").unwrap_or(0);
                let rank = self.state.u64("rank").unwrap_or(0);
                let at_us = ctx.now().as_micros();
                ctx.os.trace_event(
                    TraceEvent::AppTerminated,
                    TraceDetail::AppTerminatedNotice { slot, rank },
                );
                ctx.send(
                    ids::FTM,
                    vec![ArmorEvent::new(tags::APP_TERMINATED)
                        .with("slot", Value::U64(slot))
                        .with("rank", Value::U64(rank))
                        .with("at_us", Value::U64(at_us))
                        .with("ok", Value::Bool(true))],
                );
            }
            tags::STOP_APP => {
                if let Some(pid) = self.app_pid() {
                    if ctx.os.process_alive(pid) {
                        ctx.os.kill(pid, Signal::Kill);
                    }
                }
                self.state.set("app_pid", Value::U64(0));
                self.state.set("clean_exit", Value::Bool(false));
                self.set_status("idle");
                ctx.raise(ArmorEvent::new("pi-reset"));
            }
            "os-child-exit" => {
                // waitpid on the rank-0 child (§3.3 "crash failures in the
                // MPI process with rank 0 can be detected ... through
                // operating system calls").
                let child = ev.u64("child").unwrap_or(0);
                if Some(Pid(child)) == self.app_pid() && self.status() == "running" {
                    let clean =
                        self.state.get("clean_exit").and_then(Value::as_bool).unwrap_or(false);
                    if !clean {
                        ctx.os.trace_recovery_event(
                            TraceEvent::AppCrashDetected,
                            TraceDetail::DetectAppCrash {
                                rank: self.state.u64("rank").unwrap_or(0),
                            },
                        );
                        self.report_failure(ctx, "crash");
                    }
                }
            }
            "proc-poll" => {
                // Ranks 1..n are not children: poll the process table
                // (§3.3).
                if self.status() == "running" {
                    if let Some(pid) = self.app_pid() {
                        let clean =
                            self.state.get("clean_exit").and_then(Value::as_bool).unwrap_or(false);
                        if !ctx.os.process_alive(pid) && !clean {
                            ctx.os.trace_recovery_event(
                                TraceEvent::AppCrashDetected,
                                TraceDetail::DetectAppCrash {
                                    rank: self.state.u64("rank").unwrap_or(0),
                                },
                            );
                            self.report_failure(ctx, "crash");
                        }
                    }
                }
                ctx.set_timer_event(PROC_POLL_PERIOD, ArmorEvent::new("proc-poll"));
            }
            "pi-hang-detected" if self.status() == "running" => {
                ctx.os.trace_recovery_event(
                    TraceEvent::AppHangDetected,
                    TraceDetail::DetectAppHang { rank: self.state.u64("rank").unwrap_or(0) },
                );
                if let Some(pid) = self.app_pid() {
                    if ctx.os.process_alive(pid) {
                        ctx.os.kill(pid, Signal::Kill);
                    }
                }
                self.report_failure(ctx, "hang");
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        ree_armor::assertions::range_check(&self.state, "rank", 0, 63)?;
        ree_armor::assertions::range_check(&self.state, "slot", 0, 15)?;
        let status = self.state.get("app_status").and_then(Value::as_str).unwrap_or("");
        match status {
            "idle" | "running" | "exiting" | "failed" => Ok(()),
            other => Err(format!("app_status '{other}' invalid")),
        }
    }
}

/// Watches progress indicators for application hangs (§3.3, Figure 6).
///
/// In the evaluated (polling) design, a checking thread wakes every
/// check period and compares the counter against the previous reading —
/// detection latency is up to **twice** the period. The interrupt-driven
/// variant (§5.1 discussion) re-arms a deadline on every update,
/// detecting within one period.
#[derive(Clone)]
pub struct ProgressWatch {
    state: Fields,
    check_period: SimDuration,
    interrupt_driven: bool,
}

impl ProgressWatch {
    /// Creates the watcher.
    pub fn new(check_period: SimDuration, interrupt_driven: bool) -> Self {
        let mut state = Fields::new();
        state.set("enabled", Value::Bool(false));
        state.set("counter", Value::U64(0));
        state.set("last_seen", Value::U64(0));
        state.set("fresh", Value::Bool(true));
        state.set("generation", Value::U64(0));
        state.set("period_us", Value::U64(0));
        ProgressWatch { state, check_period, interrupt_driven }
    }

    fn effective_period(&self) -> SimDuration {
        let declared = SimDuration::from_micros(self.state.u64("period_us").unwrap_or(0));
        // "The Execution ARMOR should not check the counter faster than
        // the rate at which the application sends updates" (§5.1).
        if declared > self.check_period {
            declared
        } else {
            self.check_period
        }
    }
}

impl Element for ProgressWatch {
    fn name(&self) -> &'static str {
        "progress_watch"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[tags::PI_CREATE, tags::PI_UPDATE, "pi-check", "pi-deadline", "pi-reset"]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            tags::PI_CREATE => {
                // "Before any progress indicators are sent, the
                // application must tell the Execution ARMOR at what
                // frequency to check for progress indicator updates."
                self.state.set("period_us", Value::U64(ev.u64("period_us").unwrap_or(0)));
                self.state.set("enabled", Value::Bool(true));
                self.state.set("fresh", Value::Bool(true));
                self.state.set("counter", Value::U64(0));
                self.state.set("last_seen", Value::U64(0));
                let gen = self.state.bump("generation").unwrap_or(0);
                if let Some(pid) = ev.u64("pid") {
                    ctx.os.send(Pid(pid), "sift-ack", 32, tags::PI_CREATE);
                }
                if !self.interrupt_driven {
                    ctx.set_timer_event(
                        self.effective_period(),
                        ArmorEvent::new("pi-check").with("gen", Value::U64(gen)),
                    );
                }
            }
            tags::PI_UPDATE => {
                if let Some(c) = ev.u64("counter") {
                    self.state.set("counter", Value::U64(c));
                    self.state.set("fresh", Value::Bool(false));
                }
                if let Some(pid) = ev.u64("pid") {
                    ctx.os.send(Pid(pid), "sift-ack", 32, tags::PI_UPDATE);
                }
                if self.interrupt_driven
                    && self.state.get("enabled").and_then(Value::as_bool).unwrap_or(false)
                {
                    // Re-arm the watchdog: detect within one period of the
                    // last update.
                    let gen = self.state.bump("generation").unwrap_or(0);
                    ctx.set_timer_event(
                        self.effective_period(),
                        ArmorEvent::new("pi-deadline").with("gen", Value::U64(gen)),
                    );
                }
            }
            "pi-check" => {
                if !self.state.get("enabled").and_then(Value::as_bool).unwrap_or(false) {
                    return ElementOutcome::Ok;
                }
                if ev.u64("gen") != self.state.u64("generation") {
                    return ElementOutcome::Ok;
                }
                let counter = self.state.u64("counter").unwrap_or(0);
                let last = self.state.u64("last_seen").unwrap_or(0);
                let fresh = self.state.get("fresh").and_then(Value::as_bool).unwrap_or(true);
                if !fresh && counter == last {
                    self.state.set("enabled", Value::Bool(false));
                    ctx.raise(ArmorEvent::new("pi-hang-detected"));
                } else {
                    self.state.set("last_seen", Value::U64(counter));
                    let gen = self.state.u64("generation").unwrap_or(0);
                    ctx.set_timer_event(
                        self.effective_period(),
                        ArmorEvent::new("pi-check").with("gen", Value::U64(gen)),
                    );
                }
            }
            "pi-deadline" => {
                if !self.interrupt_driven {
                    return ElementOutcome::Ok;
                }
                if ev.u64("gen") == self.state.u64("generation")
                    && self.state.get("enabled").and_then(Value::as_bool).unwrap_or(false)
                {
                    self.state.set("enabled", Value::Bool(false));
                    ctx.raise(ArmorEvent::new("pi-hang-detected"));
                }
            }
            "pi-reset" => {
                self.state.set("enabled", Value::Bool(false));
                self.state.set("fresh", Value::Bool(true));
                self.state.set("counter", Value::U64(0));
                self.state.set("last_seen", Value::U64(0));
                self.state.bump("generation");
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        ree_armor::assertions::range_check(&self.state, "generation", 0, 1_000_000)
    }
}
