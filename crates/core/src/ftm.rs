//! The Fault Tolerance Manager (§3.1): interfaces with the SCC, tracks
//! nodes and subordinate ARMORs, installs Execution ARMORs, and recovers
//! from ARMOR, node, and application failures.
//!
//! The element split follows Table 8 exactly: `mgr_armor_info`,
//! `exec_armor_info`, `app_param`, `mgr_app_detect`, and `node_mgmt` are
//! separate elements with their own private state, checkpoint regions,
//! and assertions — they are the targets of the §7.2 heap-injection
//! campaign.

use crate::config::{ids, tags};
use crate::report::SccReport;
use crate::util::{rec_str, rec_u64, record, table_get, table_keys, table_remove, table_set};
use ree_armor::{
    valid_ptr, ArmorEvent, ArmorId, Element, ElementCtx, ElementOutcome, Fields, Value,
};
use ree_os::TraceDetail;
use ree_os::{Pid, TraceEvent};
use ree_sim::SimDuration;

/// Answers the Heartbeat ARMOR's liveness polls.
#[derive(Clone)]
pub struct FtmHbResponder {
    state: Fields,
}

impl FtmHbResponder {
    /// Creates the responder.
    pub fn new() -> Self {
        let mut state = Fields::new();
        state.set("acks_sent", Value::U64(0));
        FtmHbResponder { state }
    }
}

impl Default for FtmHbResponder {
    fn default() -> Self {
        Self::new()
    }
}

impl Element for FtmHbResponder {
    fn name(&self) -> &'static str {
        "hb_responder"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[tags::FTM_HB_PING]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        self.state.bump("acks_sent");
        ctx.send_unreliable(
            ids::HEARTBEAT,
            vec![ArmorEvent::new(tags::FTM_HB_ACK)
                .with("seq", Value::U64(ev.u64("seq").unwrap_or(0)))],
        );
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }
}

/// The SCC interface element: accepts submissions, reports status back
/// (FTM responsibilities 1 and 8 in §3.1).
#[derive(Clone)]
pub struct SccIface {
    state: Fields,
    checks: bool,
    connect_timeout: Option<SimDuration>,
}

impl SccIface {
    /// Creates the interface element.
    pub fn new(checks: bool, connect_timeout: Option<SimDuration>) -> Self {
        let mut state = Fields::new();
        state.set("jobs", Value::Map(Default::default()));
        state.set("scc_pid", Value::U64(0));
        SccIface { state, checks, connect_timeout }
    }

    fn scc(&self) -> Option<Pid> {
        match self.state.u64("scc_pid") {
            Some(0) | None => None,
            Some(p) => Some(Pid(p)),
        }
    }
}

impl Element for SccIface {
    fn name(&self) -> &'static str {
        "scc_iface"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "armor-restored",
            tags::SUBMIT_APP,
            "app-started-info",
            tags::APP_COMPLETE,
            "report-complete",
            "connect-check",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "armor-restored" => {
                // After a recovery, in-flight timers died with the old
                // process; re-derive pending takedown reports from the
                // restored state.
                for key in table_keys(&self.state, "jobs") {
                    let completing = table_get(&self.state, "jobs", &key)
                        .and_then(|r| rec_str(r, "phase").map(|p| p == "completing"))
                        .unwrap_or(false);
                    if completing {
                        let slot: u64 = key.parse().unwrap_or(0);
                        ctx.set_timer_event(
                            SimDuration::from_millis(900),
                            ArmorEvent::new("report-complete").with("slot", Value::U64(slot)),
                        );
                    }
                }
            }
            tags::SUBMIT_APP => {
                let Some(app) = ev.str("app") else {
                    return ElementOutcome::AbortThread("submission without app".into());
                };
                let slot = ev.u64("slot").unwrap_or(0);
                if let Some(scc) = ev.u64("scc_pid") {
                    self.state.set("scc_pid", Value::U64(scc));
                }
                table_set(
                    &mut self.state,
                    "jobs",
                    &slot.to_string(),
                    record(vec![
                        ("app", Value::Str(app.to_owned())),
                        ("started", Value::Bool(false)),
                        ("phase", Value::Str("accepted".into())),
                    ]),
                );
                ctx.trace_event(
                    TraceEvent::SubmissionAccepted,
                    TraceDetail::FtmAcceptedSubmission { app: app.into(), slot },
                );
                // Fan the submission out to the bookkeeping elements.
                let mut accepted = ArmorEvent::new("app-submit-accepted");
                accepted.fields = ev.fields.clone();
                ctx.raise(accepted);
                if let Some(timeout) = self.connect_timeout {
                    ctx.set_timer_event(
                        timeout,
                        ArmorEvent::new("connect-check").with("slot", Value::U64(slot)),
                    );
                }
            }
            "app-started-info" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let attempt = ev.u64("attempt").unwrap_or(0);
                let key = slot.to_string();
                let already = table_get(&self.state, "jobs", &key)
                    .and_then(|r| crate::util::rec_bool(r, "started"))
                    .unwrap_or(false);
                crate::util::rec_set(&mut self.state, "jobs", &key, "started", Value::Bool(true));
                if !already {
                    if let Some(scc) = self.scc() {
                        ctx.os.send(scc, "scc-report", 64, SccReport::Started { slot, attempt });
                    }
                } else if attempt > 0 {
                    if let Some(scc) = self.scc() {
                        ctx.os.send(scc, "scc-report", 64, SccReport::Restarted { slot, attempt });
                    }
                }
            }
            tags::APP_COMPLETE => {
                let slot = ev.u64("slot").unwrap_or(0);
                crate::util::rec_set(
                    &mut self.state,
                    "jobs",
                    &slot.to_string(),
                    "phase",
                    Value::Str("completing".into()),
                );
                if let Some(scc) = self.scc() {
                    let end_us = ev.u64("end_us").unwrap_or(0);
                    ctx.os.send(scc, "scc-report", 64, SccReport::Ended { slot, end_us });
                }
                // Table 1 step 13: uninstall the Execution ARMORs first,
                // then report to the SCC once takedown settles.
                ctx.set_timer_event(
                    SimDuration::from_millis(900),
                    ArmorEvent::new("report-complete").with("slot", Value::U64(slot)),
                );
            }
            "report-complete" => {
                let slot = ev.u64("slot").unwrap_or(0);
                table_remove(&mut self.state, "jobs", &slot.to_string());
                ctx.trace(TraceDetail::FtmSlotComplete { slot });
                if let Some(scc) = self.scc() {
                    ctx.os.send(scc, "scc-report", 64, SccReport::Completed { slot });
                }
            }
            "connect-check" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let started = table_get(&self.state, "jobs", &slot.to_string())
                    .and_then(|r| crate::util::rec_bool(r, "started"))
                    .unwrap_or(true);
                if !started {
                    // §9 lessons: the connect timeout catches errors in
                    // the critical setup phase quickly.
                    ctx.trace(TraceDetail::FtmConnectTimeout { slot });
                    if let Some(scc) = self.scc() {
                        ctx.os.send(scc, "scc-report", 64, SccReport::ConnectTimeout { slot });
                    }
                    ctx.raise(ArmorEvent::new("app-restart-needed").with("slot", Value::U64(slot)));
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        ree_armor::assertions::range_check(&self.state, "scc_pid", 0, 1_000_000)
    }
}

/// `mgr_armor_info` (Table 8): "stores information about subordinate
/// ARMORs such as location and element composition". Owns subordinate
/// recovery (FTM responsibilities 4–6).
#[derive(Clone)]
pub struct MgrArmorInfo {
    state: Fields,
    checks: bool,
    race_fix: bool,
}

impl MgrArmorInfo {
    /// Creates the element. `race_fix` controls whether Execution ARMORs
    /// are registered before the install instruction is sent (the
    /// Figure 10 fix).
    pub fn new(checks: bool, race_fix: bool) -> Self {
        let mut state = Fields::new();
        state.set("armors", Value::Map(Default::default()));
        state.set("link", valid_ptr(5));
        MgrArmorInfo { state, checks, race_fix }
    }

    #[allow(clippy::too_many_arguments)]
    fn register(
        &mut self,
        armor: u64,
        kind: &str,
        node: u64,
        pid: u64,
        slot: u64,
        rank: u64,
        status: &str,
    ) {
        table_set(
            &mut self.state,
            "armors",
            &armor.to_string(),
            record(vec![
                ("kind", Value::Str(kind.to_owned())),
                ("node", Value::U64(node)),
                ("pid", Value::U64(pid)),
                ("slot", Value::U64(slot)),
                ("rank", Value::U64(rank)),
                ("status", Value::Str(status.to_owned())),
            ]),
        );
    }
}

impl Element for MgrArmorInfo {
    fn name(&self) -> &'static str {
        "mgr_armor_info"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "app-submit-accepted",
            tags::INSTALL_ACK,
            tags::REINSTALL_ACK,
            tags::ARMOR_FAILED,
            tags::APP_COMPLETE,
            tags::NODE_FAILED,
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "app-submit-accepted" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let nodes: Vec<u64> = ev
                    .fields
                    .get("nodes")
                    .and_then(Value::as_list)
                    .map(|l| l.iter().filter_map(|v| v.as_u64()).collect())
                    .unwrap_or_default();
                for (rank, node) in nodes.iter().enumerate() {
                    let armor = ids::exec(slot as u32, rank as u32);
                    if self.race_fix {
                        // Figure 10 fix: add the Execution ARMOR to the
                        // table *before* instructing the daemon.
                        self.register(
                            armor.0 as u64,
                            "exec",
                            *node,
                            0,
                            slot,
                            rank as u64,
                            "installing",
                        );
                    }
                    ctx.raise(
                        ArmorEvent::new("need-install")
                            .with("armor", Value::U64(armor.0 as u64))
                            .with("kind", Value::Str("exec".into()))
                            .with("node", Value::U64(*node))
                            .with("slot", Value::U64(slot))
                            .with("rank", Value::U64(rank as u64)),
                    );
                }
            }
            tags::INSTALL_ACK => {
                let armor = ev.u64("armor").unwrap_or(0);
                let kind = ev.str("kind").unwrap_or("exec").to_owned();
                let node = ev.u64("node").unwrap_or(0);
                let pid = ev.u64("pid").unwrap_or(0);
                let slot = ev.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                self.register(armor, &kind, node, pid, slot, rank, "up");
                if kind == "exec" {
                    ctx.raise(
                        ArmorEvent::new("exec-installed")
                            .with("slot", Value::U64(slot))
                            .with("rank", Value::U64(rank))
                            .with("armor", Value::U64(armor))
                            .with("pid", Value::U64(pid)),
                    );
                }
            }
            tags::REINSTALL_ACK => {
                let armor = ev.u64("armor").unwrap_or(0);
                let key = armor.to_string();
                if let Some(rec) = table_get(&self.state, "armors", &key) {
                    let kind = rec_str(rec, "kind").unwrap_or("").to_owned();
                    let slot = rec_u64(rec, "slot").unwrap_or(0);
                    let rank = rec_u64(rec, "rank").unwrap_or(0);
                    let pid = ev.u64("pid").unwrap_or(0);
                    crate::util::rec_set(&mut self.state, "armors", &key, "pid", Value::U64(pid));
                    crate::util::rec_set(
                        &mut self.state,
                        "armors",
                        &key,
                        "status",
                        Value::Str("up".into()),
                    );
                    if kind == "exec" {
                        // Keep exec_armor_info's pid table fresh so a
                        // later relaunch hands the application live SIFT
                        // endpoints.
                        ctx.raise(
                            ArmorEvent::new("exec-installed")
                                .with("slot", Value::U64(slot))
                                .with("rank", Value::U64(rank))
                                .with("armor", Value::U64(armor))
                                .with("pid", Value::U64(pid)),
                        );
                    }
                }
            }
            tags::ARMOR_FAILED => {
                let armor = ev.u64("armor").unwrap_or(0);
                let key = armor.to_string();
                let Some(rec) = table_get(&self.state, "armors", &key) else {
                    // Figure 10: the failure notification raced ahead of
                    // the install ack — the handling thread aborts and the
                    // ARMOR is never recovered.
                    return ElementOutcome::AbortThread(format!(
                        "armor-failed for unknown armor{armor}"
                    ));
                };
                let kind = rec_str(rec, "kind").unwrap_or("exec").to_owned();
                let node = rec_u64(rec, "node").unwrap_or(0);
                let slot = rec_u64(rec, "slot").unwrap_or(0);
                let rank = rec_u64(rec, "rank").unwrap_or(0);
                crate::util::rec_set(
                    &mut self.state,
                    "armors",
                    &key,
                    "status",
                    Value::Str("recovering".into()),
                );
                ctx.raise(
                    ArmorEvent::new("need-reinstall")
                        .with("armor", Value::U64(armor))
                        .with("kind", Value::Str(kind))
                        .with("node", Value::U64(node))
                        .with("slot", Value::U64(slot))
                        .with("rank", Value::U64(rank)),
                );
            }
            tags::APP_COMPLETE => {
                let slot = ev.u64("slot").unwrap_or(0);
                // Uninstall the slot's Execution ARMORs (Table 1 step 13).
                for key in table_keys(&self.state, "armors") {
                    let Some(rec) = table_get(&self.state, "armors", &key) else { continue };
                    if rec_str(rec, "kind") == Some("exec") && rec_u64(rec, "slot") == Some(slot) {
                        let armor = key.parse::<u64>().unwrap_or(0);
                        let node = rec_u64(rec, "node").unwrap_or(0);
                        ctx.raise(
                            ArmorEvent::new("need-uninstall")
                                .with("armor", Value::U64(armor))
                                .with("node", Value::U64(node)),
                        );
                        table_remove(&mut self.state, "armors", &key);
                    }
                }
            }
            tags::NODE_FAILED => {
                let node = ev.u64("node").unwrap_or(0);
                let alive: Vec<u64> = ev
                    .fields
                    .get("alive_nodes")
                    .and_then(Value::as_list)
                    .map(|l| l.iter().filter_map(|v| v.as_u64()).collect())
                    .unwrap_or_default();
                // Migrate subordinate ARMORs off the dead node (§3.4).
                for key in table_keys(&self.state, "armors") {
                    let Some(rec) = table_get(&self.state, "armors", &key) else { continue };
                    if rec_u64(rec, "node") != Some(node) {
                        continue;
                    }
                    let armor = key.parse::<u64>().unwrap_or(0);
                    let kind = rec_str(rec, "kind").unwrap_or("exec").to_owned();
                    let slot = rec_u64(rec, "slot").unwrap_or(0);
                    let rank = rec_u64(rec, "rank").unwrap_or(0);
                    let Some(new_node) = alive.first().copied() else { continue };
                    crate::util::rec_set(
                        &mut self.state,
                        "armors",
                        &key,
                        "node",
                        Value::U64(new_node),
                    );
                    ctx.os.trace_recovery(TraceDetail::MigratingArmor {
                        armor,
                        kind: kind.as_str().into(),
                        node: new_node,
                    });
                    ctx.raise(
                        ArmorEvent::new("need-reinstall")
                            .with("armor", Value::U64(armor))
                            .with("kind", Value::Str(kind))
                            .with("node", Value::U64(new_node))
                            .with("slot", Value::U64(slot))
                            .with("rank", Value::U64(rank)),
                    );
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        ree_armor::assertions::map_integrity(&self.state, "armors", |rec| {
            rec_u64(rec, "node").map(|n| n < 64).unwrap_or(false)
                && rec_u64(rec, "pid").map(|p| p < 1_000_000).unwrap_or(false)
                && matches!(rec_str(rec, "kind"), Some("exec") | Some("heartbeat") | Some("ftm"))
                && matches!(
                    rec_str(rec, "status"),
                    Some("installing") | Some("up") | Some("recovering")
                )
        })
    }
}

/// `exec_armor_info` (Table 8): "stores information about each Execution
/// ARMOR such as status of subordinate application".
#[derive(Clone)]
pub struct ExecArmorInfo {
    state: Fields,
    checks: bool,
}

impl ExecArmorInfo {
    /// Creates the element.
    pub fn new(checks: bool) -> Self {
        let mut state = Fields::new();
        state.set("slots", Value::Map(Default::default()));
        state.set("expected", Value::Map(Default::default()));
        ExecArmorInfo { state, checks }
    }

    fn slot_table(&self, slot: u64) -> Vec<(u64, u64, u64)> {
        // (rank, armor, pid) triples, sorted by rank.
        let mut out = Vec::new();
        if let Some(Value::Map(slots)) = self.state.get("slots") {
            if let Some(Value::Map(ranks)) = slots.get(&slot.to_string()) {
                for (rank, rec) in ranks {
                    let rank: u64 = rank.parse().unwrap_or(0);
                    let armor = rec_u64(rec, "armor").unwrap_or(0);
                    let pid = rec_u64(rec, "pid").unwrap_or(0);
                    out.push((rank, armor, pid));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn set_rank(&mut self, slot: u64, rank: u64, armor: u64, pid: u64) {
        let slot_key = slot.to_string();
        // Ensure the nested map exists.
        if table_get(&self.state, "slots", &slot_key).is_none() {
            table_set(&mut self.state, "slots", &slot_key, Value::Map(Default::default()));
        }
        if let Some(Value::Map(slots)) = self.state.get_mut("slots") {
            if let Some(Value::Map(ranks)) = slots.get_mut(&slot_key) {
                ranks.insert(
                    rank.to_string(),
                    record(vec![("armor", Value::U64(armor)), ("pid", Value::U64(pid))]),
                );
            }
        }
    }

    fn maybe_slot_ready(&mut self, slot: u64, ctx: &mut ElementCtx<'_, '_>) {
        let expected = table_get(&self.state, "expected", &slot.to_string())
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let table = self.slot_table(slot);
        if expected > 0 && table.len() as u64 == expected && table.iter().all(|(_, _, p)| *p > 0) {
            let exec_pids: Vec<Value> = table.iter().map(|(_, _, p)| Value::U64(*p)).collect();
            let exec_armors: Vec<Value> = table.iter().map(|(_, a, _)| Value::U64(*a)).collect();
            ctx.raise(
                ArmorEvent::new("slot-ready")
                    .with("slot", Value::U64(slot))
                    .with("exec_pids", Value::List(exec_pids))
                    .with("exec_armors", Value::List(exec_armors)),
            );
        }
    }
}

impl Element for ExecArmorInfo {
    fn name(&self) -> &'static str {
        "exec_armor_info"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "app-submit-accepted",
            "exec-installed",
            tags::APP_STARTED,
            tags::RANK_PID,
            tags::APP_COMPLETE,
            "app-relaunching",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "app-submit-accepted" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let ranks = ev.u64("ranks").unwrap_or(1);
                table_set(&mut self.state, "expected", &slot.to_string(), Value::U64(ranks));
            }
            "exec-installed" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                let armor = ev.u64("armor").unwrap_or(0);
                let pid = ev.u64("pid").unwrap_or(0);
                self.set_rank(slot, rank, armor, pid);
                self.maybe_slot_ready(slot, ctx);
            }
            tags::APP_STARTED => {
                let slot = ev.u64("slot").unwrap_or(0);
                let attempt = ev.u64("attempt").unwrap_or(0);
                ctx.raise(
                    ArmorEvent::new("app-started-info")
                        .with("slot", Value::U64(slot))
                        .with("attempt", Value::U64(attempt)),
                );
            }
            tags::RANK_PID => {
                // Forward the pid to the owning Execution ARMOR (Table 1
                // step 6 → 7).
                let slot = ev.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                let pid = ev.u64("pid").unwrap_or(0);
                let table = self.slot_table(slot);
                if let Some((_, armor, _)) = table.iter().find(|(r, _, _)| *r == rank) {
                    ctx.send(
                        ArmorId(*armor as u32),
                        vec![ArmorEvent::new(tags::YOUR_RANK_PID).with("pid", Value::U64(pid))],
                    );
                }
            }
            tags::APP_COMPLETE => {
                let slot = ev.u64("slot").unwrap_or(0);
                table_remove(&mut self.state, "slots", &slot.to_string());
                table_remove(&mut self.state, "expected", &slot.to_string());
            }
            "app-relaunching" => {
                let slot = ev.u64("slot").unwrap_or(0);
                self.maybe_slot_ready(slot, ctx);
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        ree_armor::assertions::map_integrity(&self.state, "expected", |v| {
            v.as_u64().map(|n| (1..=16).contains(&n)).unwrap_or(false)
        })
    }
}

/// `app_param` (Table 8): "stores information about application such as
/// executable name, command-line arguments, and number of times
/// application restarted". Read-mostly after submission — which is why
/// the paper found it insensitive to error propagation.
#[derive(Clone)]
pub struct AppParam {
    state: Fields,
    checks: bool,
}

impl AppParam {
    /// Creates the element.
    pub fn new(checks: bool) -> Self {
        let mut state = Fields::new();
        state.set("apps", Value::Map(Default::default()));
        AppParam { state, checks }
    }
}

impl Element for AppParam {
    fn name(&self) -> &'static str {
        "app_param"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "armor-restored",
            "app-submit-accepted",
            "slot-ready",
            "app-restart-needed",
            "relaunch-timer",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "armor-restored" => {
                // Recovery: a relaunch that was pending when the old FTM
                // died must be re-armed from the restored state.
                for key in table_keys(&self.state, "apps") {
                    let pending = table_get(&self.state, "apps", &key)
                        .and_then(|r| crate::util::rec_bool(r, "pending_relaunch"))
                        .unwrap_or(false);
                    if pending {
                        let slot: u64 = key.parse().unwrap_or(0);
                        ctx.set_timer_event(
                            SimDuration::from_millis(600),
                            ArmorEvent::new("relaunch-timer").with("slot", Value::U64(slot)),
                        );
                    }
                }
            }
            "app-submit-accepted" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let app = ev.str("app").unwrap_or("unknown").to_owned();
                let ranks = ev.u64("ranks").unwrap_or(1);
                let nodes = ev.fields.get("nodes").cloned().unwrap_or(Value::List(vec![]));
                table_set(
                    &mut self.state,
                    "apps",
                    &slot.to_string(),
                    record(vec![
                        ("app", Value::Str(app.clone())),
                        ("exe", Value::Str(format!("/rfs/bin/{app}"))),
                        ("args", Value::Str(format!("--input /rfs/images/{app}.img"))),
                        ("ranks", Value::U64(ranks)),
                        ("nodes", nodes),
                        ("restart_count", Value::U64(0)),
                        ("pending_relaunch", Value::Bool(false)),
                        ("awaiting_launch", Value::Bool(true)),
                    ]),
                );
            }
            "slot-ready" => {
                // All Execution ARMORs are up: launch the MPI application
                // through the rank-0 ARMOR (Table 1 step 4). Guarded so a
                // mid-run Execution-ARMOR reinstall (which refreshes the
                // pid table and re-derives slot-ready) cannot double-launch.
                let slot = ev.u64("slot").unwrap_or(0);
                let key = slot.to_string();
                let Some(rec) = table_get(&self.state, "apps", &key) else {
                    return ElementOutcome::AbortThread(format!(
                        "slot-ready for unknown slot {slot}"
                    ));
                };
                if !crate::util::rec_bool(rec, "awaiting_launch").unwrap_or(true) {
                    return ElementOutcome::Ok;
                }
                let app = rec_str(rec, "app").unwrap_or("unknown").to_owned();
                let ranks = rec_u64(rec, "ranks").unwrap_or(1);
                let attempt = rec_u64(rec, "restart_count").unwrap_or(0);
                let nodes = rec
                    .as_map()
                    .and_then(|m| m.get("nodes"))
                    .cloned()
                    .unwrap_or(Value::List(vec![]));
                let exec_pids = ev.fields.get("exec_pids").cloned().unwrap_or(Value::List(vec![]));
                crate::util::rec_set(
                    &mut self.state,
                    "apps",
                    &key,
                    "pending_relaunch",
                    Value::Bool(false),
                );
                crate::util::rec_set(
                    &mut self.state,
                    "apps",
                    &key,
                    "awaiting_launch",
                    Value::Bool(false),
                );
                let target = ids::exec(slot as u32, 0);
                ctx.send(
                    target,
                    vec![ArmorEvent::new(tags::LAUNCH_APP)
                        .with("app", Value::Str(app))
                        .with("ranks", Value::U64(ranks))
                        .with("attempt", Value::U64(attempt))
                        .with("nodes", nodes)
                        .with("exec_pids", exec_pids)],
                );
            }
            "app-restart-needed" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let key = slot.to_string();
                let Some(rec) = table_get(&self.state, "apps", &key) else {
                    return ElementOutcome::Ok;
                };
                let ranks = rec_u64(rec, "ranks").unwrap_or(1);
                let restart = rec_u64(rec, "restart_count").unwrap_or(0) + 1;
                crate::util::rec_set(
                    &mut self.state,
                    "apps",
                    &key,
                    "restart_count",
                    Value::U64(restart),
                );
                crate::util::rec_set(
                    &mut self.state,
                    "apps",
                    &key,
                    "pending_relaunch",
                    Value::Bool(true),
                );
                ctx.trace(TraceDetail::FtmRestartApp { slot, restart });
                // Stop every rank, then relaunch after a short settle.
                for rank in 0..ranks {
                    ctx.send(
                        ids::exec(slot as u32, rank as u32),
                        vec![ArmorEvent::new(tags::STOP_APP).with("slot", Value::U64(slot))],
                    );
                }
                ctx.set_timer_event(
                    SimDuration::from_millis(400),
                    ArmorEvent::new("relaunch-timer").with("slot", Value::U64(slot)),
                );
            }
            "relaunch-timer" => {
                let slot = ev.u64("slot").unwrap_or(0);
                crate::util::rec_set(
                    &mut self.state,
                    "apps",
                    &slot.to_string(),
                    "awaiting_launch",
                    Value::Bool(true),
                );
                // Reset the completion bookkeeping, then re-derive
                // slot-ready from exec_armor_info.
                ctx.raise(ArmorEvent::new("app-relaunching").with("slot", Value::U64(slot)));
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        ree_armor::assertions::map_integrity(&self.state, "apps", |rec| {
            rec_u64(rec, "ranks").map(|r| (1..=16).contains(&r)).unwrap_or(false)
                && rec_u64(rec, "restart_count").map(|r| r < 50).unwrap_or(false)
        })
    }
}

/// `mgr_app_detect` (Table 8): "used to detect that all processes for MPI
/// application have terminated and to initiate recovery if necessary".
#[derive(Clone)]
pub struct MgrAppDetect {
    state: Fields,
    checks: bool,
}

impl MgrAppDetect {
    /// Creates the element.
    pub fn new(checks: bool) -> Self {
        let mut state = Fields::new();
        state.set("slots", Value::Map(Default::default()));
        MgrAppDetect { state, checks }
    }
}

impl Element for MgrAppDetect {
    fn name(&self) -> &'static str {
        "mgr_app_detect"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "app-submit-accepted",
            tags::APP_TERMINATED,
            tags::APP_FAILED,
            "app-relaunching",
            tags::NODE_FAILED,
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "app-submit-accepted" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let ranks = ev.u64("ranks").unwrap_or(1);
                table_set(
                    &mut self.state,
                    "slots",
                    &slot.to_string(),
                    record(vec![
                        ("expected", Value::U64(ranks)),
                        ("done_mask", Value::U64(0)),
                        ("last_end_us", Value::U64(0)),
                        ("restarting", Value::Bool(false)),
                    ]),
                );
            }
            tags::APP_TERMINATED => {
                let slot = ev.u64("slot").unwrap_or(0);
                let rank = ev.u64("rank").unwrap_or(0);
                let key = slot.to_string();
                let Some(rec) = table_get(&self.state, "slots", &key) else {
                    return ElementOutcome::Ok;
                };
                if crate::util::rec_bool(rec, "restarting").unwrap_or(false) {
                    return ElementOutcome::Ok;
                }
                let expected = rec_u64(rec, "expected").unwrap_or(1);
                let mask = rec_u64(rec, "done_mask").unwrap_or(0) | (1u64 << rank.min(63));
                let end =
                    rec_u64(rec, "last_end_us").unwrap_or(0).max(ev.u64("at_us").unwrap_or(0));
                crate::util::rec_set(&mut self.state, "slots", &key, "done_mask", Value::U64(mask));
                crate::util::rec_set(
                    &mut self.state,
                    "slots",
                    &key,
                    "last_end_us",
                    Value::U64(end),
                );
                if mask.count_ones() as u64 >= expected {
                    table_remove(&mut self.state, "slots", &key);
                    ctx.raise(
                        ArmorEvent::new(tags::APP_COMPLETE)
                            .with("slot", Value::U64(slot))
                            .with("end_us", Value::U64(end)),
                    );
                }
            }
            tags::APP_FAILED => {
                let slot = ev.u64("slot").unwrap_or(0);
                let key = slot.to_string();
                let Some(rec) = table_get(&self.state, "slots", &key) else {
                    return ElementOutcome::Ok;
                };
                if crate::util::rec_bool(rec, "restarting").unwrap_or(false) {
                    return ElementOutcome::Ok;
                }
                crate::util::rec_set(
                    &mut self.state,
                    "slots",
                    &key,
                    "restarting",
                    Value::Bool(true),
                );
                crate::util::rec_set(&mut self.state, "slots", &key, "done_mask", Value::U64(0));
                ctx.raise(ArmorEvent::new("app-restart-needed").with("slot", Value::U64(slot)));
            }
            "app-relaunching" => {
                let slot = ev.u64("slot").unwrap_or(0);
                let key = slot.to_string();
                crate::util::rec_set(
                    &mut self.state,
                    "slots",
                    &key,
                    "restarting",
                    Value::Bool(false),
                );
                crate::util::rec_set(&mut self.state, "slots", &key, "done_mask", Value::U64(0));
            }
            tags::NODE_FAILED => {
                // Any application with a rank on the failed node must be
                // restarted (its process and Execution ARMOR are gone).
                let node = ev.u64("node").unwrap_or(0);
                let _ = node;
                for key in table_keys(&self.state, "slots") {
                    let Some(rec) = table_get(&self.state, "slots", &key) else { continue };
                    if crate::util::rec_bool(rec, "restarting").unwrap_or(false) {
                        continue;
                    }
                    crate::util::rec_set(
                        &mut self.state,
                        "slots",
                        &key,
                        "restarting",
                        Value::Bool(true),
                    );
                    let slot: u64 = key.parse().unwrap_or(0);
                    ctx.raise(ArmorEvent::new("app-restart-needed").with("slot", Value::U64(slot)));
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        ree_armor::assertions::map_integrity(&self.state, "slots", |rec| {
            let expected = rec_u64(rec, "expected");
            let mask = rec_u64(rec, "done_mask");
            let restarting = rec_bool_or(rec, "restarting", false);
            match (expected, mask) {
                (Some(e), Some(m)) if (1..=16).contains(&e) => {
                    // Structure integrity: the done mask can only contain
                    // expected ranks, and a restarting slot has no
                    // terminations recorded yet.
                    m < (1u64 << e) && (!restarting || m == 0)
                }
                _ => false,
            }
        })
    }
}

/// `node_mgmt` (Table 8): "stores information about the nodes, including
/// the resident daemon and hostname". Translates hostnames to daemon IDs
/// for every install/reinstall/uninstall — returning the **default daemon
/// ID of zero** when translation fails, which the FTM does not validate
/// (the paper's §7.2 propagation bug, kept deliberately).
#[derive(Clone)]
pub struct NodeMgmt {
    state: Fields,
    checks: bool,
}

impl NodeMgmt {
    /// Creates the element.
    pub fn new(checks: bool) -> Self {
        let mut state = Fields::new();
        state.set("hosts", Value::Map(Default::default()));
        state.set("daemons", Value::Map(Default::default()));
        state.set("hb_installed", Value::Bool(false));
        state.set("ftm_node", Value::U64(0));
        NodeMgmt { state, checks }
    }

    /// Hostname → daemon-ID translation with the paper's unchecked
    /// default of 0 on failure. The table stores hostname *strings* (as
    /// the real element did); a bit flip inside a hostname makes the
    /// lookup miss and the translation silently return daemon 0 — the
    /// exact §7.2 mechanism behind "unable to install Execution ARMORs".
    fn translate(&self, node: u64) -> u64 {
        let want = format!("node{node}");
        if let Some(Value::Map(hosts)) = self.state.get("hosts") {
            for rec in hosts.values() {
                if rec_str(rec, "host") == Some(want.as_str()) {
                    return rec_u64(rec, "daemon").unwrap_or(0);
                }
            }
        }
        0
    }
}

fn rec_bool_or(rec: &Value, field: &str, default: bool) -> bool {
    crate::util::rec_bool(rec, field).unwrap_or(default)
}

impl Element for NodeMgmt {
    fn name(&self) -> &'static str {
        "node_mgmt"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            "sift-configure",
            tags::DAEMON_REGISTER,
            "need-install",
            "need-reinstall",
            "need-uninstall",
            tags::NODE_FAILED,
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "sift-configure" => {
                if let Some(node) = ev.u64("node") {
                    self.state.set("ftm_node", Value::U64(node));
                }
            }
            tags::DAEMON_REGISTER => {
                let daemon = ev.u64("daemon").unwrap_or(0);
                let node = ev.u64("node").unwrap_or(0);
                table_set(
                    &mut self.state,
                    "hosts",
                    &node.to_string(),
                    record(vec![
                        ("host", Value::Str(format!("node{node}"))),
                        ("daemon", Value::U64(daemon)),
                    ]),
                );
                table_set(
                    &mut self.state,
                    "daemons",
                    &daemon.to_string(),
                    record(vec![("node", Value::U64(node)), ("alive", Value::Bool(true))]),
                );
                ctx.raise(
                    ArmorEvent::new("daemon-registered")
                        .with("daemon", Value::U64(daemon))
                        .with("node", Value::U64(node)),
                );
                // Table 1 step 1c: install the Heartbeat ARMOR via the
                // first registered daemon on a node other than the FTM's.
                let hb_done =
                    self.state.get("hb_installed").and_then(Value::as_bool).unwrap_or(false);
                let ftm_node = self.state.u64("ftm_node").unwrap_or(0);
                if !hb_done && node != ftm_node {
                    self.state.set("hb_installed", Value::Bool(true));
                    let ftm_daemon = self.translate(ftm_node);
                    ctx.send(
                        ArmorId(daemon as u32),
                        vec![ArmorEvent::new(tags::INSTALL_ARMOR)
                            .with("kind", Value::Str("heartbeat".into()))
                            .with("requester", Value::U64(ids::FTM.0 as u64))
                            .with("ftm_daemon", Value::U64(ftm_daemon))],
                    );
                }
            }
            "need-install" | "need-reinstall" | "need-uninstall" => {
                let node = ev.u64("node").unwrap_or(0);
                // THE unchecked translation: a corrupted host table sends
                // this instruction to ArmorId(0), detected only by the
                // daemon layer "too late" (§7.2).
                let daemon = self.translate(node);
                let (tag, extra_requester) = match ev.tag {
                    "need-install" => (tags::INSTALL_ARMOR, true),
                    "need-reinstall" => (tags::REINSTALL_ARMOR, true),
                    _ => (tags::UNINSTALL_ARMOR, false),
                };
                let mut out = ArmorEvent::new(tag);
                out.fields = ev.fields.clone();
                if extra_requester {
                    out.fields.set("requester", Value::U64(ids::FTM.0 as u64));
                }
                if ev.tag == "need-reinstall" {
                    let ftm_daemon = self.translate(self.state.u64("ftm_node").unwrap_or(0));
                    out.fields.set("ftm_daemon", Value::U64(ftm_daemon));
                }
                ctx.send(ArmorId(daemon as u32), vec![out]);
            }
            tags::NODE_FAILED => {
                let node = ev.u64("node").unwrap_or(0);
                let daemon = self.translate(node);
                if daemon != 0 {
                    crate::util::rec_set(
                        &mut self.state,
                        "daemons",
                        &daemon.to_string(),
                        "alive",
                        Value::Bool(false),
                    );
                }
                table_remove(&mut self.state, "hosts", &node.to_string());
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        if !self.checks {
            return Ok(());
        }
        // Deliberately weaker than the other elements (the paper found 14
        // of 17 fired assertions here detected the error too late): only
        // gross structural damage is caught — a flipped-but-plausible
        // daemon ID or a corrupted hostname string passes.
        ree_armor::assertions::map_integrity(&self.state, "hosts", |rec| {
            rec_u64(rec, "daemon").map(|d| d < 1_000).unwrap_or(false)
        })
    }
}

/// Heartbeats every registered daemon to detect node failures (FTM
/// responsibility 3; §3.3 "the FTM periodically exchanges heartbeat
/// messages with each daemon").
#[derive(Clone)]
pub struct DaemonHb {
    state: Fields,
    period: SimDuration,
}

impl DaemonHb {
    /// Creates the heartbeat element with the given period.
    pub fn new(period: SimDuration) -> Self {
        let mut state = Fields::new();
        state.set("watch", Value::Map(Default::default()));
        state.set("pings", Value::U64(0));
        DaemonHb { state, period }
    }
}

impl Element for DaemonHb {
    fn name(&self) -> &'static str {
        "daemon_hb"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            tags::ARMOR_START,
            "armor-restored",
            "daemon-hb-cycle",
            tags::DAEMON_HB_ACK,
            "daemon-registered",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            tags::ARMOR_START => {
                ctx.set_timer_event(self.period, ArmorEvent::new("daemon-hb-cycle"));
            }
            "armor-restored" => {
                // "Awaiting ack" is in-flight state: a restored FTM must
                // not treat pings its dead predecessor sent as pending,
                // or it would mass-declare node failures on its first
                // cycle.
                for key in table_keys(&self.state, "watch") {
                    crate::util::rec_set(
                        &mut self.state,
                        "watch",
                        &key,
                        "awaiting",
                        Value::Bool(false),
                    );
                }
            }
            "daemon-registered" => {
                let daemon = ev.u64("daemon").unwrap_or(0);
                let node = ev.u64("node").unwrap_or(0);
                table_set(
                    &mut self.state,
                    "watch",
                    &daemon.to_string(),
                    record(vec![("node", Value::U64(node)), ("awaiting", Value::Bool(false))]),
                );
            }
            "daemon-hb-cycle" => {
                let entries: Vec<(String, u64, bool)> = self
                    .state
                    .get("watch")
                    .and_then(Value::as_map)
                    .map(|m| {
                        m.iter()
                            .map(|(k, rec)| {
                                (
                                    k.clone(),
                                    rec_u64(rec, "node").unwrap_or(0),
                                    rec_bool_or(rec, "awaiting", false),
                                )
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                for (key, node, awaiting) in entries {
                    if awaiting {
                        // "If the FTM does not receive a response by the
                        // next heartbeat round, it assumes that the node
                        // has failed" (§3.3).
                        table_remove(&mut self.state, "watch", &key);
                        ctx.os.trace_recovery_event(
                            TraceEvent::NodeFailureDetected,
                            TraceDetail::DetectNodeFailure { node },
                        );
                        // Collect alive nodes for migration targets.
                        let alive: Vec<Value> = self
                            .state
                            .get("watch")
                            .and_then(Value::as_map)
                            .map(|m| {
                                m.values()
                                    .filter_map(|r| rec_u64(r, "node"))
                                    .filter(|n| *n != node)
                                    .map(Value::U64)
                                    .collect()
                            })
                            .unwrap_or_default();
                        ctx.raise(
                            ArmorEvent::new(tags::NODE_FAILED)
                                .with("node", Value::U64(node))
                                .with("alive_nodes", Value::List(alive)),
                        );
                    } else {
                        self.state.bump("pings");
                        crate::util::rec_set(
                            &mut self.state,
                            "watch",
                            &key,
                            "awaiting",
                            Value::Bool(true),
                        );
                        let daemon: u64 = key.parse().unwrap_or(0);
                        ctx.send_unreliable(
                            ArmorId(daemon as u32),
                            vec![ArmorEvent::new(tags::DAEMON_HB_PING)
                                .with("seq", Value::U64(self.state.u64("pings").unwrap_or(0)))],
                        );
                    }
                }
                ctx.set_timer_event(self.period, ArmorEvent::new("daemon-hb-cycle"));
            }
            tags::DAEMON_HB_ACK => {
                if let Some(daemon) = ev.u64("daemon") {
                    crate::util::rec_set(
                        &mut self.state,
                        "watch",
                        &daemon.to_string(),
                        "awaiting",
                        Value::Bool(false),
                    );
                }
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        ree_armor::assertions::map_integrity(&self.state, "watch", |rec| {
            rec_u64(rec, "node").map(|n| n < 64).unwrap_or(false)
        })
    }
}
