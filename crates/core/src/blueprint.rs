//! Factories assembling concrete ARMORs from elements, and the
//! application registry used to launch MPI processes.
//!
//! A [`Blueprint`] is the shared recipe book of a SIFT deployment: the
//! SCC uses it to build daemons, daemons use it to build the FTM /
//! Heartbeat / Execution ARMORs (including fork-style recovery copies),
//! and Execution ARMORs use it to launch application processes.

use crate::common::{Configurator, ProbeResponder};
use crate::config::{ids, names, SiftConfig};
use crate::daemon::{DaemonGateway, DaemonInstaller, LocalProber};
use crate::exec::{AppMonitor, ProgressWatch};
use crate::ftm::{
    AppParam, DaemonHb, ExecArmorInfo, FtmHbResponder, MgrAppDetect, MgrArmorInfo, NodeMgmt,
    SccIface,
};
use crate::heartbeat::HbWatch;
use ree_armor::{ArmorId, ArmorOptions, ArmorProcess, Element, Gateway, RestorePolicy};
use ree_os::{NodeId, Pid, Process};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Constructs the process for one MPI rank of an application.
///
/// Factories are shared (`Arc`) and thread-portable: a warm-boot
/// snapshot carries them inside cloned processes, and campaign workers
/// invoke them concurrently.
pub type AppFactory = Arc<dyn Fn(&AppLaunch) -> Box<dyn Process> + Send + Sync>;

/// Everything an application process needs to know at launch.
#[derive(Clone)]
pub struct AppLaunch {
    /// Application name (registry key).
    pub app: String,
    /// Application slot within the SIFT environment.
    pub slot: u32,
    /// This process's MPI rank.
    pub rank: u32,
    /// Total number of ranks.
    pub size: u32,
    /// Node assignment per rank.
    pub nodes: Vec<u16>,
    /// Execution-ARMOR process per rank (SIFT interface endpoints).
    pub exec_pids: Vec<Pid>,
    /// Launch attempt (0 = first; restarts increment).
    pub attempt: u32,
    /// False when running outside the SIFT environment (Table 3
    /// baseline).
    pub sift_enabled: bool,
    /// Rank 0's pid (set by rank 0 before spawning peers so they can
    /// reach it for the init barrier).
    pub rank0_pid: Option<Pid>,
    /// How long a SIFT-interface call may block before the application
    /// gives up (the SAN model's `app_timeout`).
    pub block_timeout: ree_sim::SimDuration,
    /// Factory for spawning peer ranks (rank 0 launches ranks 1..n per
    /// the MPI protocol, Table 1 step 5).
    pub factory: AppFactory,
}

impl std::fmt::Debug for AppLaunch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppLaunch")
            .field("app", &self.app)
            .field("slot", &self.slot)
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("attempt", &self.attempt)
            .field("sift_enabled", &self.sift_enabled)
            .finish()
    }
}

impl AppLaunch {
    /// The Execution-ARMOR endpoint for this rank, if running under SIFT.
    pub fn my_exec_pid(&self) -> Option<Pid> {
        if self.sift_enabled {
            self.exec_pids.get(self.rank as usize).copied()
        } else {
            None
        }
    }

    /// A copy of this launch descriptor re-targeted at another rank.
    pub fn for_rank(&self, rank: u32) -> AppLaunch {
        AppLaunch { rank, ..self.clone() }
    }
}

/// The SIFT deployment recipe book.
///
/// Shared behind an `Arc` by every process that launches others; the
/// registry lock is uncontended in practice (registration happens before
/// boot, lookups happen on submissions and restarts).
pub struct Blueprint {
    /// Environment configuration.
    pub config: SiftConfig,
    apps: Mutex<HashMap<String, AppFactory>>,
}

impl Blueprint {
    /// Creates a blueprint with the given configuration.
    pub fn new(config: SiftConfig) -> Arc<Blueprint> {
        Arc::new(Blueprint { config, apps: Mutex::new(HashMap::new()) })
    }

    /// Registers an application factory under `name`.
    pub fn register_app(&self, name: impl Into<String>, factory: AppFactory) {
        self.apps.lock().expect("app registry lock").insert(name.into(), factory);
    }

    /// Looks up an application factory.
    pub fn app_factory(&self, name: &str) -> Option<AppFactory> {
        self.apps.lock().expect("app registry lock").get(name).cloned()
    }

    /// Registered application names (sorted).
    pub fn app_names(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.apps.lock().expect("app registry lock").keys().cloned().collect();
        v.sort();
        v
    }

    /// Instance name for an ARMOR of `kind`.
    pub fn armor_instance_name(&self, kind: &str, slot: u32, rank: u32) -> String {
        match kind {
            "ftm" => names::FTM.to_owned(),
            "heartbeat" => names::HEARTBEAT.to_owned(),
            _ => names::exec(slot, rank),
        }
    }

    fn armor_options(&self, restore: RestorePolicy) -> ArmorOptions {
        ArmorOptions {
            restore,
            precheck_assertions: self.config.precheck_assertions,
            ..ArmorOptions::default()
        }
    }

    /// Builds a daemon ARMOR for `node` (used by the SCC).
    pub fn make_daemon(self: &Arc<Self>, node: NodeId) -> Box<dyn Process> {
        let elements: Vec<Box<dyn Element>> = vec![
            Box::new(DaemonGateway::new(node)),
            Box::new(DaemonInstaller::new(node, Arc::clone(self))),
            Box::new(LocalProber::new(self.config.daemon_probe_period)),
        ];
        Box::new(ArmorProcess::new(
            ids::daemon(node.0),
            names::daemon(node.0),
            elements,
            Gateway::SelfRouting,
            self.armor_options(RestorePolicy::OnStart),
        ))
    }

    /// Builds an ARMOR of `kind` gatewayed through the daemon process
    /// `gateway` (used by daemons when installing/recovering).
    pub fn make_armor(
        self: &Arc<Self>,
        kind: &str,
        id: ArmorId,
        gateway: Pid,
        slot: u32,
        rank: u32,
    ) -> Box<dyn Process> {
        let checks = self.config.assertions_enabled;
        match kind {
            "ftm" => {
                let elements: Vec<Box<dyn Element>> = vec![
                    Box::new(Configurator::new()),
                    Box::new(ProbeResponder::new()),
                    Box::new(FtmHbResponder::new()),
                    Box::new(SccIface::new(checks, self.config.connect_timeout)),
                    Box::new(MgrArmorInfo::new(checks, self.config.race_fix_enabled)),
                    Box::new(ExecArmorInfo::new(checks)),
                    Box::new(AppParam::new(checks)),
                    Box::new(MgrAppDetect::new(checks)),
                    Box::new(NodeMgmt::new(checks)),
                    Box::new(DaemonHb::new(self.config.ftm_daemon_hb_period)),
                ];
                Box::new(ArmorProcess::new(
                    id,
                    names::FTM,
                    elements,
                    Gateway::Daemon(gateway),
                    // Two-step recovery: the Heartbeat ARMOR instructs
                    // the restore (§6.1).
                    self.armor_options(RestorePolicy::OnInstruction),
                ))
            }
            "heartbeat" => {
                let elements: Vec<Box<dyn Element>> = vec![
                    Box::new(Configurator::new()),
                    Box::new(ProbeResponder::new()),
                    Box::new(HbWatch::new(self.config.hb_ftm_period)),
                ];
                Box::new(ArmorProcess::new(
                    id,
                    names::HEARTBEAT,
                    elements,
                    Gateway::Daemon(gateway),
                    self.armor_options(RestorePolicy::OnStart),
                ))
            }
            _ => {
                let elements: Vec<Box<dyn Element>> = vec![
                    Box::new(Configurator::new()),
                    Box::new(ProbeResponder::new()),
                    Box::new(AppMonitor::new(Arc::clone(self))),
                    Box::new(ProgressWatch::new(
                        self.config.pi_check_period,
                        self.config.interrupt_driven_pi,
                    )),
                ];
                Box::new(ArmorProcess::new(
                    id,
                    names::exec(slot, rank),
                    elements,
                    Gateway::Daemon(gateway),
                    self.armor_options(RestorePolicy::OnStart),
                ))
            }
        }
    }
}

impl std::fmt::Debug for Blueprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blueprint").field("apps", &self.app_names()).finish()
    }
}
