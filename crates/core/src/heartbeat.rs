//! The Heartbeat ARMOR (§3.1): "executes on a node separate from the FTM.
//! Its sole responsibility is to detect and recover from failures in the
//! FTM through the periodic polling for liveness. This functionality is
//! implemented in a single element."

use crate::config::{ids, tags};
use ree_armor::{ArmorEvent, ArmorId, Element, ElementCtx, ElementOutcome, Fields, Value};
use ree_os::TraceEvent;
use ree_sim::SimDuration;

/// Number of consecutive missed heartbeat rounds before the FTM is
/// declared failed (one full round of silence, per §3.3).
const MISS_THRESHOLD: u64 = 2;

/// The single FTM-watching element of the Heartbeat ARMOR.
#[derive(Clone)]
pub struct HbWatch {
    state: Fields,
    period: SimDuration,
}

impl HbWatch {
    /// Creates the watcher with the given heartbeat period.
    pub fn new(period: SimDuration) -> Self {
        let mut state = Fields::new();
        state.set("misses", Value::U64(0));
        state.set("awaiting", Value::Bool(false));
        state.set("recovering", Value::Bool(false));
        state.set("pings_sent", Value::U64(0));
        state.set("recoveries", Value::U64(0));
        // The FTM's daemon (set by sift-configure at install time).
        state.set("ftm_daemon", Value::U64(0));
        HbWatch { state, period }
    }

    fn initiate_ftm_recovery(&mut self, ctx: &mut ElementCtx<'_, '_>) {
        let daemon = self.state.u64("ftm_daemon").unwrap_or(0);
        self.state.set("recovering", Value::Bool(true));
        self.state.bump("recoveries");
        ctx.os.trace_recovery_event(
            TraceEvent::FtmFailureDetected,
            "detect ftm failure (heartbeat timeout)",
        );
        // Step one of the two-step recovery (§6.1): reinstall via the
        // FTM's daemon. Step two (state restore) happens only after the
        // REINSTALL_ACK arrives — a receive-omitting Heartbeat ARMOR
        // never sends it, leaving the FTM unrecovered.
        ctx.send(
            ArmorId(daemon as u32),
            vec![ArmorEvent::new(tags::REINSTALL_ARMOR)
                .with("armor", Value::U64(ids::FTM.0 as u64))
                .with("kind", Value::Str("ftm".into()))
                .with("requester", Value::U64(ctx.armor_id().0 as u64))],
        );
    }
}

impl Element for HbWatch {
    fn name(&self) -> &'static str {
        "hb_watch"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[
            tags::ARMOR_START,
            "armor-restored",
            "hb-cycle",
            tags::FTM_HB_ACK,
            tags::REINSTALL_ACK,
            "sift-configure",
        ]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        match ev.tag {
            "sift-configure" => {
                if let Some(fd) = ev.u64("ftm_daemon") {
                    self.state.set("ftm_daemon", Value::U64(fd));
                }
            }
            tags::ARMOR_START => {
                ctx.set_timer_event(self.period, ArmorEvent::new("hb-cycle"));
            }
            "armor-restored" => {
                // In-flight liveness state died with the predecessor.
                self.state.set("awaiting", Value::Bool(false));
                self.state.set("misses", Value::U64(0));
                self.state.set("recovering", Value::Bool(false));
                self.state.set("recover_wait", Value::U64(0));
            }
            "hb-cycle" => {
                let recovering =
                    self.state.get("recovering").and_then(Value::as_bool).unwrap_or(false);
                if recovering {
                    // Waiting for the reinstall ack; give it one cycle,
                    // then retry the whole recovery.
                    let stuck = self.state.bump("recover_wait").unwrap_or(0);
                    if stuck >= 3 {
                        self.state.set("recover_wait", Value::U64(0));
                        self.initiate_ftm_recovery(ctx);
                    }
                } else if self.state.get("awaiting").and_then(Value::as_bool).unwrap_or(false) {
                    let misses = self.state.bump("misses").unwrap_or(0);
                    if misses >= MISS_THRESHOLD {
                        self.state.set("misses", Value::U64(0));
                        self.state.set("awaiting", Value::Bool(false));
                        self.initiate_ftm_recovery(ctx);
                    }
                } else {
                    self.state.set("awaiting", Value::Bool(true));
                }
                if !self.state.get("recovering").and_then(Value::as_bool).unwrap_or(false) {
                    self.state.bump("pings_sent");
                    ctx.send_unreliable(
                        ids::FTM,
                        vec![ArmorEvent::new(tags::FTM_HB_PING)
                            .with("seq", Value::U64(self.state.u64("pings_sent").unwrap_or(0)))],
                    );
                }
                ctx.set_timer_event(self.period, ArmorEvent::new("hb-cycle"));
            }
            tags::FTM_HB_ACK => {
                self.state.set("awaiting", Value::Bool(false));
                self.state.set("misses", Value::U64(0));
            }
            tags::REINSTALL_ACK if ev.u64("armor") == Some(ids::FTM.0 as u64) => {
                self.state.set("recovering", Value::Bool(false));
                self.state.set("recover_wait", Value::U64(0));
                self.state.set("awaiting", Value::Bool(false));
                self.state.set("misses", Value::U64(0));
                // Step two: instruct the recovered FTM to restore its
                // state from the checkpoint.
                ctx.send(ids::FTM, vec![ArmorEvent::new("__restore-state")]);
                ctx.os.trace_recovery("ftm reinstalled; restore instructed");
            }
            _ => {}
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }

    fn check(&self) -> Result<(), String> {
        ree_armor::assertions::range_check(&self.state, "misses", 0, 100)?;
        ree_armor::assertions::range_check(&self.state, "ftm_daemon", 0, 99)
    }
}
