//! Reports exchanged between the FTM and the SCC, and the job-timing
//! records the SCC persists to the remote file system for the
//! experiment harness.

use ree_armor::ArmorId;
use ree_os::Pid;
use ree_sim::SimTime;

/// Status report from the FTM to the Spacecraft Control Computer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SccReport {
    /// The application's first MPI process started.
    Started {
        /// Application slot.
        slot: u64,
        /// Launch attempt (0 = first).
        attempt: u64,
    },
    /// The application was restarted after a failure.
    Restarted {
        /// Application slot.
        slot: u64,
        /// Launch attempt.
        attempt: u64,
    },
    /// All ranks terminated cleanly (actual end of execution); takedown
    /// follows.
    Ended {
        /// Application slot.
        slot: u64,
        /// Virtual time (µs) of the last rank's clean exit.
        end_us: u64,
    },
    /// Execution ARMORs uninstalled and completion reported (perceived
    /// end of execution).
    Completed {
        /// Application slot.
        slot: u64,
    },
    /// The connect-timeout guard fired before the application started
    /// (§9 lessons extension).
    ConnectTimeout {
        /// Application slot.
        slot: u64,
    },
}

impl SccReport {
    /// Typed trace detail mirroring this report's derived `Debug` output
    /// ("SCC received {self:?}") without formatting anything eagerly.
    pub fn trace_detail(&self) -> ree_os::TraceDetail {
        let (variant, f1, f2) = match *self {
            SccReport::Started { slot, attempt } => {
                ("Started", ("slot", slot), Some(("attempt", attempt)))
            }
            SccReport::Restarted { slot, attempt } => {
                ("Restarted", ("slot", slot), Some(("attempt", attempt)))
            }
            SccReport::Ended { slot, end_us } => {
                ("Ended", ("slot", slot), Some(("end_us", end_us)))
            }
            SccReport::Completed { slot } => ("Completed", ("slot", slot), None),
            SccReport::ConnectTimeout { slot } => ("ConnectTimeout", ("slot", slot), None),
        };
        ree_os::TraceDetail::SccReceivedReport { variant, f1, f2 }
    }
}

/// Daemon → SCC notification that an ARMOR was (re)installed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmorInstalled {
    /// The ARMOR's identity.
    pub armor: ArmorId,
    /// Its new process id.
    pub pid: Pid,
    /// Its kind (`ftm`, `heartbeat`, `exec`).
    pub kind: String,
}

/// Timing record for one submitted job, persisted by the SCC.
///
/// The harness derives the paper's two headline measurements from it:
/// *perceived* execution time (submit → completion report, Figure 5) and
/// *actual* execution time (first start → completion).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobTimes {
    /// When the SCC submitted the job.
    pub submitted: Option<SimTime>,
    /// When the FTM first reported the application started.
    pub started: Option<SimTime>,
    /// When all ranks had terminated (actual end).
    pub ended: Option<SimTime>,
    /// When the FTM reported completion after takedown (perceived end).
    pub completed: Option<SimTime>,
    /// Number of application restarts observed.
    pub restarts: u64,
    /// Number of connect-timeout retries observed.
    pub connect_timeouts: u64,
}

impl JobTimes {
    /// Remote-FS path for a slot's record.
    pub fn path(slot: u64) -> String {
        format!("scc/report/{slot}")
    }

    /// Serialises to the stable on-FS text format.
    pub fn encode(&self) -> Vec<u8> {
        let f = |t: Option<SimTime>| t.map(|x| x.as_micros() as i64).unwrap_or(-1);
        format!(
            "submit={};started={};ended={};completed={};restarts={};connect_timeouts={}",
            f(self.submitted),
            f(self.started),
            f(self.ended),
            f(self.completed),
            self.restarts,
            self.connect_timeouts
        )
        .into_bytes()
    }

    /// Parses the on-FS format.
    pub fn decode(bytes: &[u8]) -> Option<JobTimes> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut out = JobTimes::default();
        for part in text.split(';') {
            let (key, value) = part.split_once('=')?;
            let n: i64 = value.parse().ok()?;
            let t = if n < 0 { None } else { Some(SimTime::from_micros(n as u64)) };
            match key {
                "submit" => out.submitted = t,
                "started" => out.started = t,
                "ended" => out.ended = t,
                "completed" => out.completed = t,
                "restarts" => out.restarts = n.max(0) as u64,
                "connect_timeouts" => out.connect_timeouts = n.max(0) as u64,
                _ => return None,
            }
        }
        Some(out)
    }

    /// Perceived application execution time (Figure 5): submission to
    /// completion report.
    pub fn perceived(&self) -> Option<ree_sim::SimDuration> {
        Some(self.completed?.since(self.submitted?))
    }

    /// Actual application execution time (Figure 5): first start to the
    /// last rank's termination.
    pub fn actual(&self) -> Option<ree_sim::SimDuration> {
        Some(self.ended.or(self.completed)?.since(self.started?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let t = JobTimes {
            submitted: Some(SimTime::from_secs(5)),
            started: Some(SimTime::from_secs(7)),
            ended: Some(SimTime::from_secs(79)),
            completed: Some(SimTime::from_secs(80)),
            restarts: 2,
            connect_timeouts: 1,
        };
        let back = JobTimes::decode(&t.encode()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn partial_times_encode_as_missing() {
        let t = JobTimes { submitted: Some(SimTime::from_secs(5)), ..Default::default() };
        let back = JobTimes::decode(&t.encode()).unwrap();
        assert_eq!(back.started, None);
        assert_eq!(back.completed, None);
        assert!(back.perceived().is_none());
    }

    #[test]
    fn perceived_and_actual_derivations() {
        let t = JobTimes {
            submitted: Some(SimTime::from_secs(5)),
            started: Some(SimTime::from_secs(8)),
            ended: Some(SimTime::from_secs(78)),
            completed: Some(SimTime::from_secs(80)),
            ..Default::default()
        };
        assert_eq!(t.perceived().unwrap().as_secs_f64(), 75.0);
        assert_eq!(t.actual().unwrap().as_secs_f64(), 70.0);
    }

    #[test]
    fn garbage_decode_fails() {
        assert!(JobTimes::decode(b"not-a-record").is_none());
        assert!(JobTimes::decode(&[0xFF, 0xFE]).is_none());
    }
}
