//! Elements in the basic set shared by all ARMORs (§3.1): liveness-probe
//! response and configuration intake.

use crate::config::tags;
use ree_armor::{ArmorEvent, Element, ElementCtx, ElementOutcome, Fields, Value};

/// Responds to "Are-you-alive?" probes from the local daemon — core
/// capability (3) of every ARMOR (§3.1). A hung (stopped) ARMOR never
/// replies, which is exactly how daemons detect hang failures.
#[derive(Clone, Debug, Default)]
pub struct ProbeResponder {
    state: Fields,
}

impl ProbeResponder {
    /// Creates the responder.
    pub fn new() -> Self {
        let mut state = Fields::new();
        state.set("probes_answered", Value::U64(0));
        ProbeResponder { state }
    }
}

impl Element for ProbeResponder {
    fn name(&self) -> &'static str {
        "probe_responder"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &[tags::ARE_YOU_ALIVE]
    }

    fn handle(&mut self, ev: &ArmorEvent, ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        let Some(from) = ev.armor_id("daemon") else {
            return ElementOutcome::AbortThread("are-you-alive without daemon id".into());
        };
        self.state.bump("probes_answered");
        let seq = ev.u64("seq").unwrap_or(0);
        ctx.send_unreliable(
            from,
            vec![ArmorEvent::new(tags::ALIVE_ACK)
                .with("armor", Value::U64(ctx.armor_id().0 as u64))
                .with("seq", Value::U64(seq))],
        );
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }
}

/// Stores `sift-configure` fields into element state so compositions can
/// be parameterised after spawn (HB ARMOR learns the FTM's daemon, Exec
/// ARMORs learn their slot/rank, everyone learns the SCC pid).
#[derive(Clone, Debug, Default)]
pub struct Configurator {
    state: Fields,
}

impl Configurator {
    /// Creates an empty configurator.
    pub fn new() -> Self {
        Configurator { state: Fields::new() }
    }
}

impl Element for Configurator {
    fn name(&self) -> &'static str {
        "configurator"
    }

    fn subscriptions(&self) -> &'static [&'static str] {
        &["sift-configure"]
    }

    fn handle(&mut self, ev: &ArmorEvent, _ctx: &mut ElementCtx<'_, '_>) -> ElementOutcome {
        for (name, value) in ev.fields.iter() {
            self.state.set(name.clone(), value.clone());
        }
        ElementOutcome::Ok
    }

    fn state(&self) -> &Fields {
        &self.state
    }

    fn state_mut(&mut self) -> &mut Fields {
        &mut self.state
    }
}
