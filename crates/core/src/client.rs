//! The SIFT application interface (§3.2): "each application process is
//! linked with a SIFT interface that establishes a one-way communication
//! channel with the local Execution ARMOR at application initialization.
//! … The interface used for these experiments contains functions for
//! initializing the communication channel, using progress indicators to
//! detect application hangs, and closing the communication channel."
//!
//! Calls are acknowledged by the Execution ARMOR; while an ack is
//! outstanding the application is expected to *block* (it is exactly this
//! blocking that couples application availability to SIFT-process
//! availability — §5.2's correlated failures and the Figure 9 SAN model).

use crate::blueprint::AppLaunch;
use crate::config::tags;
use ree_armor::{ArmorEvent, ControlOp, Value};
use ree_os::{Message, Pid, ProcCtx};
use ree_sim::{SimDuration, SimTime};

/// Outcome of feeding an OS message to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientNote {
    /// The Execution ARMOR acknowledged the named call; the app may
    /// proceed.
    Acked(&'static str),
    /// The Execution ARMOR recovered and re-advertised its endpoint; any
    /// pending call was retransmitted.
    Rebound,
    /// The message was not for the SIFT client.
    NotMine,
}

#[derive(Clone, Debug)]
struct PendingCall {
    event: ArmorEvent,
    since: SimTime,
}

/// Client half of the SIFT interface, embedded in application processes.
#[derive(Clone, Debug)]
pub struct SiftClient {
    exec_pid: Option<Pid>,
    rank: u32,
    counter: u64,
    pending: Option<PendingCall>,
    attached: bool,
    calls_made: u64,
}

impl SiftClient {
    /// Builds the client from the launch descriptor. Outside the SIFT
    /// environment every call is a no-op and nothing ever blocks.
    pub fn new(launch: &AppLaunch) -> Self {
        SiftClient {
            exec_pid: launch.my_exec_pid(),
            rank: launch.rank,
            counter: 0,
            pending: None,
            attached: false,
            calls_made: 0,
        }
    }

    /// True when running under the SIFT environment.
    pub fn sift_enabled(&self) -> bool {
        self.exec_pid.is_some()
    }

    /// True while a call awaits its ack (the app should not proceed).
    pub fn is_blocked(&self) -> bool {
        self.pending.is_some()
    }

    /// How long the current call has been blocked.
    pub fn blocked_for(&self, now: SimTime) -> SimDuration {
        self.pending.as_ref().map(|p| now.since(p.since)).unwrap_or(SimDuration::ZERO)
    }

    /// True once the channel to the Execution ARMOR is established.
    pub fn is_attached(&self) -> bool {
        self.attached || self.exec_pid.is_none()
    }

    /// Total acknowledged + outstanding calls.
    pub fn calls_made(&self) -> u64 {
        self.calls_made
    }

    /// Current progress-indicator counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    fn call(&mut self, os: &mut ProcCtx<'_>, event: ArmorEvent) {
        let Some(exec) = self.exec_pid else { return };
        self.calls_made += 1;
        self.pending = Some(PendingCall { event: event.clone(), since: os.now() });
        os.send(exec, "armor-control", 96, ControlOp::Raise(event));
    }

    /// Initializes the communication channel (Table 1 step 7 from the
    /// application side). Blocks until acknowledged.
    pub fn attach(&mut self, os: &mut ProcCtx<'_>) {
        let me = os.pid();
        let ev = ArmorEvent::new(tags::APP_ATTACH)
            .with("rank", Value::U64(self.rank as u64))
            .with("pid", Value::U64(me.0));
        self.call(os, ev);
    }

    /// Declares the progress-indicator check frequency ("before any
    /// progress indicators are sent, the application must tell the
    /// Execution ARMOR at what frequency to check").
    pub fn pi_create(&mut self, os: &mut ProcCtx<'_>, period: SimDuration) {
        let me = os.pid();
        let ev = ArmorEvent::new(tags::PI_CREATE)
            .with("period_us", Value::U64(period.as_micros()))
            .with("pid", Value::U64(me.0));
        self.call(os, ev);
    }

    /// Sends a progress-indicator update (an "I'm-alive" with a loop
    /// counter, §3.3).
    pub fn progress(&mut self, os: &mut ProcCtx<'_>) {
        self.counter += 1;
        let me = os.pid();
        let ev = ArmorEvent::new(tags::PI_UPDATE)
            .with("counter", Value::U64(self.counter))
            .with("pid", Value::U64(me.0));
        self.call(os, ev);
    }

    /// Reports a peer rank's pid (rank 0 only; Table 1 step 6). Does not
    /// block.
    pub fn report_rank_pid(&mut self, os: &mut ProcCtx<'_>, rank: u32, pid: Pid) {
        let Some(exec) = self.exec_pid else { return };
        let ev = ArmorEvent::new(tags::RANK_PID)
            .with("rank", Value::U64(rank as u64))
            .with("pid", Value::U64(pid.0));
        os.send(exec, "armor-control", 96, ControlOp::Raise(ev));
    }

    /// Notifies the ARMOR of a clean exit so it is not misread as a
    /// crash (§3.3). Blocks until acknowledged.
    pub fn notify_exit(&mut self, os: &mut ProcCtx<'_>) {
        let me = os.pid();
        let ev = ArmorEvent::new(tags::APP_EXITING)
            .with("rank", Value::U64(self.rank as u64))
            .with("pid", Value::U64(me.0));
        self.call(os, ev);
    }

    /// Feeds an inbound OS message to the client; returns what happened.
    pub fn handle_message(&mut self, msg: &Message, os: &mut ProcCtx<'_>) -> ClientNote {
        match msg.label {
            "sift-ack" => {
                let kind = msg.peek::<&'static str>().copied().unwrap_or("unknown");
                if kind == tags::APP_ATTACH {
                    self.attached = true;
                }
                self.pending = None;
                ClientNote::Acked(kind)
            }
            "sift-rebind" => {
                if let Some(new_pid) = msg.peek::<Pid>() {
                    self.exec_pid = Some(*new_pid);
                    // Retransmit whatever was in flight toward the dead
                    // incarnation.
                    if let Some(pending) = self.pending.clone() {
                        let exec = *new_pid;
                        os.send(exec, "armor-control", 96, ControlOp::Raise(pending.event));
                    }
                }
                ClientNote::Rebound
            }
            _ => ClientNote::NotMine,
        }
    }

    /// Retries the pending call (apps call this on a periodic timer while
    /// blocked; the channel itself is unreliable during ARMOR recovery).
    pub fn retry_pending(&mut self, os: &mut ProcCtx<'_>) {
        if let (Some(pending), Some(exec)) = (self.pending.clone(), self.exec_pid) {
            os.send(exec, "armor-control", 96, ControlOp::Raise(pending.event));
        }
    }
}
