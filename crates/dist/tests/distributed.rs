//! The tentpole acceptance tests: a distributed sweep's aggregate is
//! **byte-identical** to the single-process `Campaign::aggregate` — for
//! any worker count, and with every self-chaos mode (kill -9, hang,
//! frame corruption, frame truncation, poisoned run) fired mid-sweep.
//! Recovery is proven by equality, not by absence of crashes.

use ree_dist::{distribute, ChaosMode, ChaosPlan, DistOptions};
use ree_inject::{Aggregate, Campaign, ErrorModel, RunPlan, Target};
use ree_sim::{SimDuration, SimTime};
use std::time::Duration;

fn plan() -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(1),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::ZERO + SimDuration::from_secs(120),
        net_faults: Vec::new(),
    }
}

/// Test options: the dedicated worker binary, small batches so several
/// cross the failure, and tight (but debug-build-safe) timeouts.
fn options(workers: usize) -> DistOptions {
    let mut o = DistOptions::new(workers);
    o.batch = 4;
    o.stall_timeout = Duration::from_secs(2);
    o.batch_deadline = Duration::from_secs(60);
    o.backoff_base = Duration::from_millis(10);
    o.backoff_cap = Duration::from_millis(100);
    o.worker_cmd = Some(vec![env!("CARGO_BIN_EXE_ree-dist-worker").to_string()]);
    o
}

fn expected(plan: &RunPlan, runs: u32, seed0: u64) -> Aggregate {
    Campaign::new(plan).runs(runs).seed(seed0).aggregate()
}

#[test]
fn clean_sweep_matches_single_process_for_any_worker_count() {
    let plan = plan();
    let (runs, seed0) = (40, 5);
    let want = expected(&plan, runs, seed0);
    for workers in [1, 2, 4] {
        let report = distribute(&plan, runs, seed0, &options(workers))
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert!(report.completed(), "{workers} workers: {:?}", report.warnings);
        assert_eq!(report.runs_folded, u64::from(runs));
        assert_eq!(report.aggregate, want, "{workers} workers diverged");
        assert!(!report.fell_back, "clean sweep must not fall back");
        assert_eq!(report.ledger.runs_done(), u64::from(runs));
    }
}

/// Every chaos mode, fired mid-sweep on worker 0, must converge to the
/// identical aggregate — and must actually have hurt something (a
/// vacuous chaos test proves nothing).
#[test]
fn every_chaos_mode_converges_to_the_identical_aggregate() {
    let plan = plan();
    let (runs, seed0) = (24, 11);
    let want = expected(&plan, runs, seed0);
    for mode in ChaosMode::ALL {
        let mut o = options(2);
        o.chaos = Some(ChaosPlan { mode, victim: 0, after_runs: 1, incarnations: 1 });
        let report = distribute(&plan, runs, seed0, &o).unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert!(report.completed(), "{mode}: incomplete ({:?})", report.warnings);
        assert_eq!(report.aggregate, want, "{mode} diverged from single-process");
        assert!(report.ledger.failures() >= 1, "{mode}: chaos never fired ({:?})", report.warnings);
        assert_eq!(report.ledger.quarantined(), 0, "{mode}: one failure must not quarantine");
    }
}

/// Seeded chaos (victim and instant derived from the campaign seed) on
/// a wider pool.
#[test]
fn seeded_kill_on_four_workers_converges() {
    let plan = plan();
    let (runs, seed0) = (32, 7);
    let want = expected(&plan, runs, seed0);
    let mut o = options(4);
    o.chaos = Some(ChaosPlan::seeded(ChaosMode::Kill, seed0, 4));
    let report = distribute(&plan, runs, seed0, &o).expect("sweep runs");
    assert!(report.completed(), "{:?}", report.warnings);
    assert_eq!(report.aggregate, want);
    assert!(report.ledger.failures() >= 1, "chaos never fired");
}

/// A worker whose chaos survives its respawn (incarnations = 2) fails
/// twice and must be quarantined; the sweep still converges on the
/// remaining worker.
#[test]
fn twice_failing_worker_is_quarantined_and_sweep_converges() {
    let plan = plan();
    let (runs, seed0) = (16, 3);
    let want = expected(&plan, runs, seed0);
    let mut o = options(2);
    o.chaos = Some(ChaosPlan { mode: ChaosMode::Kill, victim: 0, after_runs: 0, incarnations: 2 });
    let report = distribute(&plan, runs, seed0, &o).expect("sweep runs");
    assert!(report.completed(), "{:?}", report.warnings);
    assert_eq!(report.aggregate, want);
    assert_eq!(report.ledger.quarantined(), 1, "{:?}", report.warnings);
    assert!(report.ledger.shard(0).quarantined);
    assert!(report.warnings.iter().any(|w| w.contains("quarantined")));
}

/// Losing the whole pool (a single worker that dies on every
/// incarnation) degrades to in-process execution — with a warning and
/// the identical aggregate.
#[test]
fn losing_every_worker_falls_back_in_process() {
    let plan = plan();
    let (runs, seed0) = (12, 21);
    let want = expected(&plan, runs, seed0);
    let mut o = options(1);
    o.chaos =
        Some(ChaosPlan { mode: ChaosMode::Kill, victim: 0, after_runs: 0, incarnations: u32::MAX });
    let report = distribute(&plan, runs, seed0, &o).expect("sweep runs");
    assert!(report.completed(), "{:?}", report.warnings);
    assert_eq!(report.aggregate, want, "fallback diverged");
    assert!(report.fell_back);
    assert!(report.ledger.fallback_runs >= 1);
    assert!(report.warnings.iter().any(|w| w.contains("falling back")), "{:?}", report.warnings);
}

/// An invalid plan is rejected up front with the typed campaign error —
/// no worker pool is ever spawned.
#[test]
fn invalid_plan_is_rejected_before_spawning() {
    let mut bad = plan();
    bad.timeout = SimTime::ZERO;
    let err = distribute(&bad, 8, 0, &options(2)).expect_err("must reject");
    assert!(err.to_string().contains("timeout"), "{err}");
}

/// The `Distributed` extension terminal mirrors `distribute` for a
/// configured `Campaign`.
#[test]
fn campaign_extension_terminal_matches() {
    use ree_dist::Distributed;
    let plan = plan();
    let want = expected(&plan, 8, 13);
    let report =
        Campaign::new(&plan).runs(8).seed(13).distributed(&options(2)).expect("sweep runs");
    assert_eq!(report.aggregate, want);
}
