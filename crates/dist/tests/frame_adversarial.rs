//! Property-based and adversarial tests for the wire frame codec: a
//! decoder fed hostile bytes must return typed errors and resynchronise
//! on the next valid frame — never panic, never mis-deliver a payload
//! (the CRC guards every delivery).

use proptest::prelude::*;
use ree_dist::{crc32, encode_frame, Decoder, FrameError};

/// Splits `bytes` into chunks at the given cut points and feeds them to
/// the decoder one at a time, collecting every decoded payload and
/// typed error along the way.
fn feed_chunked(bytes: &[u8], chunk: usize) -> (Vec<Vec<u8>>, Vec<FrameError>) {
    let mut decoder = Decoder::new();
    let mut payloads = Vec::new();
    let mut errors = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        decoder.feed(piece);
        loop {
            match decoder.next_frame() {
                Ok(Some(p)) => payloads.push(p),
                Ok(None) => break,
                Err(e) => errors.push(e),
            }
        }
    }
    (payloads, errors)
}

proptest! {
    /// Any sequence of payloads round-trips through the codec intact,
    /// no matter how the byte stream is fragmented.
    #[test]
    fn roundtrip_any_fragmentation(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let (decoded, errors) = feed_chunked(&stream, chunk);
        prop_assert_eq!(decoded, payloads);
        prop_assert!(errors.is_empty(), "clean stream produced {errors:?}");
    }

    /// Garbage before, between, and after frames is skipped with a
    /// typed `BadMagic`; every real frame still arrives.
    #[test]
    fn resyncs_through_interleaved_garbage(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..100), 1..5),
        garbage in proptest::collection::vec(
            // Exclude b'R' so garbage can't fake a partial-magic prefix
            // that glues onto the next real frame.
            proptest::collection::vec(0u8..=0x51, 1..40), 1..6),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            stream.extend_from_slice(&garbage[i % garbage.len()]);
            stream.extend_from_slice(&encode_frame(p));
        }
        let (decoded, errors) = feed_chunked(&stream, chunk);
        prop_assert_eq!(decoded, payloads);
        prop_assert!(
            errors.iter().all(|e| matches!(e, FrameError::BadMagic { .. })),
            "unexpected error kinds: {errors:?}"
        );
    }

    /// A corrupted byte anywhere in a frame never mis-delivers — the
    /// CRC (or the magic/length checks) drops the damaged frame with a
    /// typed error, never an altered payload and never a panic. The
    /// following frame survives except when the flip inflates the
    /// length field, which leaves the decoder waiting for bytes that
    /// never come — the abrupt-stream-end case the supervisor detects
    /// via EOF and its stall timeout, not the decoder.
    #[test]
    fn single_flip_never_misdelivers(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip_pos_seed in any::<usize>(),
        flip_bit in 0u8..8,
        chunk in 1usize..64,
    ) {
        let mut frame = encode_frame(&payload);
        let pos = flip_pos_seed % frame.len();
        frame[pos] ^= 1 << flip_bit;
        let corrupted = frame.clone();
        let sentinel = b"sentinel-after-corruption".to_vec();
        frame.extend_from_slice(&encode_frame(&sentinel));
        let (decoded, _errors) = feed_chunked(&frame, chunk);
        // The corrupted frame must never surface altered...
        for p in &decoded {
            prop_assert!(
                p == &payload || p == &sentinel,
                "decoder invented a payload: {p:?}"
            );
        }
        // ...and the stream may starve only when the decoder locked
        // onto an inflated length — via the real length field or via a
        // magic sequence embedded in (or created by the flip inside)
        // the damaged bytes.
        if decoded.last() != Some(&sentinel) {
            let embedded_magic =
                corrupted.windows(4).skip(1).any(|w| w == ree_dist::frame::MAGIC);
            prop_assert!(
                (4..8).contains(&pos) || embedded_magic,
                "sentinel lost to a flip at offset {pos}"
            );
        }
    }

    /// The CRC implementation matches its reflected-IEEE definition on
    /// incremental vs one-shot input (sanity for the frame check).
    #[test]
    fn crc_is_stable_under_concatenation(data in proptest::collection::vec(any::<u8>(), 0..500)) {
        prop_assert_eq!(crc32(&data), crc32(&data.clone()));
    }
}

#[test]
fn truncated_stream_yields_no_payload_and_no_panic() {
    let frame = encode_frame(b"the full payload");
    for cut in 0..frame.len() {
        let mut decoder = Decoder::new();
        decoder.feed(&frame[..cut]);
        match decoder.next_frame() {
            Ok(None) => {}
            other => panic!("truncation at {cut} produced {other:?}"),
        }
    }
}

#[test]
fn corrupted_length_is_a_typed_error_not_an_allocation() {
    let mut frame = encode_frame(b"payload");
    frame[4] = 0xFF; // length now claims ~4 GiB
    let mut decoder = Decoder::new();
    decoder.feed(&frame);
    match decoder.next_frame() {
        Err(FrameError::Oversize { len }) => {
            assert!(len as usize > ree_dist::frame::MAX_PAYLOAD)
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn bad_crc_is_a_typed_error_and_stream_recovers() {
    let mut stream = encode_frame(b"corrupt me");
    let last = stream.len() - 1;
    stream[last] ^= 0x01;
    stream.extend_from_slice(&encode_frame(b"survivor"));
    let (decoded, errors) = feed_chunked(&stream, 7);
    assert_eq!(decoded, vec![b"survivor".to_vec()]);
    assert!(
        errors.iter().any(|e| matches!(e, FrameError::BadCrc { .. })),
        "no BadCrc among {errors:?}"
    );
}

#[test]
fn errors_render_for_operators() {
    let e = FrameError::BadCrc { expected: 1, actual: 2 };
    assert!(e.to_string().contains("CRC"));
    let e = FrameError::BadMagic { skipped: 9 };
    assert!(e.to_string().contains('9'));
    let e = FrameError::Oversize { len: u32::MAX };
    assert!(!e.to_string().is_empty());
}
