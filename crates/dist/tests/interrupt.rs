//! Graceful-shutdown tests (satellite: Ctrl-C mid-sweep). These live in
//! their own integration-test binary because the interrupt flag is
//! process-global — sharing a process with the other distributed tests
//! would interrupt *their* sweeps too.
//!
//! Scenarios run sequentially inside one `#[test]` for the same reason.

use ree_dist::{distribute, signal, DistOptions, Distributed};
use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
use ree_sim::{SimDuration, SimTime};
use std::time::Duration;

fn plan() -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(1),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::ZERO + SimDuration::from_secs(120),
        net_faults: Vec::new(),
    }
}

fn options(workers: usize) -> DistOptions {
    let mut o = DistOptions::new(workers);
    o.batch = 4;
    o.stall_timeout = Duration::from_secs(2);
    o.batch_deadline = Duration::from_secs(60);
    o.worker_cmd = Some(vec![env!("CARGO_BIN_EXE_ree-dist-worker").to_string()]);
    o
}

#[test]
fn interrupt_drains_and_reports_a_byte_identical_seed_prefix() {
    let plan = plan();

    // An interrupt that is already pending folds nothing: the
    // supervisor stops before dispatching a single batch.
    signal::clear_interrupt();
    signal::request_interrupt();
    let report = distribute(&plan, 20, 5, &options(2)).expect("sweep starts");
    assert!(report.interrupted);
    assert!(!report.completed());
    assert_eq!(report.runs_folded, 0);
    assert_eq!(report.aggregate, Default::default());
    assert!(report.warnings.iter().any(|w| w.contains("interrupt")), "{:?}", report.warnings);

    // An interrupt mid-sweep drains the in-flight batches and reports a
    // partial aggregate that is byte-identical to a single-process
    // campaign over the folded seed prefix.
    signal::clear_interrupt();
    let (runs, seed0) = (400u32, 9u64);
    let interrupter = std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(400));
        signal::request_interrupt();
    });
    let report = distribute(&plan, runs, seed0, &options(2)).expect("sweep starts");
    interrupter.join().expect("interrupter thread");
    signal::clear_interrupt();
    assert!(report.interrupted, "sweep of 400 debug-mode runs outran a 400 ms interrupt");
    assert!(report.runs_folded < u64::from(runs), "nothing was left to interrupt");
    // The folded prefix is whole batches, in seed order.
    assert_eq!(report.runs_folded % 4, 0);
    let prefix = Campaign::new(&plan).runs(report.runs_folded as u32).seed(seed0).aggregate();
    assert_eq!(report.aggregate, prefix, "partial aggregate is not the seed prefix");

    // The flag clears: the next sweep runs to completion and matches
    // the single-process aggregate again.
    let report = Campaign::new(&plan).runs(8).seed(1).distributed(&options(2)).expect("sweep runs");
    assert!(report.completed() && !report.interrupted);
    assert_eq!(report.aggregate, Campaign::new(&plan).runs(8).seed(1).aggregate());
}
