//! Round-trip tests for the message codec: every protocol message —
//! including a fully-populated `RunPlan` (topology, network faults,
//! every optional field) and a fully-populated `RunResult` — must cross
//! the wire bit-exactly, because byte-identical distributed aggregation
//! rests on bit-exact result transport.

use ree_dist::{decode_msg, encode_msg, Msg, WireError, PROTO_VERSION};
use ree_inject::{ErrorModel, FailureClass, NetFault, RunPlan, RunResult, SystemFailure, Target};
use ree_net::{NetworkConfig, Topology};
use ree_sift::JobSpec;
use ree_sim::{SimDuration, SimTime};

fn rich_plan() -> RunPlan {
    let mut scenario = ree_apps::Scenario::two_apps(99);
    scenario.topology =
        Some(Topology::single_switch(scenario.nodes as u16, &NetworkConfig::ethernet_100mbps()));
    scenario.jobs.push(JobSpec {
        app: "texture".into(),
        ranks: 1,
        nodes: vec![0],
        submit_at: SimDuration::from_millis(750),
    });
    RunPlan {
        scenario,
        target: Target::NamedApp("texture".into()),
        model: ErrorModel::HeapSingle(ree_os::HeapTarget::Region("texture".into())),
        timeout: SimTime::ZERO + SimDuration::from_secs(90),
        net_faults: vec![
            NetFault::partition_on_recovery(
                vec![vec![0, 1, 2], vec![3, 4, 5]],
                SimDuration::from_secs(3),
            ),
            NetFault::link_at(
                1,
                4,
                SimTime::ZERO + SimDuration::from_secs(7),
                SimDuration::from_secs(2),
            ),
        ],
    }
}

fn rich_result() -> RunResult {
    RunResult {
        seed: 0xDEAD_BEEF_0BAD_CAFE,
        injections: 3,
        induced: Some(FailureClass::SegFault),
        completed: true,
        system_failure: Some(SystemFailure::AppDidNotComplete),
        output: ree_apps::Verdict::Correct,
        perceived: Some(12.625),
        actual: Some(11.25),
        perceived_all: vec![Some(12.625), None, Some(0.5)],
        actual_all: vec![Some(11.25), None],
        restarts: 2,
        recovery_times: vec![0.25, 1.5],
        correlated: true,
        assertion_fired: false,
        heap_hit: Some(ree_os::HeapHit {
            region: "texture".into(),
            field: "row_ptr".into(),
            kind: ree_os::FieldKind::Pointer,
        }),
        net_faults_applied: 2,
    }
}

/// A plan with every optional populated survives the codec. `RunPlan`
/// has no `PartialEq` (it holds a `Topology`), so equality goes through
/// the exhaustive `Debug` rendering.
#[test]
fn rich_plan_roundtrips() {
    let plan = rich_plan();
    let msg = Msg::Plan { plan: Box::new(plan.clone()) };
    let decoded = decode_msg(&encode_msg(&msg)).expect("decodes");
    let Msg::Plan { plan: back } = decoded else { panic!("wrong variant") };
    assert_eq!(format!("{plan:?}"), format!("{back:?}"));
    back.validate().expect("decoded plan still validates");
}

#[test]
fn minimal_plan_roundtrips() {
    let plan = RunPlan {
        scenario: ree_apps::Scenario::single_texture(1),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::ZERO + SimDuration::from_secs(120),
        net_faults: Vec::new(),
    };
    let msg = Msg::Plan { plan: Box::new(plan.clone()) };
    let Msg::Plan { plan: back } = decode_msg(&encode_msg(&msg)).expect("decodes") else {
        panic!("wrong variant")
    };
    assert_eq!(format!("{plan:?}"), format!("{back:?}"));
}

/// `RunResult` is `PartialEq`, so transport exactness is asserted
/// directly — including the NaN-free optional floats bit-for-bit.
#[test]
fn rich_result_roundtrips() {
    let results = vec![
        rich_result(),
        RunResult {
            seed: 1,
            injections: 0,
            induced: None,
            completed: false,
            system_failure: None,
            output: ree_apps::Verdict::Missing,
            perceived: None,
            actual: None,
            perceived_all: Vec::new(),
            actual_all: Vec::new(),
            restarts: 0,
            recovery_times: Vec::new(),
            correlated: false,
            assertion_fired: true,
            heap_hit: None,
            net_faults_applied: 0,
        },
    ];
    let msg = Msg::BatchDone { batch: 7, results: results.clone() };
    let Msg::BatchDone { batch, results: back } = decode_msg(&encode_msg(&msg)).expect("decodes")
    else {
        panic!("wrong variant")
    };
    assert_eq!(batch, 7);
    assert_eq!(back, results);
}

#[test]
fn every_control_message_roundtrips() {
    let messages = [
        Msg::Hello { proto: PROTO_VERSION },
        Msg::Batch { batch: 42, seed0: u64::MAX - 5, len: 16 },
        Msg::Shutdown,
        Msg::Ready { worker: 3, proto: PROTO_VERSION },
        Msg::PlanAccepted,
        Msg::PlanRejected { error: "invalid run plan: timeout must be positive".into() },
        Msg::Progress { batch: 9, done: 11 },
        Msg::BatchFailed { batch: 2, error: "run for seed 19 panicked: boom".into() },
    ];
    for msg in &messages {
        let back = decode_msg(&encode_msg(msg)).expect("decodes");
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }
}

/// Every error model and target variant crosses the wire.
#[test]
fn all_model_and_target_variants_roundtrip() {
    let models = [
        ErrorModel::Sigint,
        ErrorModel::Sigstop,
        ErrorModel::Register,
        ErrorModel::TextSegment,
        ErrorModel::Heap,
        ErrorModel::HeapSingle(ree_os::HeapTarget::Any),
        ErrorModel::HeapSingle(ree_os::HeapTarget::DataOnly),
        ErrorModel::HeapSingle(ree_os::HeapTarget::Region("stack".into())),
    ];
    let targets = [
        Target::App,
        Target::NamedApp("otis".into()),
        Target::Ftm,
        Target::ExecArmor,
        Target::Heartbeat,
        Target::AnyArmor,
    ];
    for model in &models {
        for target in &targets {
            let mut plan = RunPlan {
                scenario: ree_apps::Scenario::single_texture(0),
                target: target.clone(),
                model: model.clone(),
                timeout: SimTime::ZERO + SimDuration::from_secs(1),
                net_faults: Vec::new(),
            };
            plan.scenario.trace = false;
            let msg = Msg::Plan { plan: Box::new(plan.clone()) };
            let Msg::Plan { plan: back } = decode_msg(&encode_msg(&msg)).expect("decodes") else {
                panic!("wrong variant")
            };
            assert_eq!(format!("{plan:?}"), format!("{back:?}"));
        }
    }
}

/// Adversarial payloads: truncation, unknown tags, and trailing bytes
/// are typed errors, never panics.
#[test]
fn adversarial_payloads_yield_typed_errors() {
    // Unknown message tag.
    match decode_msg(&[0xEE]) {
        Err(WireError::BadTag { tag: 0xEE, .. }) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }
    // Empty payload.
    match decode_msg(&[]) {
        Err(WireError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    // Trailing garbage after a valid message.
    let mut bytes = encode_msg(&Msg::PlanAccepted);
    bytes.push(0x00);
    match decode_msg(&bytes) {
        Err(WireError::Trailing { .. }) => {}
        other => panic!("expected Trailing, got {other:?}"),
    }
    // Every truncation point of a complex message is a typed error.
    let full = encode_msg(&Msg::BatchDone { batch: 1, results: vec![rich_result()] });
    for cut in 0..full.len() {
        match decode_msg(&full[..cut]) {
            Err(_) => {}
            Ok(msg) => panic!("truncation at {cut} decoded as {msg:?}"),
        }
    }
    // Non-UTF-8 in a string field.
    let mut bad = encode_msg(&Msg::PlanRejected { error: "ascii".into() });
    let last = bad.len() - 1;
    bad[last] = 0xFF;
    match decode_msg(&bad) {
        Err(WireError::BadUtf8 { .. }) => {}
        other => panic!("expected BadUtf8, got {other:?}"),
    }
}
