//! Message encoding for the supervisor ↔ worker protocol.
//!
//! One [`Msg`] per frame (see [`crate::frame`]). The payload codec is
//! hand-rolled over the vendored `bytes` buffer types: big-endian
//! integers, `f64` as IEEE bit patterns (`to_bits`/`from_bits`, so
//! results survive the wire bit-exactly), strings as length-prefixed
//! UTF-8, `SimTime`/`SimDuration` as their microsecond counts
//! (lossless — they are `u64` microseconds internally). Decoding is
//! fully fallible: a malformed payload yields a typed [`WireError`],
//! never a panic, because the bytes crossed a process boundary and the
//! peer may have been chaos-injected.
//!
//! The codec round-trips the whole [`RunPlan`] (scenario, workload
//! parameters, jobs, optional interconnect topology, network-fault
//! plans) and the whole [`RunResult`] — the supervisor folds decoded
//! results through the exact same seed-ordered `Aggregate::accept`
//! fold a single-process campaign uses, which is what makes the
//! distributed aggregate byte-identical rather than merely close.

use bytes::{BufMut, BytesMut};
use ree_apps::{OtisParams, PipelineParams, Scenario, TextureParams, Verdict};
use ree_inject::netfault::{NetFault, NetFaultKind, NetFaultTrigger};
use ree_inject::{ErrorModel, FailureClass, RunPlan, RunResult, SystemFailure, Target};
use ree_net::{LinkId, LinkParams, LinkSpec, NodeId, Port, SwitchId, Topology};
use ree_os::{FieldKind, HeapHit, HeapTarget};
use ree_sift::{JobSpec, SiftConfig};
use ree_sim::{SimDuration, SimTime};

/// Protocol generation; a worker built from different sources refuses
/// the handshake instead of mis-decoding frames.
pub const PROTO_VERSION: u32 = 1;

/// A malformed payload (truncated, unknown tag, bad UTF-8, or bytes
/// left over after the message ended).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before `what` could be read.
    Truncated {
        /// Field being decoded when the payload ran out.
        what: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Enum being decoded.
        what: &'static str,
        /// The unrecognised tag.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Field being decoded.
        what: &'static str,
    },
    /// The message decoded cleanly but bytes remained.
    Trailing {
        /// Leftover byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "payload truncated reading {what}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// One protocol message. Supervisor → worker: `Hello`, `Plan`,
/// `Batch`, `Shutdown`. Worker → supervisor: `Ready`, `PlanAccepted`,
/// `PlanRejected`, `Progress` (the heartbeat), `BatchDone`,
/// `BatchFailed`.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Handshake: the supervisor announces its protocol generation.
    Hello {
        /// Supervisor's [`PROTO_VERSION`].
        proto: u32,
    },
    /// The campaign's plan; sent once per worker incarnation.
    Plan {
        /// The plan every batch of this campaign runs.
        plan: Box<RunPlan>,
    },
    /// One work item: run seeds `seed0 .. seed0 + len`.
    Batch {
        /// Batch id (dense, assigned in seed order).
        batch: u32,
        /// First seed of the batch.
        seed0: u64,
        /// Number of runs.
        len: u32,
    },
    /// Orderly shutdown request.
    Shutdown,
    /// Worker's handshake reply.
    Ready {
        /// Worker id (stable across respawns).
        worker: u32,
        /// Worker's [`PROTO_VERSION`].
        proto: u32,
    },
    /// The plan validated and booted.
    PlanAccepted,
    /// The plan failed validation; the error is supervisor-visible.
    PlanRejected {
        /// Rendered [`ree_inject::CampaignError`].
        error: String,
    },
    /// Per-run heartbeat: `done` of the current batch's runs finished.
    Progress {
        /// Batch being executed.
        batch: u32,
        /// Runs finished so far.
        done: u32,
    },
    /// A batch's results, in seed order.
    BatchDone {
        /// Batch id.
        batch: u32,
        /// One result per seed, in order.
        results: Vec<RunResult>,
    },
    /// The batch could not be executed (e.g. a run panicked).
    BatchFailed {
        /// Batch id.
        batch: u32,
        /// Rendered error.
        error: String,
    },
}

// ---------------------------------------------------------------- encode

fn put_u16(buf: &mut BytesMut, v: u16) {
    buf.put_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64(v.to_bits());
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64(v as u64);
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_duration(buf: &mut BytesMut, d: SimDuration) {
    buf.put_u64(d.as_micros());
}

fn put_time(buf: &mut BytesMut, t: SimTime) {
    buf.put_u64(t.as_micros());
}

fn put_opt<T>(buf: &mut BytesMut, v: &Option<T>, put: impl FnOnce(&mut BytesMut, &T)) {
    match v {
        None => buf.put_u8(0),
        Some(x) => {
            buf.put_u8(1);
            put(buf, x);
        }
    }
}

fn put_opt_f64(buf: &mut BytesMut, v: &Option<f64>) {
    put_opt(buf, v, |b, x| put_f64(b, *x));
}

fn put_sift(buf: &mut BytesMut, c: &SiftConfig) {
    put_duration(buf, c.ftm_daemon_hb_period);
    put_duration(buf, c.hb_ftm_period);
    put_duration(buf, c.daemon_probe_period);
    put_duration(buf, c.pi_check_period);
    put_duration(buf, c.app_block_timeout);
    put_duration(buf, c.mpi_init_timeout);
    put_bool(buf, c.race_fix_enabled);
    put_bool(buf, c.interrupt_driven_pi);
    put_bool(buf, c.precheck_assertions);
    put_bool(buf, c.assertions_enabled);
    put_opt(buf, &c.connect_timeout, |b, d| put_duration(b, *d));
}

fn put_texture(buf: &mut BytesMut, p: &TextureParams) {
    put_usize(buf, p.image_px);
    put_usize(buf, p.tile_px);
    put_usize(buf, p.clusters);
    buf.put_u32(p.images);
    put_duration(buf, p.load_time);
    put_duration(buf, p.filter_time);
    put_duration(buf, p.cluster_time);
    put_duration(buf, p.write_time);
    put_duration(buf, p.pi_period);
}

fn put_otis(buf: &mut BytesMut, p: &OtisParams) {
    put_usize(buf, p.frame_px);
    buf.put_u32(p.frames);
    put_duration(buf, p.load_time);
    put_duration(buf, p.atm_time);
    put_duration(buf, p.emis_time);
    put_duration(buf, p.compress_time);
    put_duration(buf, p.pi_period);
}

fn put_pipeline(buf: &mut BytesMut, p: &PipelineParams) {
    put_usize(buf, p.frame_px);
    buf.put_u32(p.frames);
    put_duration(buf, p.acquire_time);
    put_duration(buf, p.process_time);
    put_duration(buf, p.downlink_time);
    put_duration(buf, p.pi_period);
}

fn put_job(buf: &mut BytesMut, j: &JobSpec) {
    put_str(buf, &j.app);
    buf.put_u32(j.ranks);
    buf.put_u32(j.nodes.len() as u32);
    for &n in &j.nodes {
        put_u16(buf, n);
    }
    put_duration(buf, j.submit_at);
}

fn put_port(buf: &mut BytesMut, p: Port) {
    match p {
        Port::Node(NodeId(n)) => {
            buf.put_u8(0);
            put_u16(buf, n);
        }
        Port::Switch(SwitchId(s)) => {
            buf.put_u8(1);
            put_u16(buf, s);
        }
    }
}

fn put_topology(buf: &mut BytesMut, t: &Topology) {
    put_u16(buf, t.nodes());
    put_u16(buf, t.switches());
    put_duration(buf, t.loopback_latency());
    buf.put_u32(t.links().len() as u32);
    for link in t.links() {
        put_port(buf, link.from);
        put_port(buf, link.to);
        put_duration(buf, link.params.latency);
        put_duration(buf, link.params.jitter);
        put_opt(buf, &link.params.bandwidth_bytes_per_sec, |b, v| b.put_u64(*v));
        put_f64(buf, link.params.drop_probability);
        buf.put_u32(link.peer.0);
    }
}

fn put_scenario(buf: &mut BytesMut, s: &Scenario) {
    put_usize(buf, s.nodes);
    put_sift(buf, &s.sift);
    put_texture(buf, &s.texture);
    put_otis(buf, &s.otis);
    put_pipeline(buf, &s.pipeline);
    buf.put_u32(s.jobs.len() as u32);
    for j in &s.jobs {
        put_job(buf, j);
    }
    buf.put_u64(s.seed);
    put_bool(buf, s.trace);
    put_opt(buf, &s.topology, put_topology);
}

fn put_target(buf: &mut BytesMut, t: &Target) {
    match t {
        Target::App => buf.put_u8(0),
        Target::NamedApp(name) => {
            buf.put_u8(1);
            put_str(buf, name);
        }
        Target::Ftm => buf.put_u8(2),
        Target::ExecArmor => buf.put_u8(3),
        Target::Heartbeat => buf.put_u8(4),
        Target::AnyArmor => buf.put_u8(5),
    }
}

fn put_heap_target(buf: &mut BytesMut, t: &HeapTarget) {
    match t {
        HeapTarget::Any => buf.put_u8(0),
        HeapTarget::DataOnly => buf.put_u8(1),
        HeapTarget::Region(r) => {
            buf.put_u8(2);
            put_str(buf, r);
        }
    }
}

fn put_model(buf: &mut BytesMut, m: &ErrorModel) {
    match m {
        ErrorModel::Sigint => buf.put_u8(0),
        ErrorModel::Sigstop => buf.put_u8(1),
        ErrorModel::Register => buf.put_u8(2),
        ErrorModel::TextSegment => buf.put_u8(3),
        ErrorModel::Heap => buf.put_u8(4),
        ErrorModel::HeapSingle(t) => {
            buf.put_u8(5);
            put_heap_target(buf, t);
        }
    }
}

fn put_net_fault(buf: &mut BytesMut, f: &NetFault) {
    match &f.kind {
        NetFaultKind::Link { a, b } => {
            buf.put_u8(0);
            put_u16(buf, *a);
            put_u16(buf, *b);
        }
        NetFaultKind::Correlated { pairs } => {
            buf.put_u8(1);
            buf.put_u32(pairs.len() as u32);
            for &(a, b) in pairs {
                put_u16(buf, a);
                put_u16(buf, b);
            }
        }
        NetFaultKind::Partition { groups } => {
            buf.put_u8(2);
            buf.put_u32(groups.len() as u32);
            for g in groups {
                buf.put_u32(g.len() as u32);
                for &n in g {
                    put_u16(buf, n);
                }
            }
        }
    }
    match &f.trigger {
        NetFaultTrigger::At(t) => {
            buf.put_u8(0);
            put_time(buf, *t);
        }
        NetFaultTrigger::OnRecoveryStart { delay } => {
            buf.put_u8(1);
            put_duration(buf, *delay);
        }
    }
    put_duration(buf, f.duration);
}

fn put_plan(buf: &mut BytesMut, p: &RunPlan) {
    put_scenario(buf, &p.scenario);
    put_target(buf, &p.target);
    put_model(buf, &p.model);
    put_time(buf, p.timeout);
    buf.put_u32(p.net_faults.len() as u32);
    for f in &p.net_faults {
        put_net_fault(buf, f);
    }
}

fn put_failure_class(buf: &mut BytesMut, c: FailureClass) {
    buf.put_u8(match c {
        FailureClass::SegFault => 0,
        FailureClass::IllegalInstruction => 1,
        FailureClass::Hang => 2,
        FailureClass::Assertion => 3,
        FailureClass::InjectedSignal => 4,
        FailureClass::Other => 5,
    });
}

fn put_system_failure(buf: &mut BytesMut, s: SystemFailure) {
    buf.put_u8(match s {
        SystemFailure::UnableToRegisterDaemons => 0,
        SystemFailure::UnableToInstallExecArmors => 1,
        SystemFailure::UnableToStartApplication => 2,
        SystemFailure::UnableToRecognizeCompletion => 3,
        SystemFailure::AppDidNotComplete => 4,
    });
}

fn put_result(buf: &mut BytesMut, r: &RunResult) {
    buf.put_u64(r.seed);
    buf.put_u32(r.injections);
    put_opt(buf, &r.induced, |b, c| put_failure_class(b, *c));
    put_bool(buf, r.completed);
    put_opt(buf, &r.system_failure, |b, s| put_system_failure(b, *s));
    buf.put_u8(match r.output {
        Verdict::Correct => 0,
        Verdict::Incorrect => 1,
        Verdict::Missing => 2,
    });
    put_opt_f64(buf, &r.perceived);
    put_opt_f64(buf, &r.actual);
    buf.put_u32(r.perceived_all.len() as u32);
    for v in &r.perceived_all {
        put_opt_f64(buf, v);
    }
    buf.put_u32(r.actual_all.len() as u32);
    for v in &r.actual_all {
        put_opt_f64(buf, v);
    }
    buf.put_u64(r.restarts);
    buf.put_u32(r.recovery_times.len() as u32);
    for &v in &r.recovery_times {
        put_f64(buf, v);
    }
    put_bool(buf, r.correlated);
    put_bool(buf, r.assertion_fired);
    put_opt(buf, &r.heap_hit, |b, h| {
        put_str(b, &h.region);
        put_str(b, &h.field);
        b.put_u8(match h.kind {
            FieldKind::Pointer => 0,
            FieldKind::Data => 1,
        });
    });
    buf.put_u32(r.net_faults_applied);
}

/// Encodes `msg` and wraps it in a wire frame — the common send path.
pub fn encode_frame_msg(msg: &Msg) -> Vec<u8> {
    crate::frame::encode_frame(&encode_msg(msg))
}

/// Encodes `msg` into a frame payload.
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    match msg {
        Msg::Hello { proto } => {
            buf.put_u8(0);
            buf.put_u32(*proto);
        }
        Msg::Plan { plan } => {
            buf.put_u8(1);
            put_plan(&mut buf, plan);
        }
        Msg::Batch { batch, seed0, len } => {
            buf.put_u8(2);
            buf.put_u32(*batch);
            buf.put_u64(*seed0);
            buf.put_u32(*len);
        }
        Msg::Shutdown => buf.put_u8(3),
        Msg::Ready { worker, proto } => {
            buf.put_u8(4);
            buf.put_u32(*worker);
            buf.put_u32(*proto);
        }
        Msg::PlanAccepted => buf.put_u8(5),
        Msg::PlanRejected { error } => {
            buf.put_u8(6);
            put_str(&mut buf, error);
        }
        Msg::Progress { batch, done } => {
            buf.put_u8(7);
            buf.put_u32(*batch);
            buf.put_u32(*done);
        }
        Msg::BatchDone { batch, results } => {
            buf.put_u8(8);
            buf.put_u32(*batch);
            buf.put_u32(results.len() as u32);
            for r in results {
                put_result(&mut buf, r);
            }
        }
        Msg::BatchFailed { batch, error } => {
            buf.put_u8(9);
            buf.put_u32(*batch);
            put_str(&mut buf, error);
        }
    }
    buf.to_vec()
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated { what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.bytes(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        Ok(self.u64(what)? as usize)
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        Ok(self.u8(what)? != 0)
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let raw = self.bytes(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    fn duration(&mut self, what: &'static str) -> Result<SimDuration, WireError> {
        Ok(SimDuration::from_micros(self.u64(what)?))
    }

    fn time(&mut self, what: &'static str) -> Result<SimTime, WireError> {
        Ok(SimTime::from_micros(self.u64(what)?))
    }

    fn opt<T>(
        &mut self,
        what: &'static str,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.u8(what)? {
            0 => Ok(None),
            _ => Ok(Some(read(self)?)),
        }
    }

    fn vec<T>(
        &mut self,
        what: &'static str,
        mut read: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let n = self.u32(what)? as usize;
        // Guard against a corrupted count reserving gigabytes: the cap
        // only bounds the pre-allocation, pushes still fail on EOF.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

fn read_sift(r: &mut Reader<'_>) -> Result<SiftConfig, WireError> {
    Ok(SiftConfig {
        ftm_daemon_hb_period: r.duration("sift.ftm_daemon_hb_period")?,
        hb_ftm_period: r.duration("sift.hb_ftm_period")?,
        daemon_probe_period: r.duration("sift.daemon_probe_period")?,
        pi_check_period: r.duration("sift.pi_check_period")?,
        app_block_timeout: r.duration("sift.app_block_timeout")?,
        mpi_init_timeout: r.duration("sift.mpi_init_timeout")?,
        race_fix_enabled: r.bool("sift.race_fix_enabled")?,
        interrupt_driven_pi: r.bool("sift.interrupt_driven_pi")?,
        precheck_assertions: r.bool("sift.precheck_assertions")?,
        assertions_enabled: r.bool("sift.assertions_enabled")?,
        connect_timeout: r.opt("sift.connect_timeout", |r| r.duration("sift.connect_timeout"))?,
    })
}

fn read_texture(r: &mut Reader<'_>) -> Result<TextureParams, WireError> {
    Ok(TextureParams {
        image_px: r.usize("texture.image_px")?,
        tile_px: r.usize("texture.tile_px")?,
        clusters: r.usize("texture.clusters")?,
        images: r.u32("texture.images")?,
        load_time: r.duration("texture.load_time")?,
        filter_time: r.duration("texture.filter_time")?,
        cluster_time: r.duration("texture.cluster_time")?,
        write_time: r.duration("texture.write_time")?,
        pi_period: r.duration("texture.pi_period")?,
    })
}

fn read_otis(r: &mut Reader<'_>) -> Result<OtisParams, WireError> {
    Ok(OtisParams {
        frame_px: r.usize("otis.frame_px")?,
        frames: r.u32("otis.frames")?,
        load_time: r.duration("otis.load_time")?,
        atm_time: r.duration("otis.atm_time")?,
        emis_time: r.duration("otis.emis_time")?,
        compress_time: r.duration("otis.compress_time")?,
        pi_period: r.duration("otis.pi_period")?,
    })
}

fn read_pipeline(r: &mut Reader<'_>) -> Result<PipelineParams, WireError> {
    Ok(PipelineParams {
        frame_px: r.usize("pipeline.frame_px")?,
        frames: r.u32("pipeline.frames")?,
        acquire_time: r.duration("pipeline.acquire_time")?,
        process_time: r.duration("pipeline.process_time")?,
        downlink_time: r.duration("pipeline.downlink_time")?,
        pi_period: r.duration("pipeline.pi_period")?,
    })
}

fn read_job(r: &mut Reader<'_>) -> Result<JobSpec, WireError> {
    Ok(JobSpec {
        app: r.string("job.app")?,
        ranks: r.u32("job.ranks")?,
        nodes: r.vec("job.nodes", |r| r.u16("job.node"))?,
        submit_at: r.duration("job.submit_at")?,
    })
}

fn read_port(r: &mut Reader<'_>) -> Result<Port, WireError> {
    match r.u8("port.tag")? {
        0 => Ok(Port::Node(NodeId(r.u16("port.node")?))),
        1 => Ok(Port::Switch(SwitchId(r.u16("port.switch")?))),
        tag => Err(WireError::BadTag { what: "port", tag }),
    }
}

fn read_topology(r: &mut Reader<'_>) -> Result<Topology, WireError> {
    let nodes = r.u16("topology.nodes")?;
    let switches = r.u16("topology.switches")?;
    let loopback = r.duration("topology.loopback_latency")?;
    let links = r.vec("topology.links", |r| {
        Ok(LinkSpec {
            from: read_port(r)?,
            to: read_port(r)?,
            params: LinkParams {
                latency: r.duration("link.latency")?,
                jitter: r.duration("link.jitter")?,
                bandwidth_bytes_per_sec: r.opt("link.bandwidth", |r| r.u64("link.bandwidth"))?,
                drop_probability: r.f64("link.drop_probability")?,
            },
            peer: LinkId(r.u32("link.peer")?),
        })
    })?;
    Ok(Topology::from_parts(nodes, switches, loopback, links))
}

fn read_scenario(r: &mut Reader<'_>) -> Result<Scenario, WireError> {
    Ok(Scenario {
        nodes: r.usize("scenario.nodes")?,
        sift: read_sift(r)?,
        texture: read_texture(r)?,
        otis: read_otis(r)?,
        pipeline: read_pipeline(r)?,
        jobs: r.vec("scenario.jobs", read_job)?,
        seed: r.u64("scenario.seed")?,
        trace: r.bool("scenario.trace")?,
        topology: r.opt("scenario.topology", read_topology)?,
    })
}

fn read_target(r: &mut Reader<'_>) -> Result<Target, WireError> {
    match r.u8("target.tag")? {
        0 => Ok(Target::App),
        1 => Ok(Target::NamedApp(r.string("target.app")?)),
        2 => Ok(Target::Ftm),
        3 => Ok(Target::ExecArmor),
        4 => Ok(Target::Heartbeat),
        5 => Ok(Target::AnyArmor),
        tag => Err(WireError::BadTag { what: "target", tag }),
    }
}

fn read_heap_target(r: &mut Reader<'_>) -> Result<HeapTarget, WireError> {
    match r.u8("heap-target.tag")? {
        0 => Ok(HeapTarget::Any),
        1 => Ok(HeapTarget::DataOnly),
        2 => Ok(HeapTarget::Region(r.string("heap-target.region")?)),
        tag => Err(WireError::BadTag { what: "heap-target", tag }),
    }
}

fn read_model(r: &mut Reader<'_>) -> Result<ErrorModel, WireError> {
    match r.u8("model.tag")? {
        0 => Ok(ErrorModel::Sigint),
        1 => Ok(ErrorModel::Sigstop),
        2 => Ok(ErrorModel::Register),
        3 => Ok(ErrorModel::TextSegment),
        4 => Ok(ErrorModel::Heap),
        5 => Ok(ErrorModel::HeapSingle(read_heap_target(r)?)),
        tag => Err(WireError::BadTag { what: "error-model", tag }),
    }
}

fn read_net_fault(r: &mut Reader<'_>) -> Result<NetFault, WireError> {
    let kind = match r.u8("net-fault.kind")? {
        0 => NetFaultKind::Link { a: r.u16("net-fault.a")?, b: r.u16("net-fault.b")? },
        1 => NetFaultKind::Correlated {
            pairs: r.vec("net-fault.pairs", |r| {
                Ok((r.u16("net-fault.pair.a")?, r.u16("net-fault.pair.b")?))
            })?,
        },
        2 => NetFaultKind::Partition {
            groups: r.vec("net-fault.groups", |r| {
                r.vec("net-fault.group", |r| r.u16("net-fault.node"))
            })?,
        },
        tag => return Err(WireError::BadTag { what: "net-fault kind", tag }),
    };
    let trigger = match r.u8("net-fault.trigger")? {
        0 => NetFaultTrigger::At(r.time("net-fault.at")?),
        1 => NetFaultTrigger::OnRecoveryStart { delay: r.duration("net-fault.delay")? },
        tag => return Err(WireError::BadTag { what: "net-fault trigger", tag }),
    };
    Ok(NetFault { kind, trigger, duration: r.duration("net-fault.duration")? })
}

fn read_plan(r: &mut Reader<'_>) -> Result<RunPlan, WireError> {
    Ok(RunPlan {
        scenario: read_scenario(r)?,
        target: read_target(r)?,
        model: read_model(r)?,
        timeout: r.time("plan.timeout")?,
        net_faults: r.vec("plan.net_faults", read_net_fault)?,
    })
}

fn read_failure_class(r: &mut Reader<'_>) -> Result<FailureClass, WireError> {
    match r.u8("failure-class")? {
        0 => Ok(FailureClass::SegFault),
        1 => Ok(FailureClass::IllegalInstruction),
        2 => Ok(FailureClass::Hang),
        3 => Ok(FailureClass::Assertion),
        4 => Ok(FailureClass::InjectedSignal),
        5 => Ok(FailureClass::Other),
        tag => Err(WireError::BadTag { what: "failure-class", tag }),
    }
}

fn read_system_failure(r: &mut Reader<'_>) -> Result<SystemFailure, WireError> {
    match r.u8("system-failure")? {
        0 => Ok(SystemFailure::UnableToRegisterDaemons),
        1 => Ok(SystemFailure::UnableToInstallExecArmors),
        2 => Ok(SystemFailure::UnableToStartApplication),
        3 => Ok(SystemFailure::UnableToRecognizeCompletion),
        4 => Ok(SystemFailure::AppDidNotComplete),
        tag => Err(WireError::BadTag { what: "system-failure", tag }),
    }
}

fn read_result(r: &mut Reader<'_>) -> Result<RunResult, WireError> {
    Ok(RunResult {
        seed: r.u64("result.seed")?,
        injections: r.u32("result.injections")?,
        induced: r.opt("result.induced", read_failure_class)?,
        completed: r.bool("result.completed")?,
        system_failure: r.opt("result.system_failure", read_system_failure)?,
        output: match r.u8("result.output")? {
            0 => Verdict::Correct,
            1 => Verdict::Incorrect,
            2 => Verdict::Missing,
            tag => return Err(WireError::BadTag { what: "verdict", tag }),
        },
        perceived: r.opt("result.perceived", |r| r.f64("result.perceived"))?,
        actual: r.opt("result.actual", |r| r.f64("result.actual"))?,
        perceived_all: r
            .vec("result.perceived_all", |r| r.opt("result.perceived_all", |r| r.f64("slot")))?,
        actual_all: r
            .vec("result.actual_all", |r| r.opt("result.actual_all", |r| r.f64("slot")))?,
        restarts: r.u64("result.restarts")?,
        recovery_times: r.vec("result.recovery_times", |r| r.f64("result.recovery_time"))?,
        correlated: r.bool("result.correlated")?,
        assertion_fired: r.bool("result.assertion_fired")?,
        heap_hit: r.opt("result.heap_hit", |r| {
            Ok(HeapHit {
                region: r.string("heap-hit.region")?,
                field: r.string("heap-hit.field")?,
                kind: match r.u8("heap-hit.kind")? {
                    0 => FieldKind::Pointer,
                    1 => FieldKind::Data,
                    tag => return Err(WireError::BadTag { what: "field-kind", tag }),
                },
            })
        })?,
        net_faults_applied: r.u32("result.net_faults_applied")?,
    })
}

/// Decodes one message from a frame payload, requiring the payload to
/// be consumed exactly.
pub fn decode_msg(payload: &[u8]) -> Result<Msg, WireError> {
    let mut r = Reader { buf: payload };
    let msg = match r.u8("message tag")? {
        0 => Msg::Hello { proto: r.u32("hello.proto")? },
        1 => Msg::Plan { plan: Box::new(read_plan(&mut r)?) },
        2 => Msg::Batch {
            batch: r.u32("batch.id")?,
            seed0: r.u64("batch.seed0")?,
            len: r.u32("batch.len")?,
        },
        3 => Msg::Shutdown,
        4 => Msg::Ready { worker: r.u32("ready.worker")?, proto: r.u32("ready.proto")? },
        5 => Msg::PlanAccepted,
        6 => Msg::PlanRejected { error: r.string("plan-rejected.error")? },
        7 => Msg::Progress { batch: r.u32("progress.batch")?, done: r.u32("progress.done")? },
        8 => Msg::BatchDone {
            batch: r.u32("batch-done.id")?,
            results: r.vec("batch-done.results", read_result)?,
        },
        9 => Msg::BatchFailed {
            batch: r.u32("batch-failed.id")?,
            error: r.string("batch-failed.error")?,
        },
        tag => return Err(WireError::BadTag { what: "message", tag }),
    };
    if !r.buf.is_empty() {
        return Err(WireError::Trailing { extra: r.buf.len() });
    }
    Ok(msg)
}
