//! The supervisor: spawns the worker pool, shards the seed range into
//! batches, and folds results **in seed order** — the same
//! `Aggregate::accept` fold a single-process campaign uses, which is
//! why the distributed aggregate is byte-identical for any worker
//! count and any failure pattern.
//!
//! Supervision model (docs/DISTRIBUTED.md has the full state machine):
//!
//! - **Heartbeats**: every completed run emits a `Progress` frame; a
//!   worker that sends nothing for `stall_timeout` is declared hung.
//! - **Deadlines**: a batch that outlives `batch_deadline` is taken
//!   from its worker regardless of heartbeats.
//! - **Retry/backoff**: a lost batch is re-queued with capped
//!   exponential backoff; after `max_batch_retries` lost attempts the
//!   supervisor executes it in-process (degradation, not divergence).
//! - **Quarantine**: a worker failing twice is quarantined — killed
//!   and never respawned; its work is redistributed.
//! - **Fallback**: losing *every* worker flips the sweep to in-process
//!   execution with a warning; the aggregate is still byte-identical.
//! - **Graceful shutdown**: SIGINT/SIGTERM stops dispatch, drains
//!   in-flight batches (bounded by one `batch_deadline`), kills the
//!   pool, and reports the partial seed-prefix aggregate.

use crate::chaos::ChaosPlan;
use crate::frame::{Decoder, FrameError};
use crate::signal;
use crate::wire::{decode_msg, encode_frame_msg, Msg, WireError, PROTO_VERSION};
use ree_inject::{execute_warm, Aggregate, CampaignError, RunPlan, RunResult};
use ree_stats::ShardLedger;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Configuration for one distributed sweep.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Worker-process count (clamped to the batch count).
    pub workers: usize,
    /// Runs per batch (the sharding granularity).
    pub batch: u32,
    /// Chaos to arm, if any.
    pub chaos: Option<ChaosPlan>,
    /// A busy worker sending no frames for this long is declared hung.
    pub stall_timeout: Duration,
    /// Absolute wall-clock budget for one dispatched batch.
    pub batch_deadline: Duration,
    /// Lost attempts before a batch is executed in-process instead.
    pub max_batch_retries: u32,
    /// First re-queue delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the re-queue delay.
    pub backoff_cap: Duration,
    /// Worker failures before quarantine.
    pub quarantine_after: u32,
    /// Worker command (`program` + args). `None` spawns the current
    /// executable — which must call [`crate::run_worker_if_spawned`]
    /// early in `main`.
    pub worker_cmd: Option<Vec<String>>,
}

impl DistOptions {
    /// Defaults for `workers` workers: batches of 16, 5 s stall
    /// timeout, 120 s batch deadline, 3 retries with 50 ms → 2 s
    /// backoff, quarantine after 2 failures, no chaos.
    pub fn new(workers: usize) -> DistOptions {
        DistOptions {
            workers: workers.max(1),
            batch: 16,
            chaos: None,
            stall_timeout: Duration::from_secs(5),
            batch_deadline: Duration::from_secs(120),
            max_batch_retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            quarantine_after: 2,
            worker_cmd: None,
        }
    }
}

/// Why a distributed sweep could not run at all. (Failures *during* a
/// sweep are handled — re-queued, quarantined, or degraded to
/// in-process execution — and reported in the [`DistReport`] instead.)
#[derive(Clone, Debug, PartialEq)]
pub enum DistError {
    /// The plan failed validation (locally or on a worker).
    Plan(CampaignError),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Plan(e) => write!(f, "distributed sweep rejected: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

/// What a distributed sweep produced.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// The seed-ordered aggregate — byte-identical to
    /// `Campaign::aggregate` over the folded prefix.
    pub aggregate: Aggregate,
    /// Per-shard accounting (worker batches, failures, retries,
    /// fallback runs).
    pub ledger: ShardLedger,
    /// Runs requested.
    pub runs_total: u64,
    /// Runs folded into [`DistReport::aggregate`] (less than
    /// `runs_total` only when interrupted).
    pub runs_folded: u64,
    /// Was the sweep interrupted (SIGINT/SIGTERM)?
    pub interrupted: bool,
    /// Did any run execute in-process after worker loss or retry
    /// exhaustion?
    pub fell_back: bool,
    /// Human-readable supervision warnings (worker failures,
    /// quarantines, fallback) for the operational report.
    pub warnings: Vec<String>,
}

impl DistReport {
    /// True when every requested run was folded.
    pub fn completed(&self) -> bool {
        self.runs_folded == self.runs_total
    }
}

// ------------------------------------------------------------ batches

#[derive(Clone, Copy, Debug)]
struct BatchSpec {
    seed0: u64,
    len: u32,
}

fn shard(runs: u32, seed0: u64, batch: u32) -> Vec<BatchSpec> {
    let batch = batch.max(1);
    let mut out = Vec::new();
    let mut done = 0u32;
    while done < runs {
        let len = batch.min(runs - done);
        out.push(BatchSpec { seed0: seed0 + u64::from(done), len });
        done += len;
    }
    out
}

// ------------------------------------------------------------ workers

#[derive(Debug)]
enum Event {
    Frame(Msg),
    Corrupt(FrameError),
    Undecodable(WireError),
    Eof,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkerState {
    /// Spawned; waiting for `Ready` then `PlanAccepted`.
    Starting,
    /// Handshake complete; no batch in flight.
    Idle,
    /// Executing a batch.
    Busy,
    /// Process gone; may be respawned.
    Dead,
    /// Failed too often; never respawned.
    Quarantined,
}

struct Worker {
    state: WorkerState,
    incarnation: u32,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Batch id in flight (`state == Busy`).
    batch: Option<u32>,
    dispatched_at: Instant,
    last_frame: Instant,
    failures: u32,
}

/// Runs `runs` seeded executions of `plan` across a supervised worker
/// pool and folds the results in seed order.
///
/// The returned aggregate is **byte-identical** to
/// `Campaign::new(plan).runs(runs).seed(seed0).aggregate()` whenever
/// the sweep completes — for any worker count, any chaos mode, and any
/// real failure pattern — because results cross the wire bit-exactly
/// and fold through the identical accumulator in the identical order.
pub fn distribute(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    options: &DistOptions,
) -> Result<DistReport, DistError> {
    plan.validate().map_err(DistError::Plan)?;
    let batches = shard(runs, seed0, options.batch);
    let workers = options.workers.clamp(1, batches.len().max(1));
    let mut sup = Supervisor::new(plan, batches, workers, options);
    sup.run()
}

struct Supervisor<'p> {
    plan: &'p RunPlan,
    options: &'p DistOptions,
    batches: Vec<BatchSpec>,
    plan_frame: Vec<u8>,
    hello_frame: Vec<u8>,
    workers: Vec<Worker>,
    events: mpsc::Receiver<(u32, u32, Event)>,
    events_tx: mpsc::Sender<(u32, u32, Event)>,
    /// Batches ready to dispatch now.
    pending: VecDeque<u32>,
    /// Batches in backoff: `(eligible_at, batch)`.
    delayed: Vec<(Instant, u32)>,
    /// Lost attempts per batch.
    attempts: Vec<u32>,
    /// Completed batches awaiting their turn in the seed-order fold.
    completed: BTreeMap<u32, Vec<RunResult>>,
    next_fold: u32,
    aggregate: Aggregate,
    runs_folded: u64,
    ledger: ShardLedger,
    warnings: Vec<String>,
    /// Interrupt seen: stop dispatching, drain in-flight batches only.
    draining: bool,
    fell_back: bool,
    /// Warm boot shared by every in-process fallback run.
    fallback_boot: Option<(ree_inject::RunGeometry, ree_apps::BootSnapshot)>,
    /// Fatal plan rejection reported by a worker.
    rejected: Option<CampaignError>,
}

impl<'p> Supervisor<'p> {
    fn new(
        plan: &'p RunPlan,
        batches: Vec<BatchSpec>,
        workers: usize,
        options: &'p DistOptions,
    ) -> Supervisor<'p> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        Supervisor {
            plan,
            options,
            plan_frame: encode_frame_msg(&Msg::Plan { plan: Box::new(plan.clone()) }),
            hello_frame: encode_frame_msg(&Msg::Hello { proto: PROTO_VERSION }),
            attempts: vec![0; batches.len()],
            pending: (0..batches.len() as u32).collect(),
            batches,
            workers: (0..workers)
                .map(|_| Worker {
                    state: WorkerState::Dead,
                    incarnation: 0,
                    child: None,
                    stdin: None,
                    batch: None,
                    dispatched_at: now,
                    last_frame: now,
                    failures: 0,
                })
                .collect(),
            events: rx,
            events_tx: tx,
            delayed: Vec::new(),
            completed: BTreeMap::new(),
            next_fold: 0,
            aggregate: Aggregate::default(),
            runs_folded: 0,
            ledger: ShardLedger::new(workers),
            warnings: Vec::new(),
            draining: false,
            fell_back: false,
            fallback_boot: None,
            rejected: None,
        }
    }

    fn run(&mut self) -> Result<DistReport, DistError> {
        signal::install_interrupt_handler();
        for w in 0..self.workers.len() {
            self.spawn(w as u32, 0);
        }
        let total_batches = self.batches.len() as u32;
        let mut interrupted = false;
        let mut drain_deadline: Option<Instant> = None;
        while self.next_fold < total_batches {
            let now = Instant::now();
            if !interrupted && signal::interrupted() {
                interrupted = true;
                self.draining = true;
                drain_deadline = Some(now + self.options.batch_deadline);
                self.warnings.push("interrupt received: draining in-flight batches".into());
            }
            if interrupted {
                let busy = self.workers.iter().any(|w| w.state == WorkerState::Busy);
                let expired = drain_deadline.is_some_and(|d| now >= d);
                if !busy || expired {
                    break;
                }
            } else {
                // Promote batches whose backoff has elapsed.
                let mut i = 0;
                while i < self.delayed.len() {
                    if self.delayed[i].0 <= now {
                        let (_, b) = self.delayed.swap_remove(i);
                        self.pending.push_back(b);
                    } else {
                        i += 1;
                    }
                }
                self.dispatch_all();
                if let Some(e) = self.rejected.take() {
                    self.shutdown_pool();
                    return Err(DistError::Plan(e));
                }
                // Worker pool gone for good → in-process fallback.
                if self.live_workers() == 0 {
                    self.fallback_remaining();
                    continue;
                }
                // Everything outstanding is in backoff with no idle
                // worker able to take it sooner: just wait it out.
            }
            self.check_timeouts(now);
            match self.events.recv_timeout(Duration::from_millis(20)) {
                Ok((worker, incarnation, event)) => self.handle(worker, incarnation, event),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a tx"),
            }
            self.fold_ready();
        }
        self.shutdown_pool();
        self.fold_ready();
        Ok(DistReport {
            aggregate: std::mem::take(&mut self.aggregate),
            ledger: std::mem::take(&mut self.ledger),
            runs_total: self.batches.iter().map(|b| u64::from(b.len)).sum(),
            runs_folded: self.runs_folded,
            interrupted,
            fell_back: self.fell_back,
            warnings: std::mem::take(&mut self.warnings),
        })
    }

    fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| {
                matches!(w.state, WorkerState::Starting | WorkerState::Idle | WorkerState::Busy)
            })
            .count()
    }

    // ---------------------------------------------------- lifecycle

    fn spawn(&mut self, worker: u32, incarnation: u32) {
        let cmd = match &self.options.worker_cmd {
            Some(cmd) => cmd.clone(),
            None => match std::env::current_exe() {
                Ok(exe) => vec![exe.to_string_lossy().into_owned()],
                Err(e) => {
                    self.warnings.push(format!("cannot resolve worker executable: {e}"));
                    self.fail_worker(worker, "spawn failed");
                    return;
                }
            },
        };
        let mut command = Command::new(&cmd[0]);
        command
            .args(&cmd[1..])
            .env(crate::worker::ENV_WORKER_ID, worker.to_string())
            .env(crate::worker::ENV_INCARNATION, incarnation.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(chaos) = self.options.chaos {
            command.env(crate::worker::ENV_CHAOS, chaos.to_env());
        }
        let mut child = match command.spawn() {
            Ok(c) => c,
            Err(e) => {
                self.warnings.push(format!("worker w{worker} spawn failed: {e}"));
                self.fail_worker(worker, "spawn failed");
                return;
            }
        };
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let tx = self.events_tx.clone();
        std::thread::spawn(move || {
            let mut decoder = Decoder::new();
            let mut stdout = stdout;
            let mut chunk = [0u8; 64 * 1024];
            loop {
                let n = stdout.read(&mut chunk).unwrap_or(0);
                if n == 0 {
                    let _ = tx.send((worker, incarnation, Event::Eof));
                    return;
                }
                decoder.feed(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => {
                            let event = match decode_msg(&payload) {
                                Ok(msg) => Event::Frame(msg),
                                Err(e) => Event::Undecodable(e),
                            };
                            if tx.send((worker, incarnation, event)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            if tx.send((worker, incarnation, Event::Corrupt(e))).is_err() {
                                return;
                            }
                        }
                    }
                }
            }
        });
        let hello_ok = stdin.write_all(&self.hello_frame).and_then(|()| stdin.flush()).is_ok();
        let w = &mut self.workers[worker as usize];
        w.state = WorkerState::Starting;
        w.incarnation = incarnation;
        w.child = Some(child);
        w.stdin = Some(stdin);
        w.batch = None;
        w.last_frame = Instant::now();
        if !hello_ok {
            self.fail_worker(worker, "handshake write failed");
        }
    }

    /// Kills and reaps a worker's process, re-queues its in-flight
    /// batch, counts the failure, and either respawns or quarantines.
    fn fail_worker(&mut self, worker: u32, why: &str) {
        let idx = worker as usize;
        let incarnation = self.workers[idx].incarnation;
        self.kill(worker);
        self.ledger.record_failure(idx);
        self.workers[idx].failures += 1;
        let failures = self.workers[idx].failures;
        self.warnings.push(format!("worker w{worker} failed ({why}); failure #{failures}"));
        if let Some(batch) = self.workers[idx].batch.take() {
            self.requeue(batch);
        }
        if failures >= self.options.quarantine_after {
            self.workers[idx].state = WorkerState::Quarantined;
            self.ledger.quarantine(idx);
            self.warnings.push(format!("worker w{worker} quarantined"));
        } else if !self.draining {
            self.spawn(worker, incarnation + 1);
        }
    }

    fn kill(&mut self, worker: u32) {
        let w = &mut self.workers[worker as usize];
        w.stdin = None; // closes the pipe
        if let Some(mut child) = w.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        w.state = WorkerState::Dead;
    }

    fn shutdown_pool(&mut self) {
        let shutdown = encode_frame_msg(&Msg::Shutdown);
        for w in &mut self.workers {
            if let Some(stdin) = &mut w.stdin {
                let _ = stdin.write_all(&shutdown).and_then(|()| stdin.flush());
            }
        }
        for worker in 0..self.workers.len() as u32 {
            self.kill(worker);
        }
    }

    // ---------------------------------------------------- scheduling

    fn requeue(&mut self, batch: u32) {
        self.ledger.record_requeue();
        let attempts = {
            self.attempts[batch as usize] += 1;
            self.attempts[batch as usize]
        };
        if attempts > self.options.max_batch_retries {
            self.warnings
                .push(format!("batch {batch} exhausted its retry budget; running in-process"));
            self.run_in_process(batch);
            return;
        }
        let exp = attempts.saturating_sub(1).min(16);
        let delay = self
            .options
            .backoff_base
            .checked_mul(1u32 << exp)
            .unwrap_or(self.options.backoff_cap)
            .min(self.options.backoff_cap);
        self.delayed.push((Instant::now() + delay, batch));
    }

    fn dispatch_all(&mut self) {
        while !self.draining && !self.pending.is_empty() {
            let Some(idx) = self.workers.iter().position(|w| w.state == WorkerState::Idle) else {
                return;
            };
            let batch = self.pending.pop_front().expect("checked non-empty");
            let spec = self.batches[batch as usize];
            let frame = encode_frame_msg(&Msg::Batch { batch, seed0: spec.seed0, len: spec.len });
            let w = &mut self.workers[idx];
            let ok = w
                .stdin
                .as_mut()
                .map(|s| s.write_all(&frame).and_then(|()| s.flush()).is_ok())
                .unwrap_or(false);
            if ok {
                w.state = WorkerState::Busy;
                w.batch = Some(batch);
                w.dispatched_at = Instant::now();
                w.last_frame = w.dispatched_at;
            } else {
                self.pending.push_front(batch);
                self.fail_worker(idx as u32, "batch write failed");
            }
        }
    }

    fn check_timeouts(&mut self, now: Instant) {
        for worker in 0..self.workers.len() as u32 {
            let w = &self.workers[worker as usize];
            if w.state != WorkerState::Busy && w.state != WorkerState::Starting {
                continue;
            }
            let stalled = now.duration_since(w.last_frame) > self.options.stall_timeout;
            let overdue = w.state == WorkerState::Busy
                && now.duration_since(w.dispatched_at) > self.options.batch_deadline;
            if stalled || overdue {
                self.fail_worker(
                    worker,
                    if stalled { "heartbeat stall" } else { "batch deadline" },
                );
            }
        }
    }

    // ---------------------------------------------------- events

    fn handle(&mut self, worker: u32, incarnation: u32, event: Event) {
        let idx = worker as usize;
        // A dead incarnation's reader thread may still deliver its EOF
        // (or trailing frames) after a respawn; ignore stale sources.
        if incarnation != self.workers[idx].incarnation
            || matches!(self.workers[idx].state, WorkerState::Dead | WorkerState::Quarantined)
        {
            return;
        }
        self.workers[idx].last_frame = Instant::now();
        match event {
            Event::Frame(Msg::Ready { worker: claimed, proto }) => {
                if claimed != worker || proto != PROTO_VERSION {
                    self.fail_worker(worker, "handshake mismatch");
                    return;
                }
                let plan_frame = self.plan_frame.clone();
                let w = &mut self.workers[idx];
                let ok = w
                    .stdin
                    .as_mut()
                    .map(|s| s.write_all(&plan_frame).and_then(|()| s.flush()).is_ok())
                    .unwrap_or(false);
                if !ok {
                    self.fail_worker(worker, "plan write failed");
                }
            }
            Event::Frame(Msg::PlanAccepted) => {
                self.workers[idx].state = WorkerState::Idle;
                self.dispatch_all();
            }
            Event::Frame(Msg::PlanRejected { error }) => {
                // The plan validated locally; a worker rejecting it is
                // fatal for the sweep, not for the worker.
                self.rejected = Some(CampaignError::InvalidPlan(error));
            }
            Event::Frame(Msg::Progress { .. }) => {} // heartbeat: timestamp updated above
            Event::Frame(Msg::BatchDone { batch, results }) => {
                let w = &mut self.workers[idx];
                if w.batch != Some(batch) {
                    return; // stale completion for a re-queued batch
                }
                let spec = self.batches[batch as usize];
                if results.len() != spec.len as usize
                    || results.iter().zip(0..).any(|(r, i)| r.seed != spec.seed0 + i)
                {
                    self.fail_worker(worker, "batch results malformed");
                    return;
                }
                let wall = w.dispatched_at.elapsed().as_secs_f64();
                w.state = WorkerState::Idle;
                w.batch = None;
                self.ledger.record_batch(idx, u64::from(spec.len), wall);
                self.completed.insert(batch, results);
                self.dispatch_all();
            }
            Event::Frame(Msg::BatchFailed { batch, error }) => {
                let w = &mut self.workers[idx];
                if w.batch != Some(batch) {
                    return;
                }
                // The worker survived — it reported instead of dying —
                // but the batch is lost and the worker is suspect.
                w.state = WorkerState::Idle;
                w.batch = None;
                self.ledger.record_failure(idx);
                self.workers[idx].failures += 1;
                let failures = self.workers[idx].failures;
                self.warnings.push(format!("worker w{worker} batch {batch} failed: {error}"));
                self.requeue(batch);
                if failures >= self.options.quarantine_after {
                    self.kill(worker);
                    self.workers[idx].state = WorkerState::Quarantined;
                    self.ledger.quarantine(idx);
                    self.warnings.push(format!("worker w{worker} quarantined"));
                }
            }
            Event::Frame(_) => {} // supervisor-bound protocol only
            Event::Corrupt(e) => self.fail_worker(worker, &format!("corrupt frame: {e}")),
            Event::Undecodable(e) => self.fail_worker(worker, &format!("bad message: {e}")),
            Event::Eof => self.fail_worker(worker, "stream ended"),
        }
    }

    // ---------------------------------------------------- folding

    fn fold_ready(&mut self) {
        while let Some(results) = self.completed.remove(&self.next_fold) {
            for r in results {
                self.aggregate.accept(&r);
                self.runs_folded += 1;
            }
            self.next_fold += 1;
        }
    }

    // ---------------------------------------------------- fallback

    fn ensure_fallback_boot(&mut self) {
        if self.fallback_boot.is_none() {
            self.plan.scenario.warm_inputs();
            let geometry = self.plan.geometry();
            let snapshot = self.plan.scenario.boot_snapshot(geometry.snapshot_at);
            self.fallback_boot = Some((geometry, snapshot));
        }
    }

    /// Executes one batch in-process (retry budget exhausted).
    fn run_in_process(&mut self, batch: u32) {
        self.fell_back = true;
        self.ensure_fallback_boot();
        let spec = self.batches[batch as usize];
        let (geometry, snapshot) = self.fallback_boot.as_ref().expect("booted above");
        let results: Vec<RunResult> = (0..u64::from(spec.len))
            .map(|i| execute_warm(self.plan, geometry, snapshot, spec.seed0 + i))
            .collect();
        self.ledger.record_fallback(u64::from(spec.len));
        self.completed.insert(batch, results);
    }

    /// Worker pool lost entirely: run every outstanding batch
    /// in-process, in order.
    fn fallback_remaining(&mut self) {
        if !self.fell_back {
            self.warnings.push("all workers lost; falling back to in-process execution".to_owned());
        }
        let outstanding: Vec<u32> =
            self.pending.drain(..).chain(self.delayed.drain(..).map(|(_, b)| b)).collect();
        for batch in outstanding {
            self.run_in_process(batch);
        }
        self.fold_ready();
    }
}
