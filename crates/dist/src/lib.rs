//! Fault-tolerant distributed campaign sweeps.
//!
//! `ree-dist` runs the workspace's fault-injection campaigns across a
//! **supervised pool of worker subprocesses** — and treats the harness
//! itself as a system under test. The supervisor shards a campaign's
//! seed range into batches, ships them to workers over a length-prefixed
//! CRC-checked frame protocol (stdin/stdout pipes; no sockets, no new
//! dependencies), and folds the returned [`ree_inject::RunResult`]s in
//! seed order through the exact accumulator a single-process
//! `Campaign::aggregate` uses. The distributed aggregate is therefore
//! **byte-identical** to the single-process one for any worker count and
//! any failure pattern — fault tolerance never silently changes the
//! science.
//!
//! Supervision (see [`supervisor`]): per-run `Progress` heartbeats and a
//! stall timeout catch hangs, per-batch deadlines catch slow losses,
//! lost batches re-queue with capped exponential backoff, twice-failed
//! workers are quarantined, and losing the whole pool degrades to
//! in-process execution with a warning. SIGINT/SIGTERM drains in-flight
//! batches and reports the partial seed-prefix aggregate.
//!
//! Chaos (see [`chaos`]): the harness can arm one worker with a seeded
//! self-fault — `raise(SIGKILL)`, `raise(SIGSTOP)`, frame corruption,
//! frame truncation, or a poisoned run — and prove the sweep still
//! converges to the identical aggregate. `docs/DISTRIBUTED.md` walks
//! through the protocol and the recovery state machine.
//!
//! # Usage
//!
//! Host binaries call [`run_worker_if_spawned`] first thing in `main`
//! (a worker spawn is detected from the environment), then use the
//! [`Distributed`] extension terminal:
//!
//! ```no_run
//! use ree_dist::{DistOptions, Distributed};
//! use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
//! use ree_sim::SimTime;
//!
//! ree_dist::run_worker_if_spawned(); // becomes a worker if spawned as one
//! let plan = RunPlan {
//!     scenario: ree_apps::Scenario::single_texture(1),
//!     target: Target::App,
//!     model: ErrorModel::Register,
//!     timeout: SimTime::ZERO + ree_sim::SimDuration::from_secs(120),
//!     net_faults: Vec::new(),
//! };
//! let report = Campaign::new(&plan)
//!     .runs(200)
//!     .seed(1)
//!     .distributed(&DistOptions::new(4))
//!     .expect("plan validates");
//! println!("{:?}", report.aggregate);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod crc;
pub mod frame;
pub mod signal;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosMode, ChaosPlan};
pub use crc::crc32;
pub use frame::{encode_frame, Decoder, FrameError};
pub use supervisor::{distribute, DistError, DistOptions, DistReport};
pub use wire::{decode_msg, encode_frame_msg, encode_msg, Msg, WireError, PROTO_VERSION};
pub use worker::{worker_main, WorkerConfig};

use ree_inject::{Campaign, CampaignSpec};

/// If this process was spawned as a distributed worker (detected from
/// the [`worker::ENV_WORKER_ID`] environment variable), runs the worker
/// protocol loop and never returns. Otherwise does nothing.
///
/// Host binaries that use the default self-re-exec spawn mode must call
/// this at the top of `main`, before argument parsing.
pub fn run_worker_if_spawned() {
    if let Some(config) = WorkerConfig::from_env() {
        worker::worker_main(config);
    }
}

/// Extension terminal that runs a configured campaign across a
/// supervised worker pool. Implemented for [`Campaign`] and
/// [`CampaignSpec`] — the distributed analogue of `.aggregate()`.
pub trait Distributed {
    /// Runs the campaign's seed range across `options.workers` worker
    /// subprocesses and folds the results in seed order.
    ///
    /// When the sweep completes, `report.aggregate` is byte-identical
    /// to `.aggregate()` run in-process.
    fn distributed(&self, options: &DistOptions) -> Result<DistReport, DistError>;
}

impl Distributed for Campaign<'_> {
    fn distributed(&self, options: &DistOptions) -> Result<DistReport, DistError> {
        supervisor::distribute(self.plan(), self.runs_configured(), self.seed0(), options)
    }
}

impl Distributed for CampaignSpec {
    fn distributed(&self, options: &DistOptions) -> Result<DistReport, DistError> {
        supervisor::distribute(&self.plan, self.runs, self.seed0, options)
    }
}
