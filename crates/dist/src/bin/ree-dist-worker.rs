//! Standalone worker binary for `ree-dist`'s own integration tests
//! (`env!("CARGO_BIN_EXE_ree-dist-worker")`) and for deployments that
//! prefer a dedicated worker executable over self-re-exec.
//!
//! It does nothing unless spawned with the worker environment set; run
//! standalone it prints a usage note and exits non-zero.

fn main() {
    ree_dist::run_worker_if_spawned();
    eprintln!(
        "ree-dist-worker: not spawned as a worker (set {} / {}); \
         this binary is launched by a ree-dist supervisor, not by hand",
        ree_dist::worker::ENV_WORKER_ID,
        ree_dist::worker::ENV_INCARNATION,
    );
    std::process::exit(2);
}
