//! The length-prefixed, CRC-checked frame layer.
//!
//! Every message between supervisor and worker travels as one frame:
//!
//! ```text
//! +-------+-----------+----------------+-----------+
//! | MAGIC | len (u32) | crc32(payload) |  payload  |
//! | 4 B   | BE        | u32 BE         | len bytes |
//! +-------+-----------+----------------+-----------+
//! ```
//!
//! The decoder is incremental (feed it arbitrary read chunks) and
//! **self-resynchronising**: a corrupted frame — bad magic, an absurd
//! length, a CRC mismatch — yields a typed [`FrameError`], never a
//! panic, and the scan resumes at the next magic sequence so one
//! mangled frame cannot poison the rest of the stream. The supervisor
//! treats any frame error as a worker failure (kill, re-queue,
//! respawn); resynchronisation is what keeps the *diagnosis* clean.

use crate::crc::crc32;
use bytes::{BufMut, BytesMut};

/// Frame preamble: `REE` + protocol generation.
pub const MAGIC: [u8; 4] = *b"REE\x01";

/// Frame header size: magic + length + CRC.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a payload. Large enough for any batch of results
/// (a `RunResult` encodes in ~200 bytes; batches are tens of runs),
/// small enough that a corrupted length field is rejected instead of
/// stalling the stream waiting for gigabytes that will never arrive.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A corrupted frame, detected and skipped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream did not start with [`MAGIC`]; `skipped` bytes were
    /// discarded hunting for the next magic sequence.
    BadMagic {
        /// Bytes discarded before the scan re-anchored (or buffered).
        skipped: usize,
    },
    /// The length field exceeds [`MAX_PAYLOAD`] — a corrupted header.
    Oversize {
        /// The absurd length the header claimed.
        len: u32,
    },
    /// The payload arrived but its CRC does not match the header's.
    BadCrc {
        /// CRC the header carried.
        expected: u32,
        /// CRC of the payload as received.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { skipped } => {
                write!(f, "bad frame magic ({skipped} bytes skipped)")
            }
            FrameError::Oversize { len } => write!(f, "frame length {len} exceeds maximum"),
            FrameError::BadCrc { expected, actual } => {
                write!(f, "frame CRC mismatch (header {expected:#010x}, payload {actual:#010x})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame around `payload`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — encoders build
/// payloads from bounded batches, so an oversize payload is a
/// programming error on the *sending* side, not a wire condition.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload exceeds maximum");
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u32(payload.len() as u32);
    buf.put_u32(crc32(payload));
    buf.put_slice(payload);
    buf.to_vec()
}

/// Incremental frame decoder with resynchronisation.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    head: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact lazily so the buffer does not grow with the stream.
        if self.head > 4096 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Tries to decode the next frame.
    ///
    /// - `Ok(Some(payload))` — one complete, CRC-clean frame.
    /// - `Ok(None)` — need more bytes.
    /// - `Err(_)` — a corrupted frame was detected *and skipped*; call
    ///   again to continue decoding from the resynchronisation point.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = self.buf.len() - self.head;
        // Anchor on the magic before trusting anything else.
        let prefix_len = avail.min(MAGIC.len());
        if self.buf[self.head..self.head + prefix_len] != MAGIC[..prefix_len] {
            return Err(self.resync());
        }
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let at = |off: usize| -> u32 {
            u32::from_be_bytes(self.buf[self.head + off..self.head + off + 4].try_into().unwrap())
        };
        let len = at(4);
        if len as usize > MAX_PAYLOAD {
            // Skip the corrupt header's magic so the rescan moves on.
            self.head += MAGIC.len();
            return Err(FrameError::Oversize { len });
        }
        if avail < HEADER_LEN + len as usize {
            return Ok(None);
        }
        let expected = at(8);
        let start = self.head + HEADER_LEN;
        let payload = &self.buf[start..start + len as usize];
        let actual = crc32(payload);
        if actual != expected {
            // The "payload" may really be a truncated frame spliced
            // against the next frame's header; drop only the magic and
            // let the rescan find the next genuine frame boundary.
            self.head += MAGIC.len();
            return Err(FrameError::BadCrc { expected, actual });
        }
        let payload = payload.to_vec();
        self.head = start + len as usize;
        Ok(Some(payload))
    }

    /// Discards bytes up to the next occurrence of [`MAGIC`] (or keeps
    /// a partial magic suffix / empty buffer waiting for more input).
    fn resync(&mut self) -> FrameError {
        let start = self.head;
        let buf = &self.buf[self.head..];
        let next_magic = (1..buf.len()).find(|&i| {
            let end = (i + MAGIC.len()).min(buf.len());
            buf[i..end] == MAGIC[..end - i]
        });
        self.head += next_magic.unwrap_or(buf.len());
        FrameError::BadMagic { skipped: self.head - start }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(stream: &[u8]) -> (Vec<Vec<u8>>, Vec<FrameError>) {
        let mut d = Decoder::new();
        d.feed(stream);
        let mut frames = Vec::new();
        let mut errors = Vec::new();
        loop {
            match d.next_frame() {
                Ok(Some(p)) => frames.push(p),
                Ok(None) => break,
                Err(e) => errors.push(e),
            }
        }
        (frames, errors)
    }

    #[test]
    fn roundtrip_two_frames_byte_at_a_time() {
        let a = encode_frame(b"hello");
        let b = encode_frame(&[0u8; 100]);
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for &byte in a.iter().chain(b.iter()) {
            d.feed(&[byte]);
            while let Ok(Some(p)) = d.next_frame() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), vec![0u8; 100]]);
    }

    #[test]
    fn resyncs_after_garbage() {
        let mut stream = b"garbage!".to_vec();
        stream.extend_from_slice(&encode_frame(b"clean"));
        let (frames, errors) = decode_all(&stream);
        assert_eq!(frames, vec![b"clean".to_vec()]);
        assert_eq!(errors, vec![FrameError::BadMagic { skipped: 8 }]);
    }

    #[test]
    fn oversize_length_is_rejected_and_skipped() {
        let mut stream = MAGIC.to_vec();
        stream.extend_from_slice(&u32::MAX.to_be_bytes());
        stream.extend_from_slice(&[0; 4]);
        stream.extend_from_slice(&encode_frame(b"after"));
        let (frames, errors) = decode_all(&stream);
        assert_eq!(frames, vec![b"after".to_vec()]);
        assert!(matches!(errors[0], FrameError::Oversize { len: u32::MAX }));
    }

    #[test]
    fn bad_crc_is_detected_and_stream_recovers() {
        let mut bad = encode_frame(b"payload");
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        bad.extend_from_slice(&encode_frame(b"good"));
        let (frames, errors) = decode_all(&bad);
        assert_eq!(frames, vec![b"good".to_vec()]);
        assert!(matches!(errors[0], FrameError::BadCrc { .. }), "{errors:?}");
    }

    #[test]
    fn truncated_frame_then_next_frame_recovers() {
        let full = encode_frame(b"it was cut short");
        let mut stream = full[..full.len() - 6].to_vec();
        stream.extend_from_slice(&encode_frame(b"next"));
        let (frames, errors) = decode_all(&stream);
        assert_eq!(frames, vec![b"next".to_vec()]);
        assert!(!errors.is_empty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (frames, errors) = decode_all(&encode_frame(b""));
        assert_eq!(frames, vec![Vec::<u8>::new()]);
        assert!(errors.is_empty());
    }
}
