//! The worker side of the protocol: a subprocess that executes batches
//! of seeded runs and streams framed results back over stdout.
//!
//! A worker is deliberately stateless beyond its booted snapshot: it
//! reads `Hello`/`Plan`/`Batch`/`Shutdown` frames from stdin, validates
//! the plan at the trust boundary ([`RunPlan::validate`]), boots the
//! warm snapshot once, and executes each batch with
//! [`execute_warm_checked`] so a poisoned run becomes a `BatchFailed`
//! error frame instead of a dead process. Every completed run emits a
//! `Progress` frame — the heartbeat the supervisor's stall detector
//! watches. Chaos ([`crate::chaos`]) hooks the run loop and the
//! outgoing frame path.

use crate::chaos::{ChaosPlan, ChaosState};
use crate::frame::{encode_frame, Decoder};
use crate::wire::{decode_msg, encode_msg, Msg, PROTO_VERSION};
use ree_apps::BootSnapshot;
use ree_inject::{execute_warm_checked, CampaignError, RunGeometry, RunPlan};
use std::io::{Read, Write};

/// Environment variable carrying the worker id; its presence is what
/// turns a spawned process into a worker (see
/// [`crate::run_worker_if_spawned`]).
pub const ENV_WORKER_ID: &str = "REE_DIST_WORKER_ID";
/// Environment variable carrying the incarnation number (0 = first
/// spawn; bumped on every respawn).
pub const ENV_INCARNATION: &str = "REE_DIST_INCARNATION";
/// Environment variable carrying the [`ChaosPlan`] spelling, if any.
pub const ENV_CHAOS: &str = "REE_DIST_CHAOS";

/// A worker's identity, as read from its environment.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Worker id (stable across respawns).
    pub worker: u32,
    /// Incarnation number.
    pub incarnation: u32,
    /// Armed chaos, if any.
    pub chaos: Option<ChaosPlan>,
}

impl WorkerConfig {
    /// Reads the spawn environment; `None` if this process was not
    /// spawned as a worker.
    pub fn from_env() -> Option<WorkerConfig> {
        let worker = std::env::var(ENV_WORKER_ID).ok()?.parse().ok()?;
        let incarnation =
            std::env::var(ENV_INCARNATION).ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        let chaos = std::env::var(ENV_CHAOS).ok().and_then(|s| ChaosPlan::from_env(&s));
        Some(WorkerConfig { worker, incarnation, chaos })
    }
}

struct Booted {
    plan: RunPlan,
    geometry: RunGeometry,
    snapshot: BootSnapshot,
}

/// Runs the worker protocol loop over stdin/stdout until `Shutdown`,
/// EOF, or a broken pipe; never returns.
pub fn worker_main(config: WorkerConfig) -> ! {
    // Run panics are caught ([`execute_warm_checked`]) and reported as
    // error frames; keep the default hook from spamming the
    // supervisor's stderr with backtraces for *expected* chaos panics.
    std::panic::set_hook(Box::new(|_| {}));
    let mut chaos = ChaosState::new(config.chaos, config.worker, config.incarnation);
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let mut decoder = Decoder::new();
    let mut booted: Option<Booted> = None;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let payload = loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => break payload,
                // A corrupted supervisor→worker frame: resynchronise
                // and keep reading — the supervisor's stall detector
                // owns the recovery decision.
                Err(_) => continue,
                Ok(None) => {
                    let n = stdin.read(&mut chunk).unwrap_or(0);
                    if n == 0 {
                        std::process::exit(0); // supervisor went away
                    }
                    decoder.feed(&chunk[..n]);
                }
            }
        };
        let Ok(msg) = decode_msg(&payload) else {
            continue; // undecodable message; skip the frame
        };
        match msg {
            Msg::Hello { proto: _ } => {
                send(&mut stdout, &Msg::Ready { worker: config.worker, proto: PROTO_VERSION });
            }
            Msg::Plan { plan } => match plan.validate() {
                Err(e) => send(&mut stdout, &Msg::PlanRejected { error: e.to_string() }),
                Ok(()) => {
                    plan.scenario.warm_inputs();
                    let geometry = plan.geometry();
                    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
                    booted = Some(Booted { plan: *plan, geometry, snapshot });
                    send(&mut stdout, &Msg::PlanAccepted);
                }
            },
            Msg::Batch { batch, seed0, len } => {
                let Some(b) = &booted else {
                    send(
                        &mut stdout,
                        &Msg::BatchFailed { batch, error: "batch before plan".to_owned() },
                    );
                    continue;
                };
                let mut results = Vec::with_capacity(len as usize);
                let mut failed = None;
                for i in 0..u64::from(len) {
                    let seed = seed0 + i;
                    let outcome = if chaos.before_run() {
                        // Poison: a genuine panic through the same
                        // catch boundary a simulator bug would hit.
                        std::panic::catch_unwind(|| -> ree_inject::RunResult {
                            panic!("chaos: poisoned run")
                        })
                        .map_err(|_| CampaignError::RunPanicked {
                            seed,
                            message: "chaos: poisoned run".to_owned(),
                        })
                    } else {
                        execute_warm_checked(&b.plan, &b.geometry, &b.snapshot, seed)
                    };
                    match outcome {
                        Ok(r) => {
                            results.push(r);
                            chaos.after_run();
                            send(&mut stdout, &Msg::Progress { batch, done: i as u32 + 1 });
                        }
                        Err(e) => {
                            failed = Some(e.to_string());
                            break;
                        }
                    }
                }
                if let Some(error) = failed {
                    send(&mut stdout, &Msg::BatchFailed { batch, error });
                    continue;
                }
                let mut frame = encode_frame(&encode_msg(&Msg::BatchDone { batch, results }));
                let exit_after = chaos.mangle_frame(&mut frame);
                write_all(&mut stdout, &frame);
                if exit_after {
                    std::process::exit(0);
                }
            }
            Msg::Shutdown => std::process::exit(0),
            // Worker-originated messages arriving at a worker: ignore.
            _ => {}
        }
    }
}

fn send(out: &mut impl Write, msg: &Msg) {
    write_all(out, &encode_frame(&encode_msg(msg)));
}

fn write_all(out: &mut impl Write, bytes: &[u8]) {
    if out.write_all(bytes).and_then(|()| out.flush()).is_err() {
        // Supervisor closed our stdout: nothing useful left to do.
        std::process::exit(0);
    }
}
