//! Self-injected worker chaos — the harness applying the paper's own
//! discipline to itself.
//!
//! A [`ChaosPlan`] arms exactly one worker with one fault, triggered
//! deterministically after a fixed number of completed runs: SIGKILL
//! (crash), SIGSTOP (hang — heartbeats stop, the process lingers),
//! frame corruption (a bit flip after the CRC was computed), frame
//! truncation (half a `BatchDone` then exit), or a poisoned batch (a
//! deliberate panic inside the run loop, surfaced as a `BatchFailed`
//! error frame). The plan rides into the worker via environment
//! variables, and fires only while the worker's incarnation number is
//! below `incarnations` — so a respawned worker is healthy and the
//! sweep provably converges to the same aggregate.

use crate::signal;

/// Which fault a chaos-armed worker injects into itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// `raise(SIGKILL)` — the worker vanishes mid-batch.
    Kill,
    /// `raise(SIGSTOP)` — the worker hangs; only the supervisor's stall
    /// timeout can tell.
    Hang,
    /// Flip one bit of an outgoing `BatchDone` frame (after the CRC was
    /// computed) — exercises CRC detection and resynchronisation.
    CorruptFrame,
    /// Send only half of a `BatchDone` frame, then exit — exercises
    /// truncation detection at EOF.
    TruncateFrame,
    /// Panic inside the batch loop — exercises the typed
    /// `BatchFailed` error frame instead of a dead process.
    Poison,
}

impl ChaosMode {
    fn as_str(self) -> &'static str {
        match self {
            ChaosMode::Kill => "kill",
            ChaosMode::Hang => "hang",
            ChaosMode::CorruptFrame => "corrupt",
            ChaosMode::TruncateFrame => "truncate",
            ChaosMode::Poison => "poison",
        }
    }

    /// Parses the `--chaos` spelling (`kill`, `hang`, `corrupt`,
    /// `truncate`, `poison`).
    pub fn parse(s: &str) -> Option<ChaosMode> {
        Some(match s {
            "kill" => ChaosMode::Kill,
            "hang" => ChaosMode::Hang,
            "corrupt" => ChaosMode::CorruptFrame,
            "truncate" => ChaosMode::TruncateFrame,
            "poison" => ChaosMode::Poison,
            _ => return None,
        })
    }

    /// Every chaos mode, for sweep drivers.
    pub const ALL: [ChaosMode; 5] = [
        ChaosMode::Kill,
        ChaosMode::Hang,
        ChaosMode::CorruptFrame,
        ChaosMode::TruncateFrame,
        ChaosMode::Poison,
    ];
}

impl std::fmt::Display for ChaosMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One armed fault: who, what, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The fault to inject.
    pub mode: ChaosMode,
    /// Worker id the fault is armed on.
    pub victim: u32,
    /// Completed runs (across the worker's lifetime) before it fires.
    pub after_runs: u32,
    /// Incarnations the fault stays armed for: 1 = only the first
    /// spawn, 2 = also the first respawn (drives quarantine), …
    pub incarnations: u32,
}

impl ChaosPlan {
    /// Derives a chaos plan from a campaign seed: the victim worker and
    /// the firing instant are a pure function of `(seed, workers)`, so
    /// the whole chaos experiment is reproducible from the command line.
    pub fn seeded(mode: ChaosMode, seed: u64, workers: usize) -> ChaosPlan {
        // splitmix64 — decorrelates consecutive seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChaosPlan {
            mode,
            victim: (z % workers.max(1) as u64) as u32,
            // Fire early — within the first few runs — so even quick
            // sweeps exercise the recovery path.
            after_runs: ((z >> 32) % 4) as u32,
            incarnations: 1,
        }
    }

    /// The environment spelling (`mode:victim:after_runs:incarnations`).
    pub fn to_env(self) -> String {
        format!("{}:{}:{}:{}", self.mode, self.victim, self.after_runs, self.incarnations)
    }

    /// Parses [`ChaosPlan::to_env`]'s spelling.
    pub fn from_env(s: &str) -> Option<ChaosPlan> {
        let mut parts = s.split(':');
        let mode = ChaosMode::parse(parts.next()?)?;
        let victim = parts.next()?.parse().ok()?;
        let after_runs = parts.next()?.parse().ok()?;
        let incarnations = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(ChaosPlan { mode, victim, after_runs, incarnations })
    }
}

/// The worker-side state machine: counts runs and fires the armed fault
/// at its instant.
#[derive(Debug)]
pub struct ChaosState {
    armed: Option<ChaosPlan>,
    runs_completed: u32,
    fired: bool,
}

impl ChaosState {
    /// Chaos as armed for this worker: `plan` applies only if this
    /// worker is the victim and its incarnation is still covered.
    pub fn new(plan: Option<ChaosPlan>, worker: u32, incarnation: u32) -> ChaosState {
        let armed = plan.filter(|p| p.victim == worker && incarnation < p.incarnations);
        ChaosState { armed, runs_completed: 0, fired: false }
    }

    /// Called before each run: fires `Kill`/`Hang`/`Poison` when the
    /// run counter reaches the armed instant. `Kill` and `Hang` do not
    /// return; `Poison` reports `true` so the worker can panic inside
    /// its catch boundary.
    pub fn before_run(&mut self) -> bool {
        let Some(plan) = self.armed else { return false };
        if self.fired || self.runs_completed < plan.after_runs {
            return false;
        }
        match plan.mode {
            ChaosMode::Kill => signal::raise_signal(signal::SIGKILL),
            ChaosMode::Hang => signal::raise_signal(signal::SIGSTOP),
            ChaosMode::Poison => {
                self.fired = true;
                return true;
            }
            ChaosMode::CorruptFrame | ChaosMode::TruncateFrame => {}
        }
        false
    }

    /// Called after each completed run.
    pub fn after_run(&mut self) {
        self.runs_completed += 1;
    }

    /// Called with each encoded `BatchDone` frame; `CorruptFrame`
    /// mangles it once, `TruncateFrame` halves it once (the caller
    /// exits after sending a truncated frame — a real truncation is an
    /// abrupt stream end, not a gap).
    ///
    /// Returns whether the caller should exit after writing the frame.
    pub fn mangle_frame(&mut self, frame: &mut Vec<u8>) -> bool {
        let Some(plan) = self.armed else { return false };
        if self.fired || self.runs_completed < plan.after_runs.max(1) {
            return false;
        }
        match plan.mode {
            ChaosMode::CorruptFrame => {
                self.fired = true;
                let last = frame.len() - 1;
                frame[last] ^= 0x10;
                false
            }
            ChaosMode::TruncateFrame => {
                self.fired = true;
                frame.truncate(frame.len() / 2);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_roundtrip() {
        for mode in ChaosMode::ALL {
            let plan = ChaosPlan { mode, victim: 3, after_runs: 7, incarnations: 2 };
            assert_eq!(ChaosPlan::from_env(&plan.to_env()), Some(plan));
        }
        assert_eq!(ChaosPlan::from_env("bogus:0:0:1"), None);
        assert_eq!(ChaosPlan::from_env("kill:0:0"), None);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_in_range() {
        let a = ChaosPlan::seeded(ChaosMode::Kill, 42, 4);
        let b = ChaosPlan::seeded(ChaosMode::Kill, 42, 4);
        assert_eq!(a, b);
        assert!(a.victim < 4);
        assert!(a.after_runs < 4);
        assert_eq!(a.incarnations, 1);
    }

    #[test]
    fn only_the_victim_incarnation_is_armed() {
        let plan = ChaosPlan { mode: ChaosMode::Poison, victim: 1, after_runs: 0, incarnations: 1 };
        assert!(ChaosState::new(Some(plan), 0, 0).armed.is_none());
        assert!(ChaosState::new(Some(plan), 1, 0).armed.is_some());
        assert!(ChaosState::new(Some(plan), 1, 1).armed.is_none());
        assert!(ChaosState::new(None, 1, 0).armed.is_none());
    }

    #[test]
    fn poison_fires_once_at_its_instant() {
        let plan = ChaosPlan { mode: ChaosMode::Poison, victim: 0, after_runs: 2, incarnations: 1 };
        let mut state = ChaosState::new(Some(plan), 0, 0);
        assert!(!state.before_run());
        state.after_run();
        assert!(!state.before_run());
        state.after_run();
        assert!(state.before_run(), "fires at run 2");
        assert!(!state.before_run(), "one-shot");
    }

    #[test]
    fn corrupt_flips_a_bit_truncate_halves() {
        let plan =
            ChaosPlan { mode: ChaosMode::CorruptFrame, victim: 0, after_runs: 1, incarnations: 1 };
        let mut state = ChaosState::new(Some(plan), 0, 0);
        state.after_run();
        let mut frame = vec![0u8; 8];
        assert!(!state.mangle_frame(&mut frame));
        assert_eq!(frame[7], 0x10, "bit flipped");
        let plan =
            ChaosPlan { mode: ChaosMode::TruncateFrame, victim: 0, after_runs: 1, incarnations: 1 };
        let mut state = ChaosState::new(Some(plan), 0, 0);
        state.after_run();
        let mut frame = vec![0u8; 8];
        assert!(state.mangle_frame(&mut frame), "exit after truncated send");
        assert_eq!(frame.len(), 4);
    }
}
