//! Minimal POSIX signal access: an interrupt flag for the supervisor's
//! graceful shutdown, and `raise()` for the chaos self-injection modes.
//!
//! The workspace bans `unsafe` everywhere else, and the container
//! vendors no `libc` crate; this module is the one narrowly-scoped
//! exception, declaring the two libc symbols the crate needs. The
//! SIGINT/SIGTERM handler only stores to an `AtomicBool` —
//! async-signal-safe — and everything downstream polls the flag.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` — Ctrl-C.
pub const SIGINT: i32 = 2;
/// `SIGKILL` — unblockable kill (the chaos crash mode).
pub const SIGKILL: i32 = 9;
/// `SIGTERM` — polite termination request.
pub const SIGTERM: i32 = 15;
/// `SIGSTOP` — unblockable stop (the chaos hang mode).
pub const SIGSTOP: i32 = 19;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        pub fn raise(sig: i32) -> i32;
    }

    extern "C" fn on_interrupt(_sig: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install(signum: i32) {
        unsafe {
            signal(signum, on_interrupt);
        }
    }

    pub fn raise_now(sig: i32) {
        unsafe {
            raise(sig);
        }
    }
}

/// Routes SIGINT and SIGTERM to the [`interrupted`] flag. Idempotent.
pub fn install_interrupt_handler() {
    ffi::install(SIGINT);
    ffi::install(SIGTERM);
}

/// Has SIGINT/SIGTERM arrived (or [`request_interrupt`] been called)?
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Sets the interrupt flag programmatically — the deterministic stand-in
/// for Ctrl-C that the graceful-shutdown tests use.
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the interrupt flag (between consecutive supervised sweeps in
/// one process).
pub fn clear_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Delivers `sig` to the calling process — how a chaos-armed worker
/// kills or stops *itself* at its seeded instant without needing an
/// external `kill` binary.
pub fn raise_signal(sig: i32) {
    ffi::raise_now(sig);
}
