//! The paper's Figure 9 SAN: "modeling SIFT-induced application
//! failures".
//!
//! Places: `app_okay`, `app_block`, `app_interface`, `app_fail`,
//! `sift_okay`, `sift_fail`. Activities: `app_interface_rate` (the app
//! calls into its local SIFT process), an instantaneous activity enabled
//! while the SIFT process is okay (the call completes), `app_timeout`
//! (the blocked app gives up), `sift_lambda` (SIFT failure), `sift_mu`
//! (SIFT recovery), and `app_rho` (application recovery, conditioned on
//! the SIFT process being healthy). "The application process does not
//! independently fail in this model — all failures are induced by the
//! SIFT process being unavailable to process application requests within
//! an application-defined timeout period."

use crate::san::{Activity, Delay, Place, San};
use ree_sim::SimRng;

/// Place indices of the Figure 9 model.
pub mod places {
    use super::Place;
    /// Application operating normally.
    pub const APP_OKAY: Place = Place(0);
    /// Application blocked on a SIFT-interface call.
    pub const APP_BLOCK: Place = Place(1);
    /// Application inside a completed interface call (transient).
    pub const APP_INTERFACE: Place = Place(2);
    /// Application failed (timed out on the SIFT process).
    pub const APP_FAIL: Place = Place(3);
    /// SIFT process healthy.
    pub const SIFT_OKAY: Place = Place(4);
    /// SIFT process failed/recovering.
    pub const SIFT_FAIL: Place = Place(5);
}

/// Parameters of the Figure 9 model (rates per second).
#[derive(Clone, Debug)]
pub struct ReeModelParams {
    /// Rate at which the application calls the SIFT interface
    /// (progress indicators etc.); ~1/20 s in the experiments.
    pub app_interface_rate: f64,
    /// SIFT-process failure rate (the experiment variable).
    pub sift_failure_rate: f64,
    /// SIFT-process recovery rate (≈ 1/0.5 s measured).
    pub sift_recovery_rate: f64,
    /// Blocked-application timeout (seconds; `app_block_timeout`).
    pub app_timeout: f64,
    /// Application recovery rate once the SIFT process is healthy
    /// (restart + rollback redo; ≈ 1/15 s measured).
    pub app_recovery_rate: f64,
}

impl Default for ReeModelParams {
    fn default() -> Self {
        ReeModelParams {
            app_interface_rate: 1.0 / 20.0,
            sift_failure_rate: 1.0 / 3600.0,
            sift_recovery_rate: 1.0 / 0.5,
            app_timeout: 30.0,
            app_recovery_rate: 1.0 / 15.0,
        }
    }
}

/// Builds the Figure 9 SAN.
pub fn build(params: &ReeModelParams) -> San {
    let mut san = San::new(vec![1, 0, 0, 0, 1, 0]);
    let p = params.clone();
    // app_okay --app_interface_rate--> app_block
    san.add_activity(Activity {
        name: "app_interface_rate",
        delay: Delay::Exponential(p.app_interface_rate),
        enabled: Box::new(|m| m[0] > 0),
        fire: Box::new(|m| {
            m[0] -= 1;
            m[1] += 1;
        }),
    });
    // app_block --instantaneous (if sift_okay)--> app_interface
    san.add_activity(Activity {
        name: "interface_completes",
        delay: Delay::Instantaneous,
        enabled: Box::new(|m| m[1] > 0 && m[4] > 0),
        fire: Box::new(|m| {
            m[1] -= 1;
            m[2] += 1;
        }),
    });
    // app_interface returns to app_okay immediately after the reply
    // ("once the SIFT process receives a request, it is able to send a
    // reply without failing" — the model's simplification).
    san.add_activity(Activity {
        name: "interface_returns",
        delay: Delay::Instantaneous,
        enabled: Box::new(|m| m[2] > 0),
        fire: Box::new(|m| {
            m[2] -= 1;
            m[0] += 1;
        }),
    });
    // app_block --app_timeout--> app_fail (only while the SIFT process
    // is down; otherwise the instantaneous activity wins).
    san.add_activity(Activity {
        name: "app_timeout",
        delay: Delay::Deterministic(p.app_timeout),
        enabled: Box::new(|m| m[1] > 0 && m[4] == 0),
        fire: Box::new(|m| {
            m[1] -= 1;
            m[3] += 1;
        }),
    });
    // sift_okay --lambda--> sift_fail
    san.add_activity(Activity {
        name: "sift_lambda",
        delay: Delay::Exponential(p.sift_failure_rate),
        enabled: Box::new(|m| m[4] > 0),
        fire: Box::new(|m| {
            m[4] -= 1;
            m[5] += 1;
        }),
    });
    // sift_fail --mu--> sift_okay
    san.add_activity(Activity {
        name: "sift_mu",
        delay: Delay::Exponential(p.sift_recovery_rate),
        enabled: Box::new(|m| m[5] > 0),
        fire: Box::new(|m| {
            m[5] -= 1;
            m[4] += 1;
        }),
    });
    // app_fail --rho (requires sift_okay)--> app_okay: "application
    // recovery is conditioned on the SIFT process being in the
    // non-failed state".
    san.add_activity(Activity {
        name: "app_rho",
        delay: Delay::Exponential(p.app_recovery_rate),
        enabled: Box::new(|m| m[3] > 0 && m[4] > 0),
        fire: Box::new(|m| {
            m[3] -= 1;
            m[0] += 1;
        }),
    });
    san
}

/// Solution of one model configuration.
#[derive(Clone, Debug)]
pub struct ReeModelSolution {
    /// Fraction of time the application is unavailable (blocked or
    /// failed).
    pub app_unavailability: f64,
    /// SIFT-process failures observed.
    pub sift_failures: u64,
    /// Application failures induced (timeouts while blocked).
    pub app_failures: u64,
    /// P(SIFT failure induces an application failure).
    pub correlated_failure_probability: f64,
}

/// Solves the model by simulation over `horizon` seconds.
pub fn solve(params: &ReeModelParams, horizon: f64, seed: u64) -> ReeModelSolution {
    let mut san = build(params);
    let mut rng = SimRng::new(seed);
    let (fractions, firings) = san.solve(&mut rng, horizon);
    let sift_failures = firings[4];
    let app_failures = firings[3];
    ReeModelSolution {
        app_unavailability: fractions[places::APP_BLOCK.0] + fractions[places::APP_FAIL.0],
        sift_failures,
        app_failures,
        correlated_failure_probability: if sift_failures == 0 {
            0.0
        } else {
            app_failures as f64 / sift_failures as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_sift_means_no_app_failures() {
        // With a negligible failure rate the app never times out.
        let params = ReeModelParams { sift_failure_rate: 1e-12, ..ReeModelParams::default() };
        let sol = solve(&params, 200_000.0, 1);
        assert_eq!(sol.app_failures, 0);
        assert!(sol.app_unavailability < 1e-3, "{}", sol.app_unavailability);
    }

    #[test]
    fn fast_recovery_prevents_correlated_failures() {
        // Recovery (0.5 s) is much faster than the 30 s timeout: even
        // frequent SIFT failures rarely take the application down — the
        // paper's observation that only ~1.6% of SIFT failures induced
        // application failures.
        let params = ReeModelParams { sift_failure_rate: 1.0 / 600.0, ..ReeModelParams::default() };
        let sol = solve(&params, 2_000_000.0, 2);
        assert!(sol.sift_failures > 1000);
        assert!(
            sol.correlated_failure_probability < 0.05,
            "p = {}",
            sol.correlated_failure_probability
        );
    }

    #[test]
    fn slow_recovery_induces_correlated_failures() {
        // If SIFT recovery takes ~60 s (≫ the 30 s timeout), most
        // failures that catch the app mid-call become app failures.
        let params = ReeModelParams {
            sift_failure_rate: 1.0 / 600.0,
            sift_recovery_rate: 1.0 / 60.0,
            ..ReeModelParams::default()
        };
        let sol = solve(&params, 2_000_000.0, 3);
        assert!(
            sol.correlated_failure_probability > 0.2,
            "p = {}",
            sol.correlated_failure_probability
        );
        // And availability suffers disproportionately (the paper's [33]
        // point about correlation).
        assert!(sol.app_unavailability > 0.01);
    }

    #[test]
    fn unavailability_grows_with_failure_rate() {
        let mut last = 0.0;
        for (i, rate) in [1.0 / 7200.0, 1.0 / 1800.0, 1.0 / 450.0].into_iter().enumerate() {
            let params = ReeModelParams { sift_failure_rate: rate, ..ReeModelParams::default() };
            let sol = solve(&params, 1_000_000.0, 10 + i as u64);
            assert!(
                sol.app_unavailability >= last,
                "unavailability should grow: {} then {}",
                last,
                sol.app_unavailability
            );
            last = sol.app_unavailability;
        }
    }
}
