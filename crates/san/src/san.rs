//! A general stochastic activity network (SAN) simulator.
//!
//! SANs extend Petri nets with *timed activities* (stochastic firing
//! delays), *instantaneous activities*, enabling predicates over the
//! marking (input gates), and marking-transformation functions (output
//! gates). The paper models SIFT-induced application failures as the SAN
//! of Figure 9 and solves it for availability; we solve by Monte-Carlo
//! simulation over the same structure.

use ree_sim::SimRng;

/// Index of a place in the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Place(pub usize);

/// Firing-delay distribution of an activity.
#[derive(Clone, Debug)]
pub enum Delay {
    /// Exponential with the given rate (events per unit time).
    Exponential(f64),
    /// Fixed delay.
    Deterministic(f64),
    /// Instantaneous (fires as soon as enabled, before any timed
    /// activity).
    Instantaneous,
}

/// Enabling predicate over a marking (an input gate).
pub type GatePredicate = Box<dyn Fn(&[u64]) -> bool>;

/// Marking transformation applied on firing (an output gate).
pub type GateEffect = Box<dyn Fn(&mut [u64])>;

/// One activity: enabling condition + marking transformation + delay.
pub struct Activity {
    /// Display name (for traces and tests).
    pub name: &'static str,
    /// Firing-delay distribution.
    pub delay: Delay,
    /// Enabling predicate over the marking (the input gate).
    pub enabled: GatePredicate,
    /// Marking transformation applied on firing (the output gate).
    pub fire: GateEffect,
}

/// A stochastic activity network: places (with a marking) + activities.
pub struct San {
    marking: Vec<u64>,
    activities: Vec<Activity>,
    time: f64,
}

impl San {
    /// Creates a network with the given initial marking.
    pub fn new(initial_marking: Vec<u64>) -> Self {
        San { marking: initial_marking, activities: Vec::new(), time: 0.0 }
    }

    /// Adds an activity; returns its index.
    pub fn add_activity(&mut self, activity: Activity) -> usize {
        self.activities.push(activity);
        self.activities.len() - 1
    }

    /// Current marking.
    pub fn marking(&self) -> &[u64] {
        &self.marking
    }

    /// Tokens in one place.
    pub fn tokens(&self, place: Place) -> u64 {
        self.marking[place.0]
    }

    /// Current model time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Advances the model by firing the next activity. Returns the index
    /// of the fired activity, or `None` if nothing is enabled (absorbing
    /// marking).
    ///
    /// Instantaneous activities take priority; among several enabled
    /// timed activities the winner is the one sampling the smallest
    /// delay (race semantics).
    pub fn step(&mut self, rng: &mut SimRng) -> Option<usize> {
        // Instantaneous first.
        for (i, act) in self.activities.iter().enumerate() {
            if matches!(act.delay, Delay::Instantaneous) && (act.enabled)(&self.marking) {
                let fire = &self.activities[i].fire;
                let mut m = self.marking.clone();
                fire(&mut m);
                self.marking = m;
                return Some(i);
            }
        }
        // Race among enabled timed activities.
        let mut winner: Option<(usize, f64)> = None;
        for (i, act) in self.activities.iter().enumerate() {
            if !(act.enabled)(&self.marking) {
                continue;
            }
            let sample = match act.delay {
                Delay::Exponential(rate) => rng.exp_duration(rate).as_secs_f64(),
                Delay::Deterministic(d) => d,
                Delay::Instantaneous => unreachable!("handled above"),
            };
            match winner {
                Some((_, best)) if sample >= best => {}
                _ => winner = Some((i, sample)),
            }
        }
        let (i, dt) = winner?;
        self.time += dt;
        let mut m = self.marking.clone();
        (self.activities[i].fire)(&mut m);
        self.marking = m;
        Some(i)
    }

    /// Runs until `horizon` model time, accumulating the total time each
    /// place was non-empty. Returns per-place occupancy fractions and the
    /// per-activity firing counts.
    pub fn solve(&mut self, rng: &mut SimRng, horizon: f64) -> (Vec<f64>, Vec<u64>) {
        let places = self.marking.len();
        let mut occupied = vec![0.0; places];
        let mut firings = vec![0u64; self.activities.len()];
        let mut last = self.time;
        while self.time < horizon {
            let before = self.marking.clone();
            let Some(fired) = self.step(rng) else { break };
            firings[fired] += 1;
            let dt = (self.time - last).min(horizon - last);
            for (p, tokens) in before.iter().enumerate() {
                if *tokens > 0 {
                    occupied[p] += dt;
                }
            }
            last = self.time;
        }
        // Tail interval.
        if last < horizon {
            for (p, tokens) in self.marking.iter().enumerate() {
                if *tokens > 0 {
                    occupied[p] += horizon - last;
                }
            }
        }
        let fractions = occupied.into_iter().map(|t| t / horizon).collect();
        (fractions, firings)
    }
}

impl std::fmt::Debug for San {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("San")
            .field("marking", &self.marking)
            .field("activities", &self.activities.len())
            .field("time", &self.time)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1(lambda: f64, mu: f64) -> San {
        // Single-server queue with capacity 1: place 0 = idle, 1 = busy.
        let mut san = San::new(vec![1, 0]);
        san.add_activity(Activity {
            name: "arrive",
            delay: Delay::Exponential(lambda),
            enabled: Box::new(|m| m[0] > 0),
            fire: Box::new(|m| {
                m[0] -= 1;
                m[1] += 1;
            }),
        });
        san.add_activity(Activity {
            name: "serve",
            delay: Delay::Exponential(mu),
            enabled: Box::new(|m| m[1] > 0),
            fire: Box::new(|m| {
                m[1] -= 1;
                m[0] += 1;
            }),
        });
        san
    }

    #[test]
    fn two_state_chain_occupancy_matches_theory() {
        // Alternating renewal process: availability = mu/(lambda+mu).
        let mut rng = SimRng::new(7);
        let mut san = mm1(1.0, 3.0);
        let (fractions, firings) = san.solve(&mut rng, 50_000.0);
        let expect_idle = 3.0 / 4.0;
        assert!((fractions[0] - expect_idle).abs() < 0.02, "idle {}", fractions[0]);
        assert!((fractions[1] - (1.0 - expect_idle)).abs() < 0.02);
        assert!(firings[0] > 0 && firings[1] > 0);
    }

    #[test]
    fn instantaneous_fires_before_timed() {
        let mut san = San::new(vec![1, 0]);
        san.add_activity(Activity {
            name: "slow",
            delay: Delay::Exponential(0.001),
            enabled: Box::new(|m| m[0] > 0),
            fire: Box::new(|m| m[0] -= 1),
        });
        san.add_activity(Activity {
            name: "now",
            delay: Delay::Instantaneous,
            enabled: Box::new(|m| m[0] > 0),
            fire: Box::new(|m| {
                m[0] -= 1;
                m[1] += 1;
            }),
        });
        let mut rng = SimRng::new(1);
        let fired = san.step(&mut rng).unwrap();
        assert_eq!(san.tokens(Place(1)), 1);
        assert_eq!(fired, 1, "instantaneous activity must win");
        assert_eq!(san.time(), 0.0, "instantaneous firing consumes no time");
    }

    #[test]
    fn absorbing_marking_stops() {
        let mut san = San::new(vec![0]);
        san.add_activity(Activity {
            name: "never",
            delay: Delay::Exponential(1.0),
            enabled: Box::new(|m| m[0] > 0),
            fire: Box::new(|_| {}),
        });
        let mut rng = SimRng::new(1);
        assert!(san.step(&mut rng).is_none());
    }

    #[test]
    fn deterministic_delay_advances_time_exactly() {
        let mut san = San::new(vec![1]);
        san.add_activity(Activity {
            name: "tick",
            delay: Delay::Deterministic(2.5),
            enabled: Box::new(|m| m[0] > 0),
            fire: Box::new(|m| m[0] -= 1),
        });
        let mut rng = SimRng::new(1);
        san.step(&mut rng);
        assert!((san.time() - 2.5).abs() < 1e-12);
    }
}
