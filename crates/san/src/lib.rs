//! # ree-san — stochastic activity networks and the Figure 9 model
//!
//! "The likelihood of correlated failures depends upon the failure rate
//! of the SIFT process and several performance parameters … These factors
//! can be incorporated into the stochastic activity network (SAN) shown
//! in Figure 9, which models one application's behavior when attempting
//! to interface with the local SIFT process" (§5.2).
//!
//! [`San`] is a general Monte-Carlo SAN solver; [`ree_model`] instantiates
//! the paper's model and sweeps the SIFT failure rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ree_model;
mod san;

pub use ree_model::{build, solve, ReeModelParams, ReeModelSolution};
pub use san::{Activity, Delay, Place, San};
