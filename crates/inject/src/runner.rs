//! Single-run execution: set up the environment, inject per the error
//! model's protocol, observe, classify. The NFTAPE division of labour
//! (§4): control/monitor/collect here, the actual corruption in the
//! `ree-os` injection surface.

use crate::error::{panic_message, CampaignError};
use crate::model::{ErrorModel, FailureClass, SystemFailure, Target};
use crate::netfault::{NetFault, NetFaultDriver, NetFaultKind};
use ree_apps::verify::{verify_otis, verify_pipeline, verify_texture, Verdict};
use ree_apps::{BootSnapshot, Running, Scenario};
use ree_os::{ExitStatus, HeapHit, Pid, Signal, TraceEvent};
use ree_sim::{SimDuration, SimRng, SimTime};

/// Everything one injection run needs.
#[derive(Clone, Debug)]
pub struct RunPlan {
    /// Environment + workload.
    pub scenario: Scenario,
    /// Which process class to inject into.
    pub target: Target,
    /// The Table 2 error model.
    pub model: ErrorModel,
    /// System-failure timeout ("a failure occurs when the application
    /// cannot complete within a predefined timeout", §4.2).
    pub timeout: SimTime,
    /// Network faults imposed during the run (link failures,
    /// partitions), alongside the process-level error model. Empty for
    /// the paper's original campaigns.
    pub net_faults: Vec<NetFault>,
}

/// Campaign-invariant run geometry, derived from a [`RunPlan`] once per
/// campaign instead of re-derived from identical inputs on every run.
/// The per-run path only draws the seed-dependent injection instant
/// inside the precomputed window.
#[derive(Clone, Debug)]
pub struct RunGeometry {
    /// First job's submission instant.
    pub submit: SimDuration,
    /// Nominal fault-free duration of the first job's science.
    pub nominal: SimDuration,
    /// Injection-window start (exposure start for the plan's target).
    pub window_start: SimTime,
    /// Injection-window end (covers setup, execution, takedown).
    pub window_end: SimTime,
    /// Warm-boot snapshot instant: the window start, clamped to the
    /// timeout so a snapshot never simulates past a short plan's end.
    /// Before this instant a clean boot is identical for every run of
    /// the campaign; at it, per-run streams are re-seeded.
    pub snapshot_at: SimTime,
}

impl RunPlan {
    /// Derives the campaign-invariant geometry of this plan's runs.
    pub fn geometry(&self) -> RunGeometry {
        let submit =
            self.scenario.jobs.first().map(|j| j.submit_at).unwrap_or(SimDuration::from_secs(5));
        let nominal = app_nominal(&self.scenario);
        let window_start = SimTime::ZERO + exposure_start(&self.target, submit);
        let window_end = SimTime::ZERO + submit + nominal + SimDuration::from_secs(12);
        RunGeometry {
            submit,
            nominal,
            window_start,
            window_end,
            snapshot_at: window_start.min(self.timeout),
        }
    }

    /// Boots this plan's scenario once, frozen at the snapshot instant —
    /// the warm-boot image `run_campaign*` forks per run.
    pub fn boot_snapshot(&self) -> BootSnapshot {
        self.scenario.boot_snapshot(self.geometry().snapshot_at)
    }

    /// Checks the structural invariants a plan must satisfy before any
    /// run of it can execute: a positive timeout, jobs whose rank count
    /// matches their node list with every node inside the cluster, and
    /// network faults whose endpoints exist. Supervisors call this at
    /// the trust boundary — a plan decoded off the wire is rejected
    /// with a typed [`CampaignError`] instead of panicking deep inside
    /// the simulator.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let bad = |why: String| Err(CampaignError::InvalidPlan(why));
        if self.timeout <= SimTime::ZERO {
            return bad("timeout must be positive".into());
        }
        let nodes = self.scenario.nodes;
        for (slot, job) in self.scenario.jobs.iter().enumerate() {
            if job.app.is_empty() {
                return bad(format!("job {slot} has an empty application name"));
            }
            if job.ranks == 0 {
                return bad(format!("job {slot} ({}) has zero ranks", job.app));
            }
            if job.nodes.len() != job.ranks as usize {
                return bad(format!(
                    "job {slot} ({}) maps {} ranks onto {} nodes",
                    job.app,
                    job.ranks,
                    job.nodes.len()
                ));
            }
            if let Some(&n) = job.nodes.iter().find(|&&n| (n as usize) >= nodes) {
                return bad(format!(
                    "job {slot} ({}) places a rank on node{n}, but the cluster has {nodes} nodes",
                    job.app
                ));
            }
        }
        if let Some(topology) = &self.scenario.topology {
            if topology.nodes() as usize != nodes {
                return bad(format!(
                    "topology has {} nodes but the scenario declares {nodes}",
                    topology.nodes()
                ));
            }
        }
        let in_range = |n: u16| (n as usize) < nodes;
        for (i, fault) in self.net_faults.iter().enumerate() {
            let endpoints: Vec<u16> = match &fault.kind {
                NetFaultKind::Link { a, b } => vec![*a, *b],
                NetFaultKind::Correlated { pairs } => {
                    pairs.iter().flat_map(|&(a, b)| [a, b]).collect()
                }
                NetFaultKind::Partition { groups } => {
                    if groups.len() < 2 {
                        return bad(format!("net fault {i}: a partition needs at least 2 groups"));
                    }
                    groups.iter().flatten().copied().collect()
                }
            };
            if let Some(&n) = endpoints.iter().find(|&&n| !in_range(n)) {
                return bad(format!(
                    "net fault {i} references node{n}, but the cluster has {nodes} nodes"
                ));
            }
        }
        Ok(())
    }
}

/// Everything one run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// The seed used.
    pub seed: u64,
    /// Number of bit flips / signals injected.
    pub injections: u32,
    /// First failure induced in the target, if any.
    pub induced: Option<FailureClass>,
    /// Did every job complete (SIFT reported completion)?
    pub completed: bool,
    /// System-failure phase when not completed.
    pub system_failure: Option<SystemFailure>,
    /// Application output verdict.
    pub output: Verdict,
    /// Perceived execution time of slot 0, seconds.
    pub perceived: Option<f64>,
    /// Actual execution time of slot 0, seconds.
    pub actual: Option<f64>,
    /// Per-slot perceived times (two-app experiments).
    pub perceived_all: Vec<Option<f64>>,
    /// Per-slot actual times.
    pub actual_all: Vec<Option<f64>>,
    /// Application restarts across slots.
    pub restarts: u64,
    /// SIFT-process recovery durations observed, seconds.
    pub recovery_times: Vec<f64>,
    /// Did a SIFT-process failure induce an application restart
    /// (correlated failure, §5.2)?
    pub correlated: bool,
    /// Did any ARMOR assertion fire during the run?
    pub assertion_fired: bool,
    /// What the heap injection hit (single-flip campaigns).
    pub heap_hit: Option<HeapHit>,
    /// Network faults that reached their activation instant.
    pub net_faults_applied: u32,
}

impl RunResult {
    /// True if an error was injected *and* the system handled it without
    /// a system failure.
    pub fn recovered(&self) -> bool {
        self.injections > 0 && self.completed && self.output != Verdict::Incorrect
    }
}

/// Executes one injection run (cold: boots its own cluster).
pub fn execute(plan: &RunPlan, seed: u64) -> RunResult {
    execute_full(plan, seed).0
}

/// Executes one injection run and also returns the finished environment
/// (trace inspection, debugging, extension experiments).
///
/// This is the **cold** path: it boots a fresh cluster to the snapshot
/// instant, re-seeds the streams from `seed`, and runs — exactly what a
/// warm run does from a shared [`BootSnapshot`], minus the clone, so
/// warm and cold results are byte-identical for the same seed.
pub fn execute_full(plan: &RunPlan, seed: u64) -> (RunResult, Running) {
    let geometry = plan.geometry();
    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
    run_seeded(plan, &geometry, snapshot.into_running(seed), seed)
}

/// Executes one injection run from a shared warm-boot snapshot: clones
/// the booted cluster, re-seeds it from `seed`, and runs.
pub fn execute_warm(
    plan: &RunPlan,
    geometry: &RunGeometry,
    snapshot: &BootSnapshot,
    seed: u64,
) -> RunResult {
    execute_warm_full(plan, geometry, snapshot, seed).0
}

/// [`execute_warm`] with the panic boundary a supervisor needs: a run
/// that panics inside the simulator is caught and reported as
/// [`CampaignError::RunPanicked`] instead of unwinding through (and
/// killing) the calling worker. Execution is deterministic, so the
/// error carries the seed for in-process reproduction.
pub fn execute_warm_checked(
    plan: &RunPlan,
    geometry: &RunGeometry,
    snapshot: &BootSnapshot,
    seed: u64,
) -> Result<RunResult, CampaignError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_warm(plan, geometry, snapshot, seed)
    }))
    .map_err(|payload| CampaignError::RunPanicked { seed, message: panic_message(payload) })
}

/// [`execute_warm`] variant that also returns the finished environment.
pub fn execute_warm_full(
    plan: &RunPlan,
    geometry: &RunGeometry,
    snapshot: &BootSnapshot,
    seed: u64,
) -> (RunResult, Running) {
    run_seeded(plan, geometry, snapshot.fork(seed), seed)
}

/// Classifies and packages a run the caller drove manually — the
/// `ree-mc` interleaving explorer's terminal. Runs the remaining events
/// deterministically out to completion or `plan.timeout`, then applies
/// exactly the classification pipeline [`execute`] uses: Table 6 target
/// state for `watched`, output verification, system-failure attribution,
/// timing extraction. The plan must carry no network faults —
/// interleaved exploration composes with the process-level models only.
pub fn conclude_run(
    plan: &RunPlan,
    seed: u64,
    running: Running,
    injections: u32,
    watched: Option<Pid>,
) -> (RunResult, Running) {
    assert!(plan.net_faults.is_empty(), "manually-driven runs do not support network fault plans");
    let mut net_driver = NetFaultDriver::new(&plan.net_faults);
    finish_run(plan, seed, running, injections, None, None, watched, &mut net_driver)
}

/// The seed-dependent part of a run: everything after the (seed-
/// independent) boot. `running` arrives at the snapshot instant with its
/// streams already re-seeded from `seed`.
fn run_seeded(
    plan: &RunPlan,
    geometry: &RunGeometry,
    mut running: Running,
    seed: u64,
) -> (RunResult, Running) {
    let mut rng = SimRng::new(seed ^ 0x1A7E_C0DE);
    let mut net_driver = NetFaultDriver::new(&plan.net_faults);
    let w0 = geometry.window_start;
    let w1 = geometry.window_end;
    let mut next_injection =
        SimTime::from_micros(rng.range_u64(w0.as_micros(), w1.as_micros().max(w0.as_micros() + 1)));

    let mut injections = 0u32;
    let mut induced: Option<FailureClass> = None;
    let mut watched: Option<Pid> = None;
    // The paper's repeat-until-failure campaigns averaged ~20 flips per
    // run (≈6,700 heap errors across ~300 runs, §7.1).
    let max_injections: u32 = if plan.model.repeats() { 25 } else { 1 };

    loop {
        // Run up to the next injection instant (or completion/timeout).
        let horizon = next_injection.min(plan.timeout);
        let done = net_driver.run(&mut running, horizon);
        if done || running.cluster.now() >= plan.timeout {
            break;
        }
        // Check whether a previous injection has now manifested.
        if induced.is_none() {
            if let Some(pid) = watched {
                induced = classify_target_state(&running, pid, &plan.model);
            }
        }
        if induced.is_some() && plan.model.repeats() {
            // Failure induced: stop injecting, run the rest out.
            let _ = net_driver.run(&mut running, plan.timeout);
            break;
        }
        if injections >= max_injections {
            let _ = net_driver.run(&mut running, plan.timeout);
            break;
        }
        // Resolve the target afresh (recoveries change pids).
        let target_pid = resolve_target(&running, &plan.target, &mut rng);
        let Some(pid) = target_pid else {
            // Target not alive right now; retry shortly.
            next_injection = running.cluster.now() + SimDuration::from_millis(1500);
            if next_injection >= plan.timeout {
                let _ = net_driver.run(&mut running, plan.timeout);
                break;
            }
            continue;
        };
        watched = Some(pid);
        let mut hit = None;
        let mut flipped = true;
        match &plan.model {
            ErrorModel::Sigint => running.cluster.send_signal(pid, Signal::Int),
            ErrorModel::Sigstop => running.cluster.send_signal(pid, Signal::Stop),
            ErrorModel::Register => {
                flipped = running.cluster.inject_register(pid).is_some();
            }
            ErrorModel::TextSegment => {
                flipped = running.cluster.inject_text(pid).is_some();
            }
            ErrorModel::Heap => {
                hit = running.cluster.inject_heap(pid, &ree_os::HeapTarget::Any);
                flipped = hit.is_some();
            }
            ErrorModel::HeapSingle(target) => {
                hit = running.cluster.inject_heap(pid, target);
                flipped = hit.is_some();
            }
        }
        if !flipped {
            // No matching state yet (e.g. the app has not loaded its
            // matrices); retry shortly without counting an injection.
            next_injection = running.cluster.now() + SimDuration::from_secs(2);
            if next_injection >= w1 {
                let _ = net_driver.run(&mut running, plan.timeout);
                break;
            }
            continue;
        }
        injections += 1;
        if let (1, Some(h)) = (injections, hit.clone()) {
            if !plan.model.repeats() {
                // Single-flip campaign: keep the hit for Table 8 / Table
                // 10 attribution and run the rest out.
                return finish_run(
                    plan,
                    seed,
                    running,
                    injections,
                    induced,
                    Some(h),
                    watched,
                    &mut net_driver,
                );
            }
        }
        // Schedule the next injection (repeat protocols) or just observe.
        if plan.model.repeats() {
            next_injection = running.cluster.now()
                + rng.uniform_duration(SimDuration::from_millis(1500), SimDuration::from_secs(4));
        } else {
            next_injection = plan.timeout;
        }
    }

    if induced.is_none() {
        if let Some(pid) = watched {
            induced = classify_target_state(&running, pid, &plan.model);
        }
    }
    finish_run(plan, seed, running, injections, induced, None, watched, &mut net_driver)
}

#[allow(clippy::too_many_arguments)]
fn finish_run(
    plan: &RunPlan,
    seed: u64,
    mut running: Running,
    injections: u32,
    mut induced: Option<FailureClass>,
    heap_hit: Option<HeapHit>,
    watched: Option<Pid>,
    net_driver: &mut NetFaultDriver<'_>,
) -> (RunResult, Running) {
    // If we returned early (single heap flip), keep running to the end.
    if !running.all_done() && running.cluster.now() < plan.timeout {
        net_driver.run(&mut running, plan.timeout);
    }
    if induced.is_none() {
        if let Some(pid) = watched {
            induced = classify_target_state(&running, pid, &plan.model);
        }
    }
    let scenario = &plan.scenario;
    let slots = scenario.jobs.len() as u64;
    let completed = running.all_done();
    let mut perceived_all = Vec::new();
    let mut actual_all = Vec::new();
    let mut restarts = 0;
    for s in 0..slots {
        let times = running.job_times(s);
        perceived_all.push(times.as_ref().and_then(|t| t.perceived()).map(|d| d.as_secs_f64()));
        actual_all.push(times.as_ref().and_then(|t| t.actual()).map(|d| d.as_secs_f64()));
        restarts += times.map(|t| t.restarts).unwrap_or(0);
    }
    let output = verify_outputs(&running, scenario);
    let system_failure = if completed { None } else { Some(classify_system_failure(&running)) };
    let recovery_times =
        running.recovery_times().iter().map(|d| d.as_secs_f64()).collect::<Vec<_>>();
    let assertion_fired = running.cluster.trace().any(TraceEvent::AssertionFired);
    let correlated = plan.target.is_sift_process() && restarts > 0;
    (
        RunResult {
            seed,
            injections,
            induced,
            completed,
            system_failure,
            output,
            perceived: perceived_all.first().copied().flatten(),
            actual: actual_all.first().copied().flatten(),
            perceived_all,
            actual_all,
            restarts,
            recovery_times,
            correlated,
            assertion_fired,
            heap_hit,
            net_faults_applied: net_driver.applied(),
        },
        running,
    )
}

fn exposure_start(target: &Target, submit: SimDuration) -> SimDuration {
    match target {
        // The FTM and Heartbeat ARMOR exist before submission; injecting
        // during setup/teardown is part of the experiment (Figure 7).
        Target::Ftm => SimDuration::from_secs(2),
        Target::Heartbeat => SimDuration::from_secs(4),
        // Execution ARMORs / app processes appear after submission.
        _ => submit + SimDuration::from_millis(700),
    }
}

fn app_nominal(scenario: &Scenario) -> SimDuration {
    let job = scenario.jobs.first();
    match job.map(|j| j.app.as_str()) {
        Some("otis") => scenario.otis.nominal(),
        Some("imgpipe") => scenario.pipeline.nominal(),
        _ => scenario.texture.nominal_per_image() * scenario.texture.images.max(1) as u64,
    }
}

fn resolve_target(running: &Running, target: &Target, rng: &mut SimRng) -> Option<Pid> {
    let cluster = &running.cluster;
    let mut candidates: Vec<Pid> = cluster
        .all_procs()
        .into_iter()
        .filter(|p| cluster.name_of(*p).map(|n| target.matches(n)).unwrap_or(false))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_unstable();
    Some(candidates[rng.index(candidates.len())])
}

/// Classifies the watched process's current condition (Table 6 columns):
/// stopped → hang, exited → by exit status, still running cleanly →
/// `None`. Public so external drivers (the `ree-mc` interleaving
/// explorer) classify manually-driven runs identically to [`execute`].
pub fn classify_target_state(
    running: &Running,
    pid: Pid,
    model: &ErrorModel,
) -> Option<FailureClass> {
    let cluster = &running.cluster;
    if cluster.is_stopped(pid) {
        return Some(FailureClass::Hang);
    }
    if let Some((_, status)) = cluster.exit_status(pid) {
        return match status {
            ExitStatus::Killed(Signal::Segv) => Some(FailureClass::SegFault),
            ExitStatus::Killed(Signal::Ill) => Some(FailureClass::IllegalInstruction),
            ExitStatus::Aborted(_) => Some(FailureClass::Assertion),
            ExitStatus::Killed(Signal::Int) | ExitStatus::Killed(Signal::Stop) => {
                Some(FailureClass::InjectedSignal)
            }
            ExitStatus::Killed(Signal::Kill) => {
                // SIGKILL has three sources: the daemon resolving a hang
                // (a real induced failure), a restart sweep, and the
                // normal uninstall at completion (not failures).
                if cluster.trace().any(TraceEvent::FaultInducedHang)
                    || cluster.trace().any(TraceEvent::HangDetected)
                {
                    Some(FailureClass::Hang)
                } else if matches!(model, ErrorModel::Sigstop) {
                    Some(FailureClass::InjectedSignal)
                } else {
                    None
                }
            }
            ExitStatus::Exited(0) => None,
            _ => Some(FailureClass::Other),
        };
    }
    None
}

/// Aggregated output verdict over every product of every job.
pub fn verify_outputs(running: &Running, scenario: &Scenario) -> Verdict {
    let fs = running.cluster.remote_fs_ref();
    let mut worst = Verdict::Correct;
    for (slot, job) in scenario.jobs.iter().enumerate() {
        match job.app.as_str() {
            "otis" => {
                for frame in 0..scenario.otis.frames {
                    match verify_otis(fs, "otis", slot as u32, frame, scenario.otis.frame_px) {
                        Verdict::Missing => return Verdict::Missing,
                        Verdict::Incorrect => worst = Verdict::Incorrect,
                        Verdict::Correct => {}
                    }
                }
            }
            "imgpipe" => {
                for frame in 0..scenario.pipeline.frames {
                    match verify_pipeline(
                        fs,
                        "imgpipe",
                        slot as u32,
                        frame,
                        scenario.pipeline.frame_px,
                    ) {
                        Verdict::Missing => return Verdict::Missing,
                        Verdict::Incorrect => worst = Verdict::Incorrect,
                        Verdict::Correct => {}
                    }
                }
            }
            _ => {
                for image in 0..scenario.texture.images {
                    match verify_texture(
                        fs,
                        &job.app,
                        slot as u32,
                        image,
                        scenario.texture.image_px,
                        scenario.texture.tile_px,
                        scenario.texture.clusters,
                    ) {
                        Verdict::Missing => return Verdict::Missing,
                        Verdict::Incorrect => worst = Verdict::Incorrect,
                        Verdict::Correct => {}
                    }
                }
            }
        }
    }
    worst
}

/// Attributes a non-completed run to the first SIFT phase that failed
/// (§4.2's system-failure taxonomy), from the trace and job-times
/// records. Public for the same reason as [`classify_target_state`].
pub fn classify_system_failure(running: &Running) -> SystemFailure {
    let trace = running.cluster.trace();
    let times = running.job_times(0);
    let submitted = times.as_ref().map(|t| t.submitted.is_some()).unwrap_or(false);
    let started = times.as_ref().map(|t| t.started.is_some()).unwrap_or(false);
    if !submitted || !trace.any(TraceEvent::SubmissionAccepted) {
        return SystemFailure::UnableToRegisterDaemons;
    }
    if trace.count_of(TraceEvent::ExecArmorInstalled) == 0 {
        return SystemFailure::UnableToInstallExecArmors;
    }
    if !started {
        return SystemFailure::UnableToStartApplication;
    }
    // Did the application actually finish its science? Either the FTM
    // recorded the end, or a rank announced clean termination that the
    // environment then failed to act on.
    let ended = times.as_ref().map(|t| t.ended.is_some()).unwrap_or(false);
    if ended || trace.count_of(TraceEvent::AppTerminated) > 0 {
        return SystemFailure::UnableToRecognizeCompletion;
    }
    SystemFailure::AppDidNotComplete
}
