//! Error models (Table 2), targets, and outcome taxonomy (§4.2).

use ree_os::HeapTarget;

/// What process class a campaign injects into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// An MPI rank of the slot-0 application (uniformly chosen).
    App,
    /// An MPI rank of the named application (two-app experiments).
    NamedApp(String),
    /// The Fault Tolerance Manager.
    Ftm,
    /// One of the slot-0 Execution ARMORs (uniformly chosen).
    ExecArmor,
    /// The Heartbeat ARMOR.
    Heartbeat,
    /// Any SIFT ARMOR other than daemons (two-app experiments average
    /// over FTM + Execution ARMORs + Heartbeat ARMOR).
    AnyArmor,
}

impl Target {
    /// Name predicate used to resolve the target in the process table.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            Target::App => name.contains("-r") && !name.starts_with("exec"),
            Target::NamedApp(app) => name.starts_with(app.as_str()) && name.contains("-r"),
            Target::Ftm => name == "ftm",
            Target::ExecArmor => name.starts_with("exec"),
            Target::Heartbeat => name == "heartbeat",
            Target::AnyArmor => name == "ftm" || name == "heartbeat" || name.starts_with("exec"),
        }
    }

    /// True for SIFT-process targets (used for correlated-failure
    /// accounting).
    pub fn is_sift_process(&self) -> bool {
        !matches!(self, Target::App | Target::NamedApp(_))
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::App => write!(f, "Application"),
            Target::NamedApp(a) => write!(f, "{a} app"),
            Target::Ftm => write!(f, "FTM"),
            Target::ExecArmor => write!(f, "Execution ARMOR"),
            Target::Heartbeat => write!(f, "Heartbeat ARMOR"),
            Target::AnyArmor => write!(f, "ARMORs"),
        }
    }
}

/// The error models of Table 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorModel {
    /// "Lynx operating system delivers a SIGINT signal to the target
    /// process" — clean crash.
    Sigint,
    /// "… a SIGSTOP signal …" — clean hang.
    Sigstop,
    /// "Bits in the registers of the target process are periodically
    /// flipped until a failure is induced."
    Register,
    /// "Bits in the text segment … periodically flipped until a failure
    /// is induced."
    TextSegment,
    /// "Bits in allocated regions of the heap memory … periodically
    /// flipped" (§7.1: until the target fails).
    Heap,
    /// A single flip with a §7.2-style constraint (data-only and/or a
    /// specific element).
    HeapSingle(HeapTarget),
}

impl ErrorModel {
    /// True for the repeat-until-failure protocols.
    pub fn repeats(&self) -> bool {
        matches!(self, ErrorModel::Register | ErrorModel::TextSegment | ErrorModel::Heap)
    }
}

impl std::fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorModel::Sigint => write!(f, "SIGINT"),
            ErrorModel::Sigstop => write!(f, "SIGSTOP"),
            ErrorModel::Register => write!(f, "Register"),
            ErrorModel::TextSegment => write!(f, "Text segment"),
            ErrorModel::Heap => write!(f, "Heap"),
            ErrorModel::HeapSingle(t) => write!(f, "Heap single ({t:?})"),
        }
    }
}

/// Classification of the failure induced in the target (Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Invalid memory access (SIGSEGV).
    SegFault,
    /// Invalid opcode (SIGILL).
    IllegalInstruction,
    /// Ceased making progress.
    Hang,
    /// Internal assertion/self-check killed the process.
    Assertion,
    /// The injected signal itself terminated/stopped the process
    /// (SIGINT/SIGSTOP campaigns).
    InjectedSignal,
    /// Other abnormal end (e.g. self-abort on a blocked SIFT call).
    Other,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureClass::SegFault => "seg fault",
            FailureClass::IllegalInstruction => "illegal instr",
            FailureClass::Hang => "hang",
            FailureClass::Assertion => "assertion",
            FailureClass::InjectedSignal => "injected signal",
            FailureClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Phase-classified system failures (§4.2 definition; Table 8 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemFailure {
    /// The environment never became able to accept the submission.
    UnableToRegisterDaemons,
    /// Execution ARMORs were never installed for the application.
    UnableToInstallExecArmors,
    /// ARMORs installed but the application never started.
    UnableToStartApplication,
    /// The application finished its science but the SIFT environment
    /// never recognised completion.
    UnableToRecognizeCompletion,
    /// The application could not complete within the timeout.
    AppDidNotComplete,
}

impl std::fmt::Display for SystemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SystemFailure::UnableToRegisterDaemons => "unable to register daemons",
            SystemFailure::UnableToInstallExecArmors => "unable to install Execution ARMORs",
            SystemFailure::UnableToStartApplication => "unable to start application",
            SystemFailure::UnableToRecognizeCompletion => "unable to recognize completion",
            SystemFailure::AppDidNotComplete => "application did not complete",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_predicates() {
        assert!(Target::App.matches("texture-r0-a0"));
        assert!(!Target::App.matches("exec0_0"));
        assert!(Target::Ftm.matches("ftm"));
        assert!(!Target::Ftm.matches("heartbeat"));
        assert!(Target::ExecArmor.matches("exec0_1"));
        assert!(Target::Heartbeat.matches("heartbeat"));
        assert!(Target::AnyArmor.matches("ftm"));
        assert!(Target::AnyArmor.matches("exec1_0"));
        assert!(!Target::AnyArmor.matches("daemon0"));
        assert!(Target::NamedApp("otis".into()).matches("otis-r1-a0"));
        assert!(!Target::NamedApp("otis".into()).matches("texture-r1-a0"));
    }

    #[test]
    fn sift_process_classification() {
        assert!(Target::Ftm.is_sift_process());
        assert!(Target::ExecArmor.is_sift_process());
        assert!(!Target::App.is_sift_process());
    }

    #[test]
    fn model_repetition_protocol() {
        assert!(!ErrorModel::Sigint.repeats());
        assert!(ErrorModel::Register.repeats());
        assert!(ErrorModel::Heap.repeats());
        assert!(!ErrorModel::HeapSingle(HeapTarget::DataOnly).repeats());
    }

    #[test]
    fn displays() {
        assert_eq!(ErrorModel::Sigint.to_string(), "SIGINT");
        assert_eq!(FailureClass::SegFault.to_string(), "seg fault");
        assert_eq!(
            SystemFailure::UnableToInstallExecArmors.to_string(),
            "unable to install Execution ARMORs"
        );
    }
}
