//! Adaptive confidence-targeted campaigns: many `(RunPlan, seed-range)`
//! arms driven concurrently in batches, each arm stopping as soon as
//! the Wilson confidence interval around its key proportion is tight —
//! "every cell to ±2% at 95%" instead of "512 runs per cell".
//!
//! # Determinism contract
//!
//! An arm's reported results are a **pure function of `(plan, seed0,
//! rule)`** — independent of the worker-thread count, of the other
//! arms in the sweep, and of scheduling order. The engine guarantees
//! this by construction:
//!
//! * an arm consumes seeds `seed0, seed0+1, …` strictly in order, and
//!   its aggregate is folded in seed order;
//! * the stopping rule is evaluated at **every batch boundary** (every
//!   `rule.batch` runs, plus the budget edge `rule.max_runs`), never at
//!   scheduler-dependent instants;
//! * an arm stops at the *first* qualifying boundary where the rule is
//!   satisfied. If the scheduler optimistically executed runs past that
//!   boundary in the same round, they are discarded, not reported.
//!
//! What *is* scheduling-dependent — how many optimistic runs were
//! executed and how many rounds the sweep took — is reported separately
//! on [`AdaptiveReport`] and excluded from the per-arm results.
//!
//! # Reallocation
//!
//! Each round grants every live arm one batch (progress guarantee) and
//! hands the remaining round budget to the arms with the **widest**
//! current intervals, so runs drain toward high-variance cells exactly
//! as Atanassov's adaptive situational-analysis sweeps allocate
//! samples. Arms whose interval is already tight (or whose budget is
//! exhausted) stop and release their boot snapshot; snapshots are
//! booted lazily on an arm's first scheduled batch, so at most the
//! currently-live arms keep snapshots resident.

use crate::builder::default_threads;
use crate::campaign::Aggregate;
use crate::error::CampaignError;
use crate::runner::{execute_warm, RunGeometry, RunPlan, RunResult};
use ree_apps::BootSnapshot;
use ree_stats::Proportion;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Which campaign proportion the stopping rule targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CiMetric {
    /// Successful recoveries out of injected runs (the paper's headline
    /// rate — near 1 for the SIFT processes, so intervals tighten fast).
    #[default]
    RecoveryRate,
    /// Induced failures out of injected runs.
    FailureRate,
}

impl CiMetric {
    /// Extracts the targeted proportion from an aggregate. Trials are
    /// the injected runs: a run whose sampled injection instant fell
    /// after completion carries no evidence about the rate.
    pub fn proportion(&self, agg: &Aggregate) -> Proportion {
        let trials = agg.errors_injected;
        let successes = match self {
            CiMetric::RecoveryRate => agg.successful_recoveries,
            CiMetric::FailureRate => agg.failures,
        };
        // Clamp defensively: `Proportion::new` rejects k > n, and the
        // classifier can in pathological edge cases attribute an
        // induced failure to a run whose flip was never counted.
        Proportion::new(successes.min(trials), trials)
    }
}

/// When to stop an adaptive arm.
///
/// The rule is satisfied at the first batch boundary (a multiple of
/// [`batch`](StoppingRule::batch), at least
/// [`min_runs`](StoppingRule::min_runs)) where the Wilson interval
/// half-width of the targeted proportion is at most
/// [`half_width`](StoppingRule::half_width); the arm unconditionally
/// stops once [`max_runs`](StoppingRule::max_runs) seeds are spent.
///
/// # Examples
///
/// ```
/// use ree_inject::StoppingRule;
/// // "±2% at 95% on the recovery rate, in batches of 32, cap 512" —
/// // the defaults, spelled out.
/// let rule = StoppingRule::default()
///     .half_width(0.02)
///     .confidence(0.95)
///     .batch(32)
///     .max_runs(512);
/// assert_eq!(rule.batch, 32);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StoppingRule {
    /// The proportion the interval targets.
    pub metric: CiMetric,
    /// Two-sided confidence level of the Wilson interval.
    pub confidence: f64,
    /// Target half-width ("± this much") of the interval.
    pub half_width: f64,
    /// Batch granularity: the rule is evaluated every `batch` runs.
    pub batch: u32,
    /// Runs an arm must spend before the target can stop it (budget
    /// exhaustion still applies below this).
    pub min_runs: u32,
    /// Hard per-arm run budget.
    pub max_runs: u32,
}

impl Default for StoppingRule {
    /// ±2% at 95% confidence on the recovery rate, batches of 32, at
    /// least 32 and at most 512 runs — the paper's fixed table size as
    /// the budget ceiling.
    fn default() -> Self {
        StoppingRule {
            metric: CiMetric::RecoveryRate,
            confidence: 0.95,
            half_width: 0.02,
            batch: 32,
            min_runs: 32,
            max_runs: 512,
        }
    }
}

impl StoppingRule {
    /// Sets the targeted metric.
    pub fn metric(mut self, metric: CiMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the confidence level (e.g. `0.95`).
    pub fn confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the target interval half-width (e.g. `0.02` for ±2%).
    pub fn half_width(mut self, half_width: f64) -> Self {
        self.half_width = half_width;
        self
    }

    /// Sets the batch granularity.
    pub fn batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the minimum runs before the target can stop an arm.
    pub fn min_runs(mut self, min_runs: u32) -> Self {
        self.min_runs = min_runs;
        self
    }

    /// Sets the hard per-arm run budget.
    pub fn max_runs(mut self, max_runs: u32) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Is the target met by this aggregate?
    pub fn satisfied_by(&self, agg: &Aggregate) -> bool {
        self.metric.proportion(agg).wilson_half_width(self.confidence) <= self.half_width
    }

    /// Checks the rule's structural invariants, reporting a typed
    /// [`CampaignError`] instead of panicking — the form a distributed
    /// supervisor wants at the trust boundary, where a malformed rule
    /// must become an error frame rather than a dead worker.
    pub fn try_validate(&self) -> Result<(), CampaignError> {
        let bad = |why: &str| Err(CampaignError::InvalidRule(why.to_owned()));
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return bad("confidence must be in (0,1)");
        }
        if self.half_width.is_nan() || self.half_width <= 0.0 {
            return bad("half-width must be positive");
        }
        if self.batch < 1 {
            return bad("batch must be at least 1");
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// One sweep arm: a labelled `(RunPlan, seed-range)` cell.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Cell label carried into the report (e.g. `"SIGINT / app"`).
    pub label: String,
    /// The plan every run of this arm executes.
    pub plan: RunPlan,
    /// First seed; the arm's run `i` uses `seed0 + i`.
    pub seed0: u64,
}

impl Arm {
    /// Creates a labelled arm.
    pub fn new(label: impl Into<String>, plan: RunPlan, seed0: u64) -> Self {
        Arm { label: label.into(), plan, seed0 }
    }
}

/// What one arm spent and concluded. Deterministic for a given
/// `(plan, seed0, rule)` — see the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct ArmReport {
    /// The arm's label.
    pub label: String,
    /// The arm's first seed.
    pub seed0: u64,
    /// Runs reported (seeds `seed0 .. seed0 + runs` in order).
    pub runs: u32,
    /// Did the arm reach the interval target (vs exhausting its
    /// budget)?
    pub target_met: bool,
    /// Aggregate over exactly the reported runs.
    pub aggregate: Aggregate,
    /// The targeted proportion at stop time.
    pub proportion: Proportion,
    /// Achieved Wilson half-width at the rule's confidence.
    pub half_width: f64,
}

impl ArmReport {
    /// `point ± half-width` of the targeted proportion, in percent.
    pub fn display_rate(&self) -> String {
        format!("{:.1}% ± {:.1}%", self.proportion.point() * 100.0, self.half_width * 100.0)
    }
}

/// Sweep-level outcome: per-arm reports plus scheduling statistics.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// One report per arm, in input order. Deterministic.
    pub arms: Vec<ArmReport>,
    /// Batch rounds the sweep took. Scheduling-dependent (thread count
    /// changes it) — excluded from the determinism contract.
    pub rounds: u32,
    /// Runs actually executed, including optimistic runs past a stop
    /// boundary that were discarded. Scheduling-dependent.
    pub runs_executed: u64,
}

impl AdaptiveReport {
    /// Total runs reported across arms (the determinism-covered spend).
    pub fn runs_reported(&self) -> u64 {
        self.arms.iter().map(|a| u64::from(a.runs)).sum()
    }
}

/// Per-arm engine state. The boot snapshot is created lazily on the
/// arm's first scheduled batch and dropped as soon as the arm stops, so
/// resident snapshots are bounded by the live arms.
struct ArmState {
    agg: Aggregate,
    folded: u32,
    stopped: bool,
    target_met: bool,
    boot: Option<Arc<(RunGeometry, BootSnapshot)>>,
}

/// One scheduled chunk: `len` runs of arm `arm` starting at seed offset
/// `start` (arm-local).
struct Task {
    arm: usize,
    start: u32,
    len: u32,
    boot: Arc<(RunGeometry, BootSnapshot)>,
}

/// Runs an adaptive sweep over `arms` with automatic thread selection.
/// See the module docs for the stopping and determinism semantics.
pub fn run_arms(arms: &[Arm], rule: &StoppingRule) -> AdaptiveReport {
    run_arms_with_threads(arms, rule, None)
}

/// [`run_arms`] with an explicit worker-thread count. The per-arm
/// reports are identical for every `threads` value (including 1); only
/// the scheduling statistics differ.
pub fn run_arms_with_threads(
    arms: &[Arm],
    rule: &StoppingRule,
    threads: Option<usize>,
) -> AdaptiveReport {
    rule.validate();
    let threads = threads.unwrap_or_else(default_threads).max(1);
    let mut states: Vec<ArmState> = arms
        .iter()
        .map(|_| ArmState {
            agg: Aggregate::default(),
            folded: 0,
            stopped: false,
            target_met: false,
            boot: None,
        })
        .collect();
    let mut rounds = 0u32;
    let mut runs_executed = 0u64;

    loop {
        // Retire arms with no budget left (covers `max_runs == 0`).
        for s in states.iter_mut().filter(|s| !s.stopped) {
            if s.folded >= rule.max_runs {
                s.stopped = true;
                s.target_met = rule.satisfied_by(&s.agg);
                s.boot = None;
            }
        }
        let live: Vec<usize> = (0..arms.len()).filter(|&i| !states[i].stopped).collect();
        if live.is_empty() {
            break;
        }
        rounds += 1;

        // Allocate this round's batches: one per live arm, then the
        // rest of the round budget to the widest intervals (ties broken
        // by arm index, so allocation itself is deterministic too).
        let round_chunks = live.len().max(threads);
        let mut alloc = vec![0u32; arms.len()];
        let chunk_cap = |i: usize| {
            let remaining = rule.max_runs - states[i].folded;
            remaining.div_ceil(rule.batch)
        };
        for &i in &live {
            alloc[i] = chunk_cap(i).min(1);
        }
        let mut extras = round_chunks.saturating_sub(live.len());
        if extras > 0 {
            let mut order: Vec<usize> = live.clone();
            order.sort_by(|&a, &b| {
                let wa = rule.metric.proportion(&states[a].agg).wilson_half_width(rule.confidence);
                let wb = rule.metric.proportion(&states[b].agg).wilson_half_width(rule.confidence);
                wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            'grant: loop {
                let mut granted_any = false;
                for &i in &order {
                    if extras == 0 {
                        break 'grant;
                    }
                    if alloc[i] < chunk_cap(i) {
                        alloc[i] += 1;
                        extras -= 1;
                        granted_any = true;
                    }
                }
                if !granted_any {
                    break;
                }
            }
        }

        // Boot lazily: only arms actually scheduled this round pay for
        // (and hold) a snapshot.
        for &i in &live {
            if alloc[i] > 0 && states[i].boot.is_none() {
                let plan = &arms[i].plan;
                plan.scenario.warm_inputs();
                let geometry = plan.geometry();
                let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
                states[i].boot = Some(Arc::new((geometry, snapshot)));
            }
        }

        // Build the round's task list in (arm, offset) order.
        let mut tasks: Vec<Task> = Vec::new();
        for &i in &live {
            let boot = states[i].boot.as_ref().expect("scheduled arm is booted").clone();
            for k in 0..alloc[i] {
                let start = states[i].folded + k * rule.batch;
                let len = rule.batch.min(rule.max_runs - start);
                if len == 0 {
                    break;
                }
                tasks.push(Task { arm: i, start, len, boot: boot.clone() });
            }
        }

        let chunk_results = execute_round(arms, &tasks, threads);
        runs_executed += chunk_results.iter().map(|c| c.len() as u64).sum::<u64>();

        // Fold per arm in seed order, checking the rule at every batch
        // boundary; results past the first satisfied boundary are
        // discarded (see the determinism contract).
        for (task, results) in tasks.iter().zip(chunk_results) {
            let s = &mut states[task.arm];
            if s.stopped {
                continue;
            }
            debug_assert_eq!(task.start, s.folded, "chunks fold in seed order");
            for r in results {
                s.agg.accept(&r);
                s.folded += 1;
                let at_boundary = s.folded.is_multiple_of(rule.batch) || s.folded == rule.max_runs;
                if at_boundary && s.folded >= rule.min_runs && rule.satisfied_by(&s.agg) {
                    s.stopped = true;
                    s.target_met = true;
                    s.boot = None;
                    break;
                }
            }
        }
    }

    let arms_out = arms
        .iter()
        .zip(&states)
        .map(|(arm, s)| {
            let proportion = rule.metric.proportion(&s.agg);
            ArmReport {
                label: arm.label.clone(),
                seed0: arm.seed0,
                runs: s.folded,
                target_met: s.target_met,
                aggregate: s.agg.clone(),
                proportion,
                half_width: proportion.wilson_half_width(rule.confidence),
            }
        })
        .collect();
    AdaptiveReport { arms: arms_out, rounds, runs_executed }
}

/// Executes one round's chunks across `threads` workers, returning each
/// chunk's results in task order. Within a chunk, runs execute (and are
/// returned) in seed order.
fn execute_round(arms: &[Arm], tasks: &[Task], threads: usize) -> Vec<Vec<RunResult>> {
    let run_chunk = |task: &Task| -> Vec<RunResult> {
        let (geometry, snapshot) = &*task.boot;
        let arm = &arms[task.arm];
        (0..u64::from(task.len))
            .map(|j| {
                execute_warm(&arm.plan, geometry, snapshot, arm.seed0 + u64::from(task.start) + j)
            })
            .collect()
    };
    let workers = threads.min(tasks.len()).max(1);
    if workers == 1 {
        return tasks.iter().map(run_chunk).collect();
    }
    let mut out: Vec<Vec<RunResult>> = (0..tasks.len()).map(|_| Vec::new()).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<RunResult>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let run_chunk = &run_chunk;
            scope.spawn(move || loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                if tx.send((t, run_chunk(&tasks[t]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (t, results) in rx {
            out[t] = results;
        }
    });
    out
}
