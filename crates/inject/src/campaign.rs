//! Campaign aggregates and the deprecated free-function campaign API.
//!
//! The executor itself lives behind the [`Campaign`] builder (see
//! `builder.rs`); this module keeps the [`Aggregate`] table view and
//! the historical `run_campaign*` entry points, now thin deprecated
//! shims over the builder.

use crate::builder::Campaign;
use crate::model::{FailureClass, SystemFailure};
use crate::runner::{RunPlan, RunResult};
use ree_stats::Summary;

/// Runs `runs` seeded executions of `plan`, in parallel across available
/// cores. Results are returned in seed order (deterministic).
#[deprecated(since = "0.1.0", note = "use `Campaign::new(plan).runs(..).seed(..).collect()`")]
pub fn run_campaign(plan: &RunPlan, runs: u32, seed0: u64) -> Vec<RunResult> {
    Campaign::new(plan).runs(runs).seed(seed0).collect()
}

/// [`run_campaign`] with an explicit worker-thread count. The output is
/// identical for every `threads` value (including 1).
#[deprecated(
    since = "0.1.0",
    note = "use `Campaign::new(plan).runs(..).seed(..).threads(..).collect()`"
)]
pub fn run_campaign_with_threads(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    threads: usize,
) -> Vec<RunResult> {
    Campaign::new(plan).runs(runs).seed(seed0).threads(threads).collect()
}

/// Streams a campaign through a fold instead of materialising the full
/// result vector; see [`Campaign::fold`].
#[deprecated(since = "0.1.0", note = "use `Campaign::new(plan).runs(..).seed(..).fold(..)`")]
pub fn run_campaign_fold<A>(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    init: A,
    fold: impl FnMut(&mut A, RunResult),
) -> A {
    Campaign::new(plan).runs(runs).seed(seed0).fold(init, fold)
}

/// [`run_campaign_fold`] with an explicit worker-thread count.
#[deprecated(
    since = "0.1.0",
    note = "use `Campaign::new(plan).runs(..).seed(..).threads(..).fold(..)`"
)]
pub fn run_campaign_fold_with_threads<A>(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    threads: usize,
    init: A,
    fold: impl FnMut(&mut A, RunResult),
) -> A {
    Campaign::new(plan).runs(runs).seed(seed0).threads(threads).fold(init, fold)
}

/// Runs a campaign and aggregates it on the fly — the streaming
/// equivalent of `Aggregate::from_results(&run_campaign(..))`.
#[deprecated(since = "0.1.0", note = "use `Campaign::new(plan).runs(..).seed(..).aggregate()`")]
pub fn run_campaign_aggregate(plan: &RunPlan, runs: u32, seed0: u64) -> Aggregate {
    Campaign::new(plan).runs(runs).seed(seed0).aggregate()
}

/// Aggregate view over campaign results (one paper-table row).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Runs in which at least one error was injected.
    pub errors_injected: u64,
    /// Runs in which a failure was induced in the target.
    pub failures: u64,
    /// Runs that recovered (completed with correct output after
    /// injection).
    pub successful_recoveries: u64,
    /// System failures by phase.
    pub system_failures: Vec<SystemFailure>,
    /// Failure classification counts.
    pub seg_faults: u64,
    /// Illegal-instruction count.
    pub illegal_instrs: u64,
    /// Hang count.
    pub hangs: u64,
    /// Assertion/self-check count.
    pub assertions: u64,
    /// Perceived execution time, seconds.
    pub perceived: Summary,
    /// Actual execution time, seconds.
    pub actual: Summary,
    /// SIFT recovery time, seconds.
    pub recovery: Summary,
    /// Correlated failures (SIFT failure → app restart).
    pub correlated: u64,
    /// Incorrect-output runs.
    pub incorrect_output: u64,
    /// Runs with no observable effect (injected runs only — a run where
    /// no error was injected has nothing to have an effect).
    pub no_effect: u64,
}

impl Aggregate {
    /// Folds one run into the aggregate.
    pub fn accept(&mut self, r: &RunResult) {
        if r.injections > 0 {
            self.errors_injected += 1;
        }
        if let Some(class) = r.induced {
            self.failures += 1;
            match class {
                FailureClass::SegFault => self.seg_faults += 1,
                FailureClass::IllegalInstruction => self.illegal_instrs += 1,
                FailureClass::Hang => self.hangs += 1,
                FailureClass::Assertion => self.assertions += 1,
                FailureClass::InjectedSignal | FailureClass::Other => {}
            }
        }
        if r.injections > 0 && r.recovered() {
            self.successful_recoveries += 1;
        }
        if let Some(sf) = r.system_failure {
            self.system_failures.push(sf);
        }
        if let Some(p) = r.perceived {
            if r.completed {
                self.perceived.push(p);
            }
        }
        if let Some(a) = r.actual {
            if r.completed {
                self.actual.push(a);
            }
        }
        for rec in &r.recovery_times {
            self.recovery.push(*rec);
        }
        if r.correlated {
            self.correlated += 1;
        }
        match r.output {
            ree_apps::Verdict::Incorrect => self.incorrect_output += 1,
            // The paper's no-effect category covers runs in which an
            // error was injected and nothing observable happened; runs
            // with zero injections are not classified at all.
            ree_apps::Verdict::Correct
                if r.injections > 0 && r.completed && r.induced.is_none() && r.restarts == 0 =>
            {
                self.no_effect += 1;
            }
            _ => {}
        }
    }

    /// Builds the aggregate from raw results.
    pub fn from_results(results: &[RunResult]) -> Aggregate {
        let mut agg = Aggregate::default();
        for r in results {
            agg.accept(r);
        }
        agg
    }

    /// Merges another aggregate into this one, as if `other`'s result
    /// stream had been [`accept`](Aggregate::accept)ed here after this
    /// one's. Associative with [`Aggregate::default`] as identity
    /// (counters exactly; the [`Summary`] moments up to floating-point
    /// rounding), which is what enables batch-wise accumulation in the
    /// adaptive engine's sharded future (merge per-process aggregates
    /// instead of shipping every `RunResult`).
    ///
    /// Order matters only for `system_failures`, which concatenates in
    /// argument order — merging seed-ordered shards in seed order keeps
    /// the combined list seed-ordered too.
    pub fn merge(&mut self, other: &Aggregate) {
        self.errors_injected += other.errors_injected;
        self.failures += other.failures;
        self.successful_recoveries += other.successful_recoveries;
        self.system_failures.extend_from_slice(&other.system_failures);
        self.seg_faults += other.seg_faults;
        self.illegal_instrs += other.illegal_instrs;
        self.hangs += other.hangs;
        self.assertions += other.assertions;
        self.perceived.merge(&other.perceived);
        self.actual.merge(&other.actual);
        self.recovery.merge(&other.recovery);
        self.correlated += other.correlated;
        self.incorrect_output += other.incorrect_output;
        self.no_effect += other.no_effect;
    }

    /// Count of system failures of one phase.
    pub fn system_failures_of(&self, phase: SystemFailure) -> u64 {
        self.system_failures.iter().filter(|p| **p == phase).count() as u64
    }
}
