//! Campaign execution: many seeded runs of one (target, model) pair,
//! executed across worker threads, with aggregate views shaped like the
//! paper's tables.

use crate::model::{FailureClass, SystemFailure};
use crate::runner::{execute, RunPlan, RunResult};
use ree_stats::Summary;

/// Runs `runs` seeded executions of `plan`, in parallel across available
/// cores. Results are returned in seed order (deterministic).
pub fn run_campaign(plan: &RunPlan, runs: u32, seed0: u64) -> Vec<RunResult> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
    if runs == 0 {
        return Vec::new();
    }
    let mut results: Vec<Option<RunResult>> = (0..runs).map(|_| None).collect();
    std::thread::scope(|scope| {
        let plan_ref = &*plan;
        let chunks = results.chunks_mut(runs.div_ceil(threads as u32).max(1) as usize);
        for (c, chunk) in chunks.enumerate() {
            let base = c as u64 * runs.div_ceil(threads as u32).max(1) as u64;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let seed = seed0 + base + i as u64;
                    *slot = Some(execute(plan_ref, seed));
                }
            });
        }
    });
    results.into_iter().flatten().collect()
}

/// Aggregate view over campaign results (one paper-table row).
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Runs in which at least one error was injected.
    pub errors_injected: u64,
    /// Runs in which a failure was induced in the target.
    pub failures: u64,
    /// Runs that recovered (completed with correct output after
    /// injection).
    pub successful_recoveries: u64,
    /// System failures by phase.
    pub system_failures: Vec<SystemFailure>,
    /// Failure classification counts.
    pub seg_faults: u64,
    /// Illegal-instruction count.
    pub illegal_instrs: u64,
    /// Hang count.
    pub hangs: u64,
    /// Assertion/self-check count.
    pub assertions: u64,
    /// Perceived execution time, seconds.
    pub perceived: Summary,
    /// Actual execution time, seconds.
    pub actual: Summary,
    /// SIFT recovery time, seconds.
    pub recovery: Summary,
    /// Correlated failures (SIFT failure → app restart).
    pub correlated: u64,
    /// Incorrect-output runs.
    pub incorrect_output: u64,
    /// Runs with no observable effect.
    pub no_effect: u64,
}

impl Aggregate {
    /// Builds the aggregate from raw results.
    pub fn from_results(results: &[RunResult]) -> Aggregate {
        let mut agg = Aggregate::default();
        for r in results {
            if r.injections > 0 {
                agg.errors_injected += 1;
            }
            if let Some(class) = r.induced {
                agg.failures += 1;
                match class {
                    FailureClass::SegFault => agg.seg_faults += 1,
                    FailureClass::IllegalInstruction => agg.illegal_instrs += 1,
                    FailureClass::Hang => agg.hangs += 1,
                    FailureClass::Assertion => agg.assertions += 1,
                    FailureClass::InjectedSignal | FailureClass::Other => {}
                }
            }
            if r.injections > 0 && r.recovered() {
                agg.successful_recoveries += 1;
            }
            if let Some(sf) = r.system_failure {
                agg.system_failures.push(sf);
            }
            if let Some(p) = r.perceived {
                if r.completed {
                    agg.perceived.push(p);
                }
            }
            if let Some(a) = r.actual {
                if r.completed {
                    agg.actual.push(a);
                }
            }
            for rec in &r.recovery_times {
                agg.recovery.push(*rec);
            }
            if r.correlated {
                agg.correlated += 1;
            }
            match r.output {
                ree_apps::Verdict::Incorrect => agg.incorrect_output += 1,
                ree_apps::Verdict::Correct
                    if r.completed && r.induced.is_none() && r.restarts == 0 =>
                {
                    agg.no_effect += 1;
                }
                _ => {}
            }
        }
        agg
    }

    /// Count of system failures of one phase.
    pub fn system_failures_of(&self, phase: SystemFailure) -> u64 {
        self.system_failures.iter().filter(|p| **p == phase).count() as u64
    }
}
