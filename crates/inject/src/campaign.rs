//! Campaign execution: many seeded runs of one (target, model) pair,
//! executed across worker threads, with aggregate views shaped like the
//! paper's tables.
//!
//! Work is distributed by a shared atomic counter, not static chunking:
//! a run that hangs into its timeout occupies one worker while the rest
//! keep draining seeds, so skewed run durations no longer serialise the
//! tail of the campaign. Results are folded back together **in seed
//! order** regardless of which thread produced them, keeping every
//! campaign bit-for-bit deterministic for any thread count.

use crate::model::{FailureClass, SystemFailure};
use crate::runner::{execute_warm, RunPlan, RunResult};
use ree_stats::Summary;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

/// Runs `runs` seeded executions of `plan`, in parallel across available
/// cores. Results are returned in seed order (deterministic).
pub fn run_campaign(plan: &RunPlan, runs: u32, seed0: u64) -> Vec<RunResult> {
    run_campaign_with_threads(plan, runs, seed0, default_threads())
}

/// [`run_campaign`] with an explicit worker-thread count. The output is
/// identical for every `threads` value (including 1).
pub fn run_campaign_with_threads(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    threads: usize,
) -> Vec<RunResult> {
    run_campaign_fold_with_threads(
        plan,
        runs,
        seed0,
        threads,
        Vec::with_capacity(runs as usize),
        |v, r| v.push(r),
    )
}

/// Streams a campaign through a fold instead of materialising the full
/// result vector: each [`RunResult`] is handed to `fold` exactly once,
/// **in seed order**, as soon as every earlier seed has been folded.
/// Peak memory is bounded by the reorder window (a few results per
/// worker — the bounded channel stops workers from racing ahead of a
/// straggler seed) instead of the campaign size.
pub fn run_campaign_fold<A>(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    init: A,
    fold: impl FnMut(&mut A, RunResult),
) -> A {
    run_campaign_fold_with_threads(plan, runs, seed0, default_threads(), init, fold)
}

/// [`run_campaign_fold`] with an explicit worker-thread count.
pub fn run_campaign_fold_with_threads<A>(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    threads: usize,
    init: A,
    mut fold: impl FnMut(&mut A, RunResult),
) -> A {
    let mut acc = init;
    if runs == 0 {
        return acc;
    }
    // Generate the campaign-shared synthetic inputs once, before the
    // workers fan out, so they never race to synthesise the same image.
    plan.scenario.warm_inputs();
    // Boot the SIFT cluster once: every run starts from a fork of this
    // snapshot instead of replaying the identical installation protocol.
    // The geometry (injection window, nominal duration) is likewise
    // derived once; the per-run path only draws the injection instant.
    let geometry = plan.geometry();
    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
    let threads = threads.clamp(1, runs as usize);
    if threads == 1 {
        for i in 0..u64::from(runs) {
            let r = execute_warm(plan, &geometry, &snapshot, seed0 + i);
            fold(&mut acc, r);
        }
        return acc;
    }
    // Workers claim the next seed index from a shared counter (work
    // stealing without a queue) and ship `(index, result)` pairs back;
    // the caller's thread reorders with a small buffer and folds in seed
    // order while workers are still running. The channel is bounded so a
    // straggler seed cannot make the reorder buffer grow with the
    // campaign: once it fills, workers block on send instead of claiming
    // further seeds, capping buffered results at ~2 per worker.
    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::sync_channel::<(u64, RunResult)>(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let geometry = &geometry;
            let snapshot = &snapshot;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= u64::from(runs) {
                    break;
                }
                let r = execute_warm(plan, geometry, snapshot, seed0 + i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<u64, RunResult> = BTreeMap::new();
        let mut expect: u64 = 0;
        for (i, r) in rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&expect) {
                fold(&mut acc, r);
                expect += 1;
            }
        }
        debug_assert_eq!(expect, u64::from(runs), "every seed folded exactly once");
    });
    acc
}

/// Runs a campaign and aggregates it on the fly — the streaming
/// equivalent of `Aggregate::from_results(&run_campaign(..))`.
pub fn run_campaign_aggregate(plan: &RunPlan, runs: u32, seed0: u64) -> Aggregate {
    run_campaign_fold(plan, runs, seed0, Aggregate::default(), |agg, r| agg.accept(&r))
}

/// Aggregate view over campaign results (one paper-table row).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Runs in which at least one error was injected.
    pub errors_injected: u64,
    /// Runs in which a failure was induced in the target.
    pub failures: u64,
    /// Runs that recovered (completed with correct output after
    /// injection).
    pub successful_recoveries: u64,
    /// System failures by phase.
    pub system_failures: Vec<SystemFailure>,
    /// Failure classification counts.
    pub seg_faults: u64,
    /// Illegal-instruction count.
    pub illegal_instrs: u64,
    /// Hang count.
    pub hangs: u64,
    /// Assertion/self-check count.
    pub assertions: u64,
    /// Perceived execution time, seconds.
    pub perceived: Summary,
    /// Actual execution time, seconds.
    pub actual: Summary,
    /// SIFT recovery time, seconds.
    pub recovery: Summary,
    /// Correlated failures (SIFT failure → app restart).
    pub correlated: u64,
    /// Incorrect-output runs.
    pub incorrect_output: u64,
    /// Runs with no observable effect (injected runs only — a run where
    /// no error was injected has nothing to have an effect).
    pub no_effect: u64,
}

impl Aggregate {
    /// Folds one run into the aggregate.
    pub fn accept(&mut self, r: &RunResult) {
        if r.injections > 0 {
            self.errors_injected += 1;
        }
        if let Some(class) = r.induced {
            self.failures += 1;
            match class {
                FailureClass::SegFault => self.seg_faults += 1,
                FailureClass::IllegalInstruction => self.illegal_instrs += 1,
                FailureClass::Hang => self.hangs += 1,
                FailureClass::Assertion => self.assertions += 1,
                FailureClass::InjectedSignal | FailureClass::Other => {}
            }
        }
        if r.injections > 0 && r.recovered() {
            self.successful_recoveries += 1;
        }
        if let Some(sf) = r.system_failure {
            self.system_failures.push(sf);
        }
        if let Some(p) = r.perceived {
            if r.completed {
                self.perceived.push(p);
            }
        }
        if let Some(a) = r.actual {
            if r.completed {
                self.actual.push(a);
            }
        }
        for rec in &r.recovery_times {
            self.recovery.push(*rec);
        }
        if r.correlated {
            self.correlated += 1;
        }
        match r.output {
            ree_apps::Verdict::Incorrect => self.incorrect_output += 1,
            // The paper's no-effect category covers runs in which an
            // error was injected and nothing observable happened; runs
            // with zero injections are not classified at all.
            ree_apps::Verdict::Correct
                if r.injections > 0 && r.completed && r.induced.is_none() && r.restarts == 0 =>
            {
                self.no_effect += 1;
            }
            _ => {}
        }
    }

    /// Builds the aggregate from raw results.
    pub fn from_results(results: &[RunResult]) -> Aggregate {
        let mut agg = Aggregate::default();
        for r in results {
            agg.accept(r);
        }
        agg
    }

    /// Count of system failures of one phase.
    pub fn system_failures_of(&self, phase: SystemFailure) -> u64 {
        self.system_failures.iter().filter(|p| **p == phase).count() as u64
    }
}
