//! Typed campaign errors.
//!
//! The campaign execution path historically treated every malformed
//! input or poisoned run as a programming error and panicked. In-process
//! that is survivable — the process was going down anyway — but a
//! distributed supervisor (`ree-dist`) must be able to *report* a bad
//! batch over the wire instead of aborting the worker, so the
//! supervisor-visible failure modes are typed here and surfaced as
//! `Result`s by [`crate::RunPlan::validate`],
//! [`crate::execute_warm_checked`], and
//! [`crate::StoppingRule::try_validate`].

use std::fmt;

/// A supervisor-visible campaign failure: the plan or rule was
/// malformed, or a run panicked mid-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// The [`crate::RunPlan`] fails validation (out-of-range job nodes,
    /// rank/node mismatch, bad timeout, net-fault endpoints outside the
    /// cluster, …). The message says which check failed.
    InvalidPlan(String),
    /// A [`crate::StoppingRule`] fails validation (confidence outside
    /// `(0,1)`, non-positive half-width, zero batch).
    InvalidRule(String),
    /// A run panicked inside the simulator. The campaign machinery is
    /// deterministic, so the same seed panics everywhere — the message
    /// carries the seed for reproduction.
    RunPanicked {
        /// The seed whose run panicked.
        seed: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidPlan(why) => write!(f, "invalid run plan: {why}"),
            CampaignError::InvalidRule(why) => write!(f, "invalid stopping rule: {why}"),
            CampaignError::RunPanicked { seed, message } => {
                write!(f, "run for seed {seed} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
