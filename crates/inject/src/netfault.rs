//! Network fault plans: link failures, partitions, and correlated
//! multi-link failures as first-class injection targets.
//!
//! The paper's testbed could not exercise interconnect faults — the
//! classic SIFT stressor it names but never runs is a *partition during
//! recovery* (§5.2 attributes the only actual-execution-time overhead
//! of FTM recovery to network contention). A [`NetFault`] describes one
//! such fault: what to sever ([`NetFaultKind`]), when to impose it
//! ([`NetFaultTrigger`]), and for how long. Plans carry any number of
//! them in [`crate::RunPlan::net_faults`], so every campaign surface —
//! the [`crate::Campaign`] builder, the adaptive engine, warm-boot
//! forking — gains network faults without further plumbing.
//!
//! Faults are imposed as administrative endpoint-pair blocks
//! ([`ree_os::Network::set_link_down`]), which work on any topology.
//! The driver is deterministic: activation instants are a pure function
//! of the plan and the run's trace, so campaigns stay byte-identical
//! across thread counts and warm-vs-cold boot.

use ree_apps::Running;
use ree_os::{NodeId, Trace, TraceDetail, TraceEvent, TraceKind};
use ree_sim::{SimDuration, SimTime};

/// What a network fault severs.
#[derive(Clone, Debug, PartialEq)]
pub enum NetFaultKind {
    /// Severs the path between two endpoint nodes (both directions).
    Link {
        /// One endpoint.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// Severs several endpoint pairs at once (correlated link failure —
    /// e.g. every port of one switch card).
    Correlated {
        /// The endpoint pairs to sever together.
        pairs: Vec<(u16, u16)>,
    },
    /// Splits the listed node groups from each other: every pair with
    /// ends in different groups is severed. Traffic *within* a group
    /// (and to nodes not listed) still flows.
    Partition {
        /// The node groups to isolate from each other.
        groups: Vec<Vec<u16>>,
    },
}

impl NetFaultKind {
    /// The endpoint pairs this fault blocks.
    fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        match self {
            NetFaultKind::Link { a, b } => vec![(NodeId(*a), NodeId(*b))],
            NetFaultKind::Correlated { pairs } => {
                pairs.iter().map(|(a, b)| (NodeId(*a), NodeId(*b))).collect()
            }
            NetFaultKind::Partition { groups } => {
                let mut out = Vec::new();
                for (i, ga) in groups.iter().enumerate() {
                    for gb in groups.iter().skip(i + 1) {
                        for &a in ga {
                            for &b in gb {
                                out.push((NodeId(a), NodeId(b)));
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

/// When a network fault is imposed.
#[derive(Clone, Debug, PartialEq)]
pub enum NetFaultTrigger {
    /// At a fixed virtual-time instant.
    At(SimTime),
    /// `delay` after the run's first failure-detection trace event —
    /// the start of a recovery ([`TraceEvent::is_failure_detection`]).
    /// This is the partition-during-recovery stressor: the error model
    /// induces a failure, and the moment the SIFT environment *detects*
    /// it, the network splits under the recovery protocol.
    OnRecoveryStart {
        /// Delay from detection to imposition.
        delay: SimDuration,
    },
}

/// One planned network fault: what, when, and for how long.
#[derive(Clone, Debug, PartialEq)]
pub struct NetFault {
    /// What to sever.
    pub kind: NetFaultKind,
    /// When to impose it.
    pub trigger: NetFaultTrigger,
    /// How long the fault lasts before the links heal.
    pub duration: SimDuration,
}

impl NetFault {
    /// A partition splitting `groups` for `duration`, imposed the
    /// moment the first failure detection starts a recovery.
    pub fn partition_on_recovery(groups: Vec<Vec<u16>>, duration: SimDuration) -> NetFault {
        NetFault {
            kind: NetFaultKind::Partition { groups },
            trigger: NetFaultTrigger::OnRecoveryStart { delay: SimDuration::ZERO },
            duration,
        }
    }

    /// A two-ended link failure over a fixed window.
    pub fn link_at(a: u16, b: u16, at: SimTime, duration: SimDuration) -> NetFault {
        NetFault { kind: NetFaultKind::Link { a, b }, trigger: NetFaultTrigger::At(at), duration }
    }
}

/// Failure-detection events recorded so far (the recovery-start signal).
fn detections(trace: &Trace) -> u64 {
    const DETECTIONS: [TraceEvent; 6] = [
        TraceEvent::HangDetected,
        TraceEvent::CrashDetected,
        TraceEvent::AppHangDetected,
        TraceEvent::AppCrashDetected,
        TraceEvent::FtmFailureDetected,
        TraceEvent::NodeFailureDetected,
    ];
    DETECTIONS.iter().map(|e| trace.count_of(*e)).sum()
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    /// Waiting for the recovery-start signal.
    Waiting,
    /// Will activate at the instant.
    Armed(SimTime),
    /// Active; heals at the instant.
    Active(SimTime),
    /// Healed.
    Done,
}

/// Drives a run while imposing and healing the plan's network faults at
/// the right instants. With an empty plan this is exactly
/// [`Running::run_until_done`] — zero overhead on the hot path.
#[derive(Debug)]
pub(crate) struct NetFaultDriver<'p> {
    faults: &'p [NetFault],
    phase: Vec<Phase>,
    /// Detection events seen; `None` until baselined on first use.
    seen: Option<u64>,
    applied: u32,
}

impl<'p> NetFaultDriver<'p> {
    pub(crate) fn new(faults: &'p [NetFault]) -> Self {
        let phase = faults
            .iter()
            .map(|f| match f.trigger {
                NetFaultTrigger::At(t) => Phase::Armed(t),
                NetFaultTrigger::OnRecoveryStart { .. } => Phase::Waiting,
            })
            .collect();
        NetFaultDriver { faults, phase, seen: None, applied: 0 }
    }

    /// Number of faults that reached their activation instant.
    pub(crate) fn applied(&self) -> u32 {
        self.applied
    }

    /// Runs until every job completes (true) or `horizon` passes
    /// (false), imposing/healing faults on the way.
    pub(crate) fn run(&mut self, running: &mut Running, horizon: SimTime) -> bool {
        if self.faults.is_empty() {
            return running.run_until_done(horizon);
        }
        if self.seen.is_none() {
            self.seen = Some(detections(running.cluster.trace()));
        }
        loop {
            let now = running.cluster.now();
            self.transition(running, now);
            let stop = self.next_transition().map_or(horizon, |t| t.min(horizon));
            let watching = self.faults.iter().zip(&self.phase).any(|(f, p)| {
                *p == Phase::Waiting && matches!(f.trigger, NetFaultTrigger::OnRecoveryStart { .. })
            });
            let baseline = self.seen.unwrap_or(0);
            let done = if watching {
                running.run_until_done_or(stop, |c| detections(c.trace()) > baseline)
            } else {
                running.run_until_done(stop)
            };
            let now = running.cluster.now();
            let count = detections(running.cluster.trace());
            let fired = count > baseline;
            if fired {
                self.seen = Some(count);
                for (i, f) in self.faults.iter().enumerate() {
                    if let (Phase::Waiting, NetFaultTrigger::OnRecoveryStart { delay }) =
                        (self.phase[i], &f.trigger)
                    {
                        self.phase[i] = Phase::Armed(now + *delay);
                    }
                }
            }
            self.transition(running, now);
            if done {
                return true;
            }
            if now >= horizon {
                return false;
            }
            if !fired && now < stop {
                // The event queue drained before the stop instant: no
                // further event can observe the network, so pending
                // fault transitions are moot. Hand control back.
                return false;
            }
        }
    }

    fn next_transition(&self) -> Option<SimTime> {
        self.phase
            .iter()
            .filter_map(|p| match p {
                Phase::Armed(t) | Phase::Active(t) => Some(*t),
                _ => None,
            })
            .min()
    }

    /// Applies every transition due at or before `now`.
    fn transition(&mut self, running: &mut Running, now: SimTime) {
        for i in 0..self.faults.len() {
            match self.phase[i] {
                Phase::Armed(at) if at <= now => {
                    let pairs = self.faults[i].kind.pairs();
                    for &(a, b) in &pairs {
                        running.cluster.network_mut().set_link_down(a, b, true);
                    }
                    running.cluster.trace_mut().push(
                        now,
                        None,
                        TraceKind::Injection,
                        TraceDetail::Custom(
                            format!("net fault imposed: {} pair(s) severed", pairs.len()).into(),
                        ),
                    );
                    self.applied += 1;
                    let until = at + self.faults[i].duration;
                    if until <= now {
                        self.heal(running, i, now);
                    } else {
                        self.phase[i] = Phase::Active(until);
                    }
                }
                Phase::Active(until) if until <= now => {
                    self.heal(running, i, now);
                }
                _ => {}
            }
        }
    }

    fn heal(&mut self, running: &mut Running, i: usize, now: SimTime) {
        for (a, b) in self.faults[i].kind.pairs() {
            running.cluster.network_mut().set_link_down(a, b, false);
        }
        running.cluster.trace_mut().push(
            now,
            None,
            TraceKind::Recovery,
            TraceDetail::Static("net fault healed"),
        );
        self.phase[i] = Phase::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ree_apps::{Scenario, TextureParams};
    use ree_os::{Pid, Signal, TraceRecord};
    use ree_sift::JobSpec;

    /// The model checker's 2-node shrunk texture setup: small enough
    /// that debug-mode trigger tests stay fast.
    fn tiny_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::single_texture(seed);
        s.nodes = 2;
        s.texture = TextureParams {
            image_px: 32,
            tile_px: 8,
            clusters: 2,
            images: 1,
            load_time: SimDuration::from_secs(1),
            filter_time: SimDuration::from_secs(4),
            cluster_time: SimDuration::from_secs(3),
            write_time: SimDuration::from_secs(1),
            pi_period: SimDuration::from_secs(10),
        };
        s.jobs = vec![JobSpec {
            app: "texture".into(),
            ranks: 2,
            nodes: vec![0, 1],
            submit_at: SimDuration::from_secs(5),
        }];
        s
    }

    /// Lowest-pid live application rank (re-resolved after recoveries).
    fn app_pid(running: &Running) -> Pid {
        let c = &running.cluster;
        let mut pids: Vec<Pid> = c
            .all_procs()
            .into_iter()
            .filter(|p| c.name_of(*p).map(|n| n.starts_with("texture-")).unwrap_or(false))
            .collect();
        pids.sort_unstable();
        *pids.first().expect("an application rank is alive")
    }

    fn is_imposition(r: &TraceRecord) -> bool {
        r.kind == TraceKind::Injection
            && match &r.detail {
                TraceDetail::Custom(s) => s.contains("net fault imposed"),
                TraceDetail::Static(s) => s.contains("net fault imposed"),
                _ => false,
            }
    }

    fn imposition_times(running: &Running) -> Vec<SimTime> {
        running.cluster.trace().records().filter(|r| is_imposition(r)).map(|r| r.time).collect()
    }

    fn detection_times(running: &Running) -> Vec<SimTime> {
        running
            .cluster
            .trace()
            .records()
            .filter(|r| r.event.map(|e| e.is_failure_detection()).unwrap_or(false))
            .map(|r| r.time)
            .collect()
    }

    /// `OnRecoveryStart` with zero delay must impose the fault at the
    /// detection instant itself — not one driver hop later.
    #[test]
    fn zero_delay_trigger_imposes_at_the_detection_instant() {
        let mut running = tiny_scenario(3).start();
        running.run_until(SimTime::from_secs(9));
        let faults =
            [NetFault::partition_on_recovery(vec![vec![0], vec![1]], SimDuration::from_secs(2))];
        let mut driver = NetFaultDriver::new(&faults);
        // Baseline the driver on the healthy run, then induce a failure.
        let now = running.cluster.now();
        driver.run(&mut running, now);
        running.cluster.send_signal(app_pid(&running), Signal::Int);
        driver.run(&mut running, SimTime::from_secs(120));
        assert_eq!(driver.applied(), 1);
        let detections = detection_times(&running);
        assert!(!detections.is_empty(), "the kill must be detected");
        assert_eq!(imposition_times(&running), vec![detections[0]]);
    }

    /// A recovery trigger fires once, off the FIRST detection; later
    /// detections in the same run must not re-arm or re-impose anything.
    /// Pin also that *every* waiting fault arms on that first detection
    /// (delays measured from it, not from per-fault detections).
    #[test]
    fn recovery_triggers_arm_once_on_the_first_detection() {
        let mut running = tiny_scenario(4).start();
        running.run_until(SimTime::from_secs(9));
        let faults = [
            NetFault {
                kind: NetFaultKind::Link { a: 0, b: 1 },
                trigger: NetFaultTrigger::OnRecoveryStart { delay: SimDuration::ZERO },
                duration: SimDuration::from_secs(1),
            },
            NetFault {
                kind: NetFaultKind::Link { a: 0, b: 1 },
                trigger: NetFaultTrigger::OnRecoveryStart { delay: SimDuration::from_secs(3) },
                duration: SimDuration::from_secs(1),
            },
        ];
        let mut driver = NetFaultDriver::new(&faults);
        let now = running.cluster.now();
        driver.run(&mut running, now);
        running.cluster.send_signal(app_pid(&running), Signal::Int);
        driver.run(&mut running, SimTime::from_secs(15));
        // A second, consecutive detection from a fresh kill.
        running.cluster.send_signal(app_pid(&running), Signal::Int);
        driver.run(&mut running, SimTime::from_secs(120));
        let detections = detection_times(&running);
        assert!(detections.len() >= 2, "need consecutive detections, got {detections:?}");
        assert_eq!(driver.applied(), 2, "each fault imposed exactly once");
        let imposed = imposition_times(&running);
        assert_eq!(imposed.len(), 2);
        assert_eq!(imposed[0], detections[0]);
        assert_eq!(
            imposed[1],
            detections[0] + SimDuration::from_secs(3),
            "delay measured from the first detection, not a later one"
        );
    }

    /// A waiting trigger whose window closes without any detection (a
    /// fault-free run) must never fire, and must not keep the run from
    /// completing.
    #[test]
    fn waiting_trigger_never_fires_without_a_detection() {
        let mut running = tiny_scenario(5).start();
        let faults =
            [NetFault::partition_on_recovery(vec![vec![0], vec![1]], SimDuration::from_secs(5))];
        let mut driver = NetFaultDriver::new(&faults);
        let done = driver.run(&mut running, SimTime::from_secs(120));
        assert!(done, "fault-free run completes");
        assert_eq!(driver.applied(), 0, "no detection, no imposition");
        assert!(imposition_times(&running).is_empty());
        assert!(detection_times(&running).is_empty());
    }
}
