//! Network fault plans: link failures, partitions, and correlated
//! multi-link failures as first-class injection targets.
//!
//! The paper's testbed could not exercise interconnect faults — the
//! classic SIFT stressor it names but never runs is a *partition during
//! recovery* (§5.2 attributes the only actual-execution-time overhead
//! of FTM recovery to network contention). A [`NetFault`] describes one
//! such fault: what to sever ([`NetFaultKind`]), when to impose it
//! ([`NetFaultTrigger`]), and for how long. Plans carry any number of
//! them in [`crate::RunPlan::net_faults`], so every campaign surface —
//! the [`crate::Campaign`] builder, the adaptive engine, warm-boot
//! forking — gains network faults without further plumbing.
//!
//! Faults are imposed as administrative endpoint-pair blocks
//! ([`ree_os::Network::set_link_down`]), which work on any topology.
//! The driver is deterministic: activation instants are a pure function
//! of the plan and the run's trace, so campaigns stay byte-identical
//! across thread counts and warm-vs-cold boot.

use ree_apps::Running;
use ree_os::{NodeId, Trace, TraceDetail, TraceEvent, TraceKind};
use ree_sim::{SimDuration, SimTime};

/// What a network fault severs.
#[derive(Clone, Debug, PartialEq)]
pub enum NetFaultKind {
    /// Severs the path between two endpoint nodes (both directions).
    Link {
        /// One endpoint.
        a: u16,
        /// The other endpoint.
        b: u16,
    },
    /// Severs several endpoint pairs at once (correlated link failure —
    /// e.g. every port of one switch card).
    Correlated {
        /// The endpoint pairs to sever together.
        pairs: Vec<(u16, u16)>,
    },
    /// Splits the listed node groups from each other: every pair with
    /// ends in different groups is severed. Traffic *within* a group
    /// (and to nodes not listed) still flows.
    Partition {
        /// The node groups to isolate from each other.
        groups: Vec<Vec<u16>>,
    },
}

impl NetFaultKind {
    /// The endpoint pairs this fault blocks.
    fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        match self {
            NetFaultKind::Link { a, b } => vec![(NodeId(*a), NodeId(*b))],
            NetFaultKind::Correlated { pairs } => {
                pairs.iter().map(|(a, b)| (NodeId(*a), NodeId(*b))).collect()
            }
            NetFaultKind::Partition { groups } => {
                let mut out = Vec::new();
                for (i, ga) in groups.iter().enumerate() {
                    for gb in groups.iter().skip(i + 1) {
                        for &a in ga {
                            for &b in gb {
                                out.push((NodeId(a), NodeId(b)));
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

/// When a network fault is imposed.
#[derive(Clone, Debug, PartialEq)]
pub enum NetFaultTrigger {
    /// At a fixed virtual-time instant.
    At(SimTime),
    /// `delay` after the run's first failure-detection trace event —
    /// the start of a recovery ([`TraceEvent::is_failure_detection`]).
    /// This is the partition-during-recovery stressor: the error model
    /// induces a failure, and the moment the SIFT environment *detects*
    /// it, the network splits under the recovery protocol.
    OnRecoveryStart {
        /// Delay from detection to imposition.
        delay: SimDuration,
    },
}

/// One planned network fault: what, when, and for how long.
#[derive(Clone, Debug, PartialEq)]
pub struct NetFault {
    /// What to sever.
    pub kind: NetFaultKind,
    /// When to impose it.
    pub trigger: NetFaultTrigger,
    /// How long the fault lasts before the links heal.
    pub duration: SimDuration,
}

impl NetFault {
    /// A partition splitting `groups` for `duration`, imposed the
    /// moment the first failure detection starts a recovery.
    pub fn partition_on_recovery(groups: Vec<Vec<u16>>, duration: SimDuration) -> NetFault {
        NetFault {
            kind: NetFaultKind::Partition { groups },
            trigger: NetFaultTrigger::OnRecoveryStart { delay: SimDuration::ZERO },
            duration,
        }
    }

    /// A two-ended link failure over a fixed window.
    pub fn link_at(a: u16, b: u16, at: SimTime, duration: SimDuration) -> NetFault {
        NetFault { kind: NetFaultKind::Link { a, b }, trigger: NetFaultTrigger::At(at), duration }
    }
}

/// Failure-detection events recorded so far (the recovery-start signal).
fn detections(trace: &Trace) -> u64 {
    const DETECTIONS: [TraceEvent; 6] = [
        TraceEvent::HangDetected,
        TraceEvent::CrashDetected,
        TraceEvent::AppHangDetected,
        TraceEvent::AppCrashDetected,
        TraceEvent::FtmFailureDetected,
        TraceEvent::NodeFailureDetected,
    ];
    DETECTIONS.iter().map(|e| trace.count_of(*e)).sum()
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    /// Waiting for the recovery-start signal.
    Waiting,
    /// Will activate at the instant.
    Armed(SimTime),
    /// Active; heals at the instant.
    Active(SimTime),
    /// Healed.
    Done,
}

/// Drives a run while imposing and healing the plan's network faults at
/// the right instants. With an empty plan this is exactly
/// [`Running::run_until_done`] — zero overhead on the hot path.
#[derive(Debug)]
pub(crate) struct NetFaultDriver<'p> {
    faults: &'p [NetFault],
    phase: Vec<Phase>,
    /// Detection events seen; `None` until baselined on first use.
    seen: Option<u64>,
    applied: u32,
}

impl<'p> NetFaultDriver<'p> {
    pub(crate) fn new(faults: &'p [NetFault]) -> Self {
        let phase = faults
            .iter()
            .map(|f| match f.trigger {
                NetFaultTrigger::At(t) => Phase::Armed(t),
                NetFaultTrigger::OnRecoveryStart { .. } => Phase::Waiting,
            })
            .collect();
        NetFaultDriver { faults, phase, seen: None, applied: 0 }
    }

    /// Number of faults that reached their activation instant.
    pub(crate) fn applied(&self) -> u32 {
        self.applied
    }

    /// Runs until every job completes (true) or `horizon` passes
    /// (false), imposing/healing faults on the way.
    pub(crate) fn run(&mut self, running: &mut Running, horizon: SimTime) -> bool {
        if self.faults.is_empty() {
            return running.run_until_done(horizon);
        }
        if self.seen.is_none() {
            self.seen = Some(detections(running.cluster.trace()));
        }
        loop {
            let now = running.cluster.now();
            self.transition(running, now);
            let stop = self.next_transition().map_or(horizon, |t| t.min(horizon));
            let watching = self.faults.iter().zip(&self.phase).any(|(f, p)| {
                *p == Phase::Waiting && matches!(f.trigger, NetFaultTrigger::OnRecoveryStart { .. })
            });
            let baseline = self.seen.unwrap_or(0);
            let done = if watching {
                running.run_until_done_or(stop, |c| detections(c.trace()) > baseline)
            } else {
                running.run_until_done(stop)
            };
            let now = running.cluster.now();
            let count = detections(running.cluster.trace());
            let fired = count > baseline;
            if fired {
                self.seen = Some(count);
                for (i, f) in self.faults.iter().enumerate() {
                    if let (Phase::Waiting, NetFaultTrigger::OnRecoveryStart { delay }) =
                        (self.phase[i], &f.trigger)
                    {
                        self.phase[i] = Phase::Armed(now + *delay);
                    }
                }
            }
            self.transition(running, now);
            if done {
                return true;
            }
            if now >= horizon {
                return false;
            }
            if !fired && now < stop {
                // The event queue drained before the stop instant: no
                // further event can observe the network, so pending
                // fault transitions are moot. Hand control back.
                return false;
            }
        }
    }

    fn next_transition(&self) -> Option<SimTime> {
        self.phase
            .iter()
            .filter_map(|p| match p {
                Phase::Armed(t) | Phase::Active(t) => Some(*t),
                _ => None,
            })
            .min()
    }

    /// Applies every transition due at or before `now`.
    fn transition(&mut self, running: &mut Running, now: SimTime) {
        for i in 0..self.faults.len() {
            match self.phase[i] {
                Phase::Armed(at) if at <= now => {
                    let pairs = self.faults[i].kind.pairs();
                    for &(a, b) in &pairs {
                        running.cluster.network_mut().set_link_down(a, b, true);
                    }
                    running.cluster.trace_mut().push(
                        now,
                        None,
                        TraceKind::Injection,
                        TraceDetail::Custom(
                            format!("net fault imposed: {} pair(s) severed", pairs.len()).into(),
                        ),
                    );
                    self.applied += 1;
                    let until = at + self.faults[i].duration;
                    if until <= now {
                        self.heal(running, i, now);
                    } else {
                        self.phase[i] = Phase::Active(until);
                    }
                }
                Phase::Active(until) if until <= now => {
                    self.heal(running, i, now);
                }
                _ => {}
            }
        }
    }

    fn heal(&mut self, running: &mut Running, i: usize, now: SimTime) {
        for (a, b) in self.faults[i].kind.pairs() {
            running.cluster.network_mut().set_link_down(a, b, false);
        }
        running.cluster.trace_mut().push(
            now,
            None,
            TraceKind::Recovery,
            TraceDetail::Static("net fault healed"),
        );
        self.phase[i] = Phase::Done;
    }
}
