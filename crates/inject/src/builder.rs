//! The unified campaign API: a [`Campaign`] builder over one
//! [`RunPlan`] with terminal `collect`/`fold`/`aggregate`/`adaptive`
//! operations, and its owned counterpart [`CampaignSpec`].
//!
//! This subsumes the historical `run_campaign*` free functions (now
//! thin deprecated shims): one composable entry point instead of five
//! name×option combinations, and the only place the work-stealing
//! executor lives. Everything terminal folds results **in seed
//! order**, so campaign output is bit-for-bit deterministic for any
//! worker-thread count.

use crate::adaptive::{Arm, ArmReport, StoppingRule};
use crate::campaign::Aggregate;
use crate::runner::{execute_warm, RunPlan, RunResult};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

/// Picks the effective worker count for `runs` seeded executions.
/// Total for every input — `runs == 0` yields 1 worker (which then has
/// nothing to claim) instead of constructing an empty clamp range, so
/// callers that do not know their run count up front (the adaptive
/// engine) can share it.
pub(crate) fn effective_threads(requested: Option<usize>, runs: u32) -> usize {
    requested.unwrap_or_else(default_threads).clamp(1, runs.max(1) as usize)
}

/// A configured fault-injection campaign over one [`RunPlan`]: `runs`
/// seeded executions starting at `seed(..)`, on `threads(..)` workers.
///
/// Built with [`Campaign::new`] and finished with one of the terminal
/// operations — [`collect`](Campaign::collect) (materialise every
/// [`RunResult`] in seed order), [`fold`](Campaign::fold) (stream
/// results through an accumulator without materialising),
/// [`aggregate`](Campaign::aggregate) (fold into the paper-table
/// [`Aggregate`]), or [`adaptive`](Campaign::adaptive) (run batches
/// until a [`StoppingRule`]'s confidence target is met).
///
/// Results are identical for every thread count, including 1.
///
/// # Examples
///
/// ```
/// use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
/// use ree_sim::SimTime;
///
/// let plan = RunPlan {
///     scenario: ree_apps::Scenario::single_texture(1),
///     target: Target::App,
///     model: ErrorModel::Sigint,
///     timeout: SimTime::from_secs(220),
///     net_faults: vec![],
/// };
/// let results = Campaign::new(&plan).runs(2).seed(7).collect();
/// assert_eq!(results.len(), 2);
/// let agg = Campaign::new(&plan).runs(2).seed(7).aggregate();
/// assert!(agg.errors_injected <= 2);
/// // Streaming: count hangs without materialising the results.
/// let hangs = Campaign::new(&plan).runs(2).seed(7).fold(0u32, |n, r| {
///     *n += u32::from(r.induced == Some(ree_inject::FailureClass::Hang));
/// });
/// assert!(hangs <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct Campaign<'p> {
    plan: &'p RunPlan,
    runs: u32,
    seed0: u64,
    threads: Option<usize>,
}

impl<'p> Campaign<'p> {
    /// Starts a campaign over `plan` with no runs scheduled yet, seed 0,
    /// and automatic thread selection.
    pub fn new(plan: &'p RunPlan) -> Self {
        Campaign { plan, runs: 0, seed0: 0, threads: None }
    }

    /// Borrows an owned [`CampaignSpec`] as a runnable campaign.
    pub fn from_spec(spec: &'p CampaignSpec) -> Self {
        Campaign { plan: &spec.plan, runs: spec.runs, seed0: spec.seed0, threads: spec.threads }
    }

    /// Sets the number of seeded runs.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first seed; run `i` uses `seed0 + i`.
    pub fn seed(mut self, seed0: u64) -> Self {
        self.seed0 = seed0;
        self
    }

    /// Sets an explicit worker-thread count (any value is safe; it is
    /// clamped to `1..=runs`). The default is the machine's available
    /// parallelism, capped at 16.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The plan this campaign runs — read access for extension
    /// terminals defined outside this crate (e.g. `ree-mc`'s
    /// `model_check`).
    pub fn plan(&self) -> &RunPlan {
        self.plan
    }

    /// The first seed ([`seed`](Campaign::seed)); run `i` uses
    /// `seed0 + i`.
    pub fn seed0(&self) -> u64 {
        self.seed0
    }

    /// The configured run count ([`runs`](Campaign::runs)) — read
    /// access for extension terminals defined outside this crate (e.g.
    /// `ree-dist`'s `distributed`).
    pub fn runs_configured(&self) -> u32 {
        self.runs
    }

    /// Runs the campaign and returns every [`RunResult`] in seed order.
    pub fn collect(&self) -> Vec<RunResult> {
        self.fold(Vec::with_capacity(self.runs as usize), |v, r| v.push(r))
    }

    /// Runs the campaign, streaming each [`RunResult`] through `fold`
    /// exactly once, **in seed order**, as soon as every earlier seed
    /// has been folded. Peak memory is bounded by the reorder window (a
    /// few results per worker) instead of the campaign size.
    pub fn fold<A>(&self, init: A, fold: impl FnMut(&mut A, RunResult)) -> A {
        run_fold(self.plan, self.runs, self.seed0, self.threads, init, fold)
    }

    /// Runs the campaign and aggregates it on the fly — the streaming
    /// equivalent of `Aggregate::from_results(&campaign.collect())`.
    pub fn aggregate(&self) -> Aggregate {
        self.fold(Aggregate::default(), |agg, r| agg.accept(&r))
    }

    /// Runs this plan **adaptively**: in batches, until `rule`'s
    /// confidence-interval target on the key proportion is met or the
    /// rule's run budget is exhausted — the single-arm form of
    /// [`crate::adaptive::run_arms`]. Any `runs(..)` setting is ignored;
    /// the stopping rule owns the budget.
    ///
    /// The report is a pure function of `(plan, seed0, rule)` —
    /// independent of the thread count.
    pub fn adaptive(&self, rule: &StoppingRule) -> ArmReport {
        let arm = Arm::new("", self.plan.clone(), self.seed0);
        let mut report =
            crate::adaptive::run_arms_with_threads(std::slice::from_ref(&arm), rule, self.threads);
        report.arms.remove(0)
    }
}

/// An owned campaign description: the [`RunPlan`] plus the campaign
/// shape ([`runs`](CampaignSpec::runs), [`seed`](CampaignSpec::seed),
/// [`threads`](CampaignSpec::threads)).
///
/// Where [`Campaign`] borrows its plan for immediate execution,
/// `CampaignSpec` is `Clone` and self-contained — the form a request
/// queue, a result cache key, or an adaptive sweep arm wants. The
/// terminal operations mirror [`Campaign`]'s and delegate to it.
///
/// # Examples
///
/// ```
/// use ree_inject::{CampaignSpec, ErrorModel, RunPlan, Target};
/// use ree_sim::SimTime;
///
/// let plan = RunPlan {
///     scenario: ree_apps::Scenario::single_texture(1),
///     target: Target::App,
///     model: ErrorModel::Sigint,
///     timeout: SimTime::from_secs(220),
///     net_faults: vec![],
/// };
/// let spec = CampaignSpec::new(plan).runs(2).seed(7);
/// assert_eq!(spec.collect().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// The plan every run executes.
    pub plan: RunPlan,
    /// Number of seeded runs for the fixed-size terminals.
    pub runs: u32,
    /// First seed; run `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Explicit worker-thread count (`None` = automatic).
    pub threads: Option<usize>,
}

impl CampaignSpec {
    /// Wraps `plan` with no runs scheduled, seed 0, automatic threads.
    pub fn new(plan: RunPlan) -> Self {
        CampaignSpec { plan, runs: 0, seed0: 0, threads: None }
    }

    /// Sets the number of seeded runs.
    pub fn runs(mut self, runs: u32) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the first seed.
    pub fn seed(mut self, seed0: u64) -> Self {
        self.seed0 = seed0;
        self
    }

    /// Sets an explicit worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// See [`Campaign::collect`].
    pub fn collect(&self) -> Vec<RunResult> {
        Campaign::from_spec(self).collect()
    }

    /// See [`Campaign::fold`].
    pub fn fold<A>(&self, init: A, fold: impl FnMut(&mut A, RunResult)) -> A {
        Campaign::from_spec(self).fold(init, fold)
    }

    /// See [`Campaign::aggregate`].
    pub fn aggregate(&self) -> Aggregate {
        Campaign::from_spec(self).aggregate()
    }

    /// See [`Campaign::adaptive`].
    pub fn adaptive(&self, rule: &StoppingRule) -> ArmReport {
        Campaign::from_spec(self).adaptive(rule)
    }
}

/// The work-stealing campaign executor behind every terminal operation.
///
/// Workers claim the next seed index from a shared counter and ship
/// `(index, result)` pairs back; the caller's thread reorders with a
/// small buffer and folds in seed order while workers are still
/// running. The channel is bounded so a straggler seed cannot make the
/// reorder buffer grow with the campaign: once it fills, workers block
/// on send instead of claiming further seeds, capping buffered results
/// at ~2 per worker.
pub(crate) fn run_fold<A>(
    plan: &RunPlan,
    runs: u32,
    seed0: u64,
    threads: Option<usize>,
    init: A,
    mut fold: impl FnMut(&mut A, RunResult),
) -> A {
    let mut acc = init;
    let threads = effective_threads(threads, runs);
    if runs == 0 {
        return acc;
    }
    // Generate the campaign-shared synthetic inputs once, before the
    // workers fan out, so they never race to synthesise the same image.
    plan.scenario.warm_inputs();
    // Boot the SIFT cluster once: every run starts from a fork of this
    // snapshot instead of replaying the identical installation protocol.
    // The geometry (injection window, nominal duration) is likewise
    // derived once; the per-run path only draws the injection instant.
    let geometry = plan.geometry();
    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
    if threads == 1 {
        for i in 0..u64::from(runs) {
            let r = execute_warm(plan, &geometry, &snapshot, seed0 + i);
            fold(&mut acc, r);
        }
        return acc;
    }
    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::sync_channel::<(u64, RunResult)>(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let geometry = &geometry;
            let snapshot = &snapshot;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= u64::from(runs) {
                    break;
                }
                let r = execute_warm(plan, geometry, snapshot, seed0 + i);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<u64, RunResult> = BTreeMap::new();
        let mut expect: u64 = 0;
        for (i, r) in rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&expect) {
                fold(&mut acc, r);
                expect += 1;
            }
        }
        debug_assert_eq!(expect, u64::from(runs), "every seed folded exactly once");
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_selection_is_total() {
        // The historical `threads.clamp(1, runs as usize)` panicked for
        // `runs == 0` (clamp with max < min); the adaptive path cannot
        // early-return on a known run count, so selection must be total.
        assert_eq!(effective_threads(Some(8), 0), 1);
        assert_eq!(effective_threads(Some(8), 1), 1);
        assert_eq!(effective_threads(Some(0), 5), 1);
        assert_eq!(effective_threads(Some(3), 5), 3);
        assert_eq!(effective_threads(Some(8), 5), 5);
        assert!(effective_threads(None, u32::MAX) >= 1);
    }
}
