//! Branch-point enumeration for bounded model checking.
//!
//! A seeded campaign run *samples* one injection instant and one target
//! from the plan's trigger window; the `ree-mc` model checker instead
//! *enumerates* a bounded, deterministic set of both and explores every
//! combination. This module owns that enumeration so it stays in lock
//! step with the sampling path in `runner`: the instants cover the same
//! window [`RunPlan::geometry`] derives, and the target candidates are
//! exactly the set [`execute`](crate::execute) draws from.

use crate::model::Target;
use crate::runner::RunPlan;
use ree_apps::Running;
use ree_os::Pid;
use ree_sim::SimTime;

/// Candidate fault-activation instants: the midpoints of `k` equal
/// strata of the plan's injection window, clamped to the timeout.
/// Midpoint stratification keeps small `k` representative (never just
/// the window edges) and larger `k` strictly refines coverage. Always
/// non-empty and strictly increasing; degenerate windows collapse to a
/// single instant at the window start.
pub fn activation_instants(plan: &RunPlan, k: usize) -> Vec<SimTime> {
    let geometry = plan.geometry();
    let w0 = geometry.window_start;
    let w1 = geometry.window_end.min(plan.timeout);
    let (a, b) = (w0.as_micros(), w1.as_micros());
    if b <= a || k == 0 {
        return vec![w0];
    }
    let span = b - a;
    let k = (k as u64).min(span); // at most one instant per microsecond
    let mut out = Vec::with_capacity(k as usize);
    for i in 0..k {
        // Midpoint of stratum i: a + span*(2i+1)/(2k), computed without
        // overflow for any simulated-time magnitude.
        let mid = a + (span / (2 * k)) * (2 * i + 1) + (span % (2 * k)) * (2 * i + 1) / (2 * k);
        out.push(SimTime::from_micros(mid));
    }
    out.dedup();
    out
}

/// Candidate injection targets alive in `running` that match `target`,
/// in ascending pid order, truncated to `cap`. This is the same
/// candidate set the seeded runner's private target resolution draws one
/// element of by rng; the model checker branches over all of them.
pub fn candidate_targets(running: &Running, target: &Target, cap: usize) -> Vec<Pid> {
    let cluster = &running.cluster;
    let mut candidates: Vec<Pid> = cluster
        .all_procs()
        .into_iter()
        .filter(|p| cluster.name_of(*p).map(|n| target.matches(n)).unwrap_or(false))
        .collect();
    candidates.sort_unstable();
    candidates.truncate(cap);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorModel;
    use ree_apps::Scenario;

    fn plan() -> RunPlan {
        RunPlan {
            scenario: Scenario::single_texture(3),
            target: Target::App,
            model: ErrorModel::Register,
            timeout: SimTime::from_secs(200),
            net_faults: vec![],
        }
    }

    #[test]
    fn instants_are_increasing_and_inside_the_window() {
        let plan = plan();
        let geometry = plan.geometry();
        for k in [1usize, 2, 3, 8, 17] {
            let instants = activation_instants(&plan, k);
            assert_eq!(instants.len(), k.max(1));
            assert!(instants.windows(2).all(|w| w[0] < w[1]), "not increasing for k={k}");
            for t in &instants {
                assert!(*t >= geometry.window_start && *t < geometry.window_end);
            }
        }
    }

    #[test]
    fn instants_clamp_to_the_timeout() {
        let mut p = plan();
        p.timeout = p.geometry().window_start + ree_sim::SimDuration::from_secs(1);
        let instants = activation_instants(&p, 4);
        assert!(!instants.is_empty());
        for t in instants {
            assert!(t <= p.timeout);
        }
        // Degenerate window: timeout at (or before) the window start.
        p.timeout = p.geometry().window_start;
        assert_eq!(activation_instants(&p, 4), vec![p.geometry().window_start]);
    }
}
