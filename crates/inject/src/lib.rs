//! # ree-inject — NFTAPE-style fault-injection campaigns
//!
//! "The experiments used NFTAPE, a software framework for conducting
//! injection experiments. NFTAPE separates the control, monitoring, and
//! data collection aspects of injection experiments from the code that
//! actually injects faults/errors" (§4). The same split here: the
//! [`RunPlan`]/[`execute`] controller and [`run_campaign`] batcher are
//! independent of the per-model injectors, which live behind the
//! `ree-os` injection surface (signals, register/text bit flips, heap
//! bit flips).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod model;
mod runner;

pub use campaign::{
    run_campaign, run_campaign_aggregate, run_campaign_fold, run_campaign_fold_with_threads,
    run_campaign_with_threads, Aggregate,
};
pub use model::{ErrorModel, FailureClass, SystemFailure, Target};
pub use runner::{execute, execute_full, verify_outputs, RunPlan, RunResult};
