//! # ree-inject — NFTAPE-style fault-injection campaigns
//!
//! "The experiments used NFTAPE, a software framework for conducting
//! injection experiments. NFTAPE separates the control, monitoring, and
//! data collection aspects of injection experiments from the code that
//! actually injects faults/errors" (§4). The same split here: the
//! [`RunPlan`]/[`execute`] controller and [`run_campaign`] batcher are
//! independent of the per-model injectors, which live behind the
//! `ree-os` injection surface (signals, register/text bit flips, heap
//! bit flips).
//!
//! # Campaign execution and throughput
//!
//! A campaign is thousands of seeded runs of one plan; runs/second is
//! the capacity ceiling for every reproduced table (the measurement
//! and optimisation history live in `docs/PERFORMANCE.md`). Campaigns
//! execute on a work-stealing thread pool and fold results **in seed
//! order**, so output is bit-identical for any thread count; before
//! the workers fan out, [`run_campaign`] warms the campaign-shared
//! input cache (`ree_apps::Scenario::warm_inputs`) so the synthetic
//! instrument data is generated once per process, not once per run.
//!
//! Campaign runs start **warm**: the SIFT cluster is booted once per
//! campaign ([`RunPlan::boot_snapshot`]) and every run forks that
//! snapshot — a deep clone with per-run re-seeded random streams
//! ([`execute_warm`]) — instead of replaying the installation
//! protocol. The cold path ([`execute`]/[`execute_full`]) boots a
//! private snapshot to the same instant and re-seeds identically, so
//! warm and cold runs are byte-identical per seed (proved by
//! `tests/warm_boot.rs`); the campaign-invariant run geometry
//! ([`RunGeometry`]) is likewise derived once per campaign.
//!
//! ```
//! use ree_inject::{run_campaign, Aggregate, ErrorModel, RunPlan, Target};
//! use ree_sim::SimTime;
//!
//! let plan = RunPlan {
//!     scenario: ree_apps::Scenario::single_texture(1),
//!     target: Target::App,
//!     model: ErrorModel::Sigint,
//!     timeout: SimTime::from_secs(220),
//! };
//! let results = run_campaign(&plan, 2, 7);
//! assert_eq!(results.len(), 2);
//! // SIGINT injects at most once per run (and not at all if the run
//! // completes before the sampled injection instant).
//! let agg = Aggregate::from_results(&results);
//! assert!(agg.errors_injected <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod model;
mod runner;

pub use campaign::{
    run_campaign, run_campaign_aggregate, run_campaign_fold, run_campaign_fold_with_threads,
    run_campaign_with_threads, Aggregate,
};
pub use model::{ErrorModel, FailureClass, SystemFailure, Target};
pub use runner::{
    execute, execute_full, execute_warm, execute_warm_full, verify_outputs, RunGeometry, RunPlan,
    RunResult,
};
