//! # ree-inject — NFTAPE-style fault-injection campaigns
//!
//! "The experiments used NFTAPE, a software framework for conducting
//! injection experiments. NFTAPE separates the control, monitoring, and
//! data collection aspects of injection experiments from the code that
//! actually injects faults/errors" (§4). The same split here: the
//! [`RunPlan`]/[`execute`] controller and the [`Campaign`] batcher are
//! independent of the per-model injectors, which live behind the
//! `ree-os` injection surface (signals, register/text bit flips, heap
//! bit flips).
//!
//! # Campaign execution and throughput
//!
//! A campaign is thousands of seeded runs of one plan; runs/second is
//! the capacity ceiling for every reproduced table (the measurement
//! and optimisation history live in `docs/PERFORMANCE.md`). The single
//! entry point is the [`Campaign`] builder — `runs`/`seed`/`threads`
//! configuration with `collect`/`fold`/`aggregate`/`adaptive`
//! terminals (the historical `run_campaign*` free functions survive as
//! deprecated shims over it). Campaigns execute on a work-stealing
//! thread pool and fold results **in seed order**, so output is
//! bit-identical for any thread count; before the workers fan out, the
//! executor warms the campaign-shared input cache
//! (`ree_apps::Scenario::warm_inputs`) so the synthetic instrument
//! data is generated once per process, not once per run.
//!
//! Campaign runs start **warm**: the SIFT cluster is booted once per
//! campaign ([`RunPlan::boot_snapshot`]) and every run forks that
//! snapshot — a deep clone with per-run re-seeded random streams
//! ([`execute_warm`]) — instead of replaying the installation
//! protocol. The cold path ([`execute`]/[`execute_full`]) boots a
//! private snapshot to the same instant and re-seeds identically, so
//! warm and cold runs are byte-identical per seed (proved by
//! `tests/warm_boot.rs`); the campaign-invariant run geometry
//! ([`RunGeometry`]) is likewise derived once per campaign.
//!
//! ```
//! use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
//! use ree_sim::SimTime;
//!
//! let plan = RunPlan {
//!     scenario: ree_apps::Scenario::single_texture(1),
//!     target: Target::App,
//!     model: ErrorModel::Sigint,
//!     timeout: SimTime::from_secs(220),
//!     net_faults: vec![],
//! };
//! let results = Campaign::new(&plan).runs(2).seed(7).collect();
//! assert_eq!(results.len(), 2);
//! // SIGINT injects at most once per run (and not at all if the run
//! // completes before the sampled injection instant).
//! let agg = ree_inject::Aggregate::from_results(&results);
//! assert!(agg.errors_injected <= 2);
//! ```
//!
//! # Adaptive confidence-targeted campaigns
//!
//! Fixed-size sweeps spend 512 runs per cell whether or not the cell's
//! estimate needs them. The [`adaptive`] module instead drives many
//! [`adaptive::Arm`]s in batches, stops each arm once the Wilson
//! confidence interval on its key proportion is inside a
//! [`StoppingRule`] target, and reallocates the next batch's runs to
//! the widest-interval arms — same determinism contract (per-arm
//! results are a pure function of `(plan, seed0, rule)`). See
//! `docs/ADAPTIVE.md`.
//!
//! # Network fault plans
//!
//! Beyond process-level error models, a plan can impose interconnect
//! faults — [`NetFault`] link failures, correlated multi-link failures,
//! and partitions, triggered at fixed instants or off the run's first
//! failure detection (partition-during-recovery). See [`netfault`] and
//! `docs/NETWORK.md`.
//!
//! # Bounded model checking
//!
//! Where a campaign *samples* injection instants and targets, the
//! `ree-mc` crate *enumerates* them ([`activation_instants`],
//! [`candidate_targets`]) and systematically explores bounded
//! perturbations of same-instant event delivery around each, reusing
//! this crate's classification pipeline ([`classify_target_state`],
//! [`classify_system_failure`], [`conclude_run`]) so an explored branch
//! is judged exactly like a campaign run. See `docs/MODELCHECK.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod branch;
mod builder;
mod campaign;
mod error;
mod model;
pub mod netfault;
mod runner;

pub use adaptive::{AdaptiveReport, Arm, ArmReport, CiMetric, StoppingRule};
pub use branch::{activation_instants, candidate_targets};
pub use builder::{Campaign, CampaignSpec};
pub use campaign::Aggregate;
#[allow(deprecated)]
pub use campaign::{
    run_campaign, run_campaign_aggregate, run_campaign_fold, run_campaign_fold_with_threads,
    run_campaign_with_threads,
};
pub use error::CampaignError;
pub use model::{ErrorModel, FailureClass, SystemFailure, Target};
pub use netfault::{NetFault, NetFaultKind, NetFaultTrigger};
pub use runner::{
    classify_system_failure, classify_target_state, conclude_run, execute, execute_full,
    execute_warm, execute_warm_checked, execute_warm_full, verify_outputs, RunGeometry, RunPlan,
    RunResult,
};
