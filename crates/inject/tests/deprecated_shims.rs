//! The deprecated `run_campaign*` free functions are thin shims over
//! the [`Campaign`] builder; until they are deleted, each must stay
//! byte-identical to its builder replacement. This is the only file in
//! the workspace allowed to call them (a CI grep gate enforces that
//! nothing else does).

#![allow(deprecated)]

use ree_apps::Scenario;
use ree_inject::{
    run_campaign, run_campaign_aggregate, run_campaign_fold, run_campaign_fold_with_threads,
    run_campaign_with_threads, Aggregate, Campaign, ErrorModel, RunPlan, Target,
};
use ree_sim::SimTime;

fn plan() -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::App,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

const RUNS: u32 = 5;
const SEED0: u64 = 61_000;

#[test]
fn shims_delegate_to_the_builder() {
    let p = plan();
    let reference = Campaign::new(&p).runs(RUNS).seed(SEED0).collect();
    assert_eq!(run_campaign(&p, RUNS, SEED0), reference);
    assert_eq!(run_campaign_with_threads(&p, RUNS, SEED0, 2), reference);
    assert_eq!(
        run_campaign_fold(&p, RUNS, SEED0, Vec::new(), |v, r| v.push(r)),
        reference,
        "fold shim must stream the same results in the same order"
    );
    assert_eq!(
        run_campaign_fold_with_threads(&p, RUNS, SEED0, 3, Vec::new(), |v, r| v.push(r)),
        reference
    );
    assert_eq!(run_campaign_aggregate(&p, RUNS, SEED0), Aggregate::from_results(&reference));
}

#[test]
fn shims_survive_the_zero_run_edge() {
    let p = plan();
    assert!(run_campaign(&p, 0, SEED0).is_empty());
    assert!(run_campaign_with_threads(&p, 0, SEED0, 8).is_empty());
    assert_eq!(run_campaign_aggregate(&p, 0, SEED0), Aggregate::default());
}
