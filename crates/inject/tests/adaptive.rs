//! The adaptive engine's two contracts, tested from outside:
//!
//! * [`Aggregate::merge`] is a monoid operation matching the streaming
//!   fold — merging per-shard aggregates equals folding the
//!   concatenated stream (counters exactly, `Summary` moments up to FP
//!   rounding), associatively, with `Aggregate::default()` as identity.
//! * Per-arm adaptive reports are a pure function of
//!   `(plan, seed0, rule)`: byte-identical across worker-thread counts
//!   and arm orderings. Only the scheduling statistics may differ.

use proptest::prelude::*;
use ree_apps::{Scenario, Verdict};
use ree_inject::adaptive::{run_arms, run_arms_with_threads};
use ree_inject::{
    Aggregate, Arm, ArmReport, Campaign, CiMetric, ErrorModel, FailureClass, RunPlan, RunResult,
    StoppingRule, SystemFailure, Target,
};
use ree_sim::SimTime;
use ree_stats::Summary;

// ---- Aggregate::merge laws ------------------------------------------------

/// Decodes one random word into a synthetic run covering every field
/// `Aggregate::accept` looks at — including the `None`/empty branches.
/// (`heap_hit`, the per-slot vectors, and the seed are not aggregated.)
fn decode(word: u64) -> RunResult {
    let induced = match (word >> 2) & 7 {
        0 => Some(FailureClass::SegFault),
        1 => Some(FailureClass::IllegalInstruction),
        2 => Some(FailureClass::Hang),
        3 => Some(FailureClass::Assertion),
        4 => Some(FailureClass::InjectedSignal),
        5 => Some(FailureClass::Other),
        _ => None,
    };
    let system_failure = match (word >> 6) & 7 {
        0 => Some(SystemFailure::UnableToRegisterDaemons),
        1 => Some(SystemFailure::UnableToInstallExecArmors),
        2 => Some(SystemFailure::UnableToStartApplication),
        3 => Some(SystemFailure::UnableToRecognizeCompletion),
        4 => Some(SystemFailure::AppDidNotComplete),
        _ => None,
    };
    let output = match ((word >> 9) & 3) % 3 {
        0 => Verdict::Correct,
        1 => Verdict::Incorrect,
        _ => Verdict::Missing,
    };
    let time = |shift: u32| {
        let raw = (word >> shift) & 0xFF;
        (raw != 0).then_some(raw as f64 * 1.7 + 0.3)
    };
    let recovery_times = (0..(word >> 11) & 3)
        .map(|i| ((word >> (40 + 4 * i)) & 0xF) as f64 * 0.11 + 0.01)
        .collect();
    RunResult {
        seed: 0,
        injections: (word & 3) as u32,
        induced,
        completed: (word >> 5) & 1 == 1,
        system_failure,
        output,
        perceived: time(16),
        actual: time(24),
        perceived_all: Vec::new(),
        actual_all: Vec::new(),
        restarts: (word >> 13) & 3,
        recovery_times,
        correlated: (word >> 15) & 1 == 1,
        assertion_fired: false,
        heap_hit: None,
        net_faults_applied: 0,
    }
}

fn aggregate(results: &[RunResult]) -> Aggregate {
    let mut agg = Aggregate::default();
    for r in results {
        agg.accept(r);
    }
    agg
}

/// Exact on everything but the `Summary` moments, which a parallel
/// (Chan et al.) merge reproduces only up to FP rounding.
fn assert_agg_close(a: &Aggregate, b: &Aggregate) {
    assert_eq!(a.errors_injected, b.errors_injected);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.successful_recoveries, b.successful_recoveries);
    assert_eq!(a.system_failures, b.system_failures);
    assert_eq!(a.seg_faults, b.seg_faults);
    assert_eq!(a.illegal_instrs, b.illegal_instrs);
    assert_eq!(a.hangs, b.hangs);
    assert_eq!(a.assertions, b.assertions);
    assert_eq!(a.correlated, b.correlated);
    assert_eq!(a.incorrect_output, b.incorrect_output);
    assert_eq!(a.no_effect, b.no_effect);
    for (x, y) in [(&a.perceived, &b.perceived), (&a.actual, &b.actual), (&a.recovery, &b.recovery)]
    {
        assert_summary_close(x, y);
    }
}

fn assert_summary_close(x: &Summary, y: &Summary) {
    assert_eq!(x.n(), y.n());
    assert_eq!(x.min(), y.min());
    assert_eq!(x.max(), y.max());
    assert!((x.mean() - y.mean()).abs() <= 1e-9 * x.mean().abs().max(1.0));
    assert!((x.std_dev() - y.std_dev()).abs() <= 1e-6 * x.std_dev().abs().max(1.0));
}

proptest! {
    /// merge(fold(left), fold(right)) == fold(left ++ right).
    #[test]
    fn merge_matches_concatenated_fold(
        words in proptest::collection::vec(any::<u64>(), 0..40),
        split in 0u64..41,
    ) {
        let results: Vec<RunResult> = words.iter().copied().map(decode).collect();
        let split = (split as usize).min(results.len());
        let (left, right) = results.split_at(split);
        let mut merged = aggregate(left);
        merged.merge(&aggregate(right));
        assert_agg_close(&merged, &aggregate(&results));
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..15),
        b in proptest::collection::vec(any::<u64>(), 0..15),
        c in proptest::collection::vec(any::<u64>(), 0..15),
    ) {
        let agg_of = |words: &[u64]| {
            let results: Vec<RunResult> = words.iter().copied().map(decode).collect();
            aggregate(&results)
        };
        let (a, b, c) = (agg_of(&a), agg_of(&b), agg_of(&c));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_agg_close(&left, &right);
    }

    /// `Aggregate::default()` is a two-sided identity — bit-exact, not
    /// just close.
    #[test]
    fn merge_identity_is_exact(words in proptest::collection::vec(any::<u64>(), 0..25)) {
        let results: Vec<RunResult> = words.iter().copied().map(decode).collect();
        let agg = aggregate(&results);
        let mut left = Aggregate::default();
        left.merge(&agg);
        prop_assert_eq!(&left, &agg);
        let mut right = agg.clone();
        right.merge(&Aggregate::default());
        prop_assert_eq!(&right, &agg);
    }
}

// ---- Adaptive determinism -------------------------------------------------

fn plan(model: ErrorModel, target: Target) -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target,
        model,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

/// A rule small enough for a test but still exercising the interesting
/// machinery: multiple batches per arm, a reachable target (so some arm
/// stops early and discards optimistic runs), and a budget edge that is
/// not a batch multiple.
fn rule() -> StoppingRule {
    StoppingRule::default().half_width(0.30).batch(5).min_runs(10).max_runs(23)
}

#[test]
fn arm_reports_are_identical_across_thread_counts_and_orderings() {
    let arms = vec![
        Arm::new("sigint/app", plan(ErrorModel::Sigint, Target::App), 9_000),
        Arm::new("sigstop/ftm", plan(ErrorModel::Sigstop, Target::Ftm), 9_500),
        Arm::new("sigint/exec", plan(ErrorModel::Sigint, Target::ExecArmor), 10_000),
    ];
    let rule = rule();
    let reference = run_arms_with_threads(&arms, &rule, Some(1));
    assert_eq!(reference.arms.len(), 3);
    assert!(
        reference.arms.iter().any(|a| a.target_met),
        "rule must stop at least one arm before the budget for the test to bite"
    );
    for threads in [2usize, 8] {
        let got = run_arms_with_threads(&arms, &rule, Some(threads));
        assert_eq!(got.arms, reference.arms, "{threads}-thread sweep diverged from 1-thread");
    }
    // Arm order must not leak into any arm's report: reverse the sweep
    // and compare each report to the same-label reference.
    let mut reversed: Vec<Arm> = arms.clone();
    reversed.reverse();
    let rev = run_arms(&reversed, &rule);
    let by_label = |arms: &[ArmReport], label: &str| {
        arms.iter().find(|a| a.label == label).expect("label present").clone()
    };
    for arm in &arms {
        assert_eq!(
            by_label(&rev.arms, &arm.label),
            by_label(&reference.arms, &arm.label),
            "arm {} changed when the sweep order did",
            arm.label
        );
    }
    // A single-arm sweep of the same cell also matches: other arms are
    // invisible to an arm's result.
    let solo = run_arms(std::slice::from_ref(&arms[1]), &rule);
    assert_eq!(solo.arms[0], by_label(&reference.arms, "sigstop/ftm"));
}

#[test]
fn reported_runs_stop_at_the_first_satisfied_boundary() {
    // Replay an arm's reported prefix by hand: the rule must be
    // unsatisfied at every earlier qualifying boundary and (if the
    // target was met) satisfied exactly at `runs`.
    let p = plan(ErrorModel::Sigint, Target::App);
    let rule = rule();
    let report = Campaign::new(&p).seed(9_000).adaptive(&rule);
    assert!(report.runs >= rule.min_runs && report.runs <= rule.max_runs);
    let results = Campaign::new(&p).runs(report.runs).seed(9_000).collect();
    let mut agg = Aggregate::default();
    for (i, r) in results.iter().enumerate() {
        agg.accept(r);
        let n = i as u32 + 1;
        let at_boundary = n.is_multiple_of(rule.batch) || n == rule.max_runs;
        if n < report.runs && at_boundary && n >= rule.min_runs {
            assert!(!rule.satisfied_by(&agg), "arm should have stopped at boundary {n}");
        }
    }
    assert_eq!(agg, report.aggregate, "report aggregates exactly the first `runs` seeds");
    assert_eq!(report.target_met, rule.satisfied_by(&agg));
    // And the achieved interval is what the report claims.
    assert_eq!(report.half_width, rule.metric.proportion(&agg).wilson_half_width(rule.confidence));
}

#[test]
fn failure_rate_metric_targets_the_complement() {
    let p = plan(ErrorModel::Sigint, Target::App);
    let rule = rule().metric(CiMetric::FailureRate);
    let report = Campaign::new(&p).seed(9_000).adaptive(&rule);
    let prop = CiMetric::FailureRate.proportion(&report.aggregate);
    assert_eq!(report.proportion, prop);
    assert!(report.aggregate.failures <= report.aggregate.errors_injected);
}

#[test]
fn zero_budget_rule_reports_empty_arms() {
    let p = plan(ErrorModel::Sigint, Target::App);
    let report = Campaign::new(&p).seed(1).adaptive(&StoppingRule::default().max_runs(0));
    assert_eq!(report.runs, 0);
    assert!(!report.target_met);
    assert_eq!(report.aggregate, Aggregate::default());
}
