//! Network fault plans: triggers fire, faults heal, and campaigns with
//! partition faults stay byte-identical across worker counts and
//! warm-vs-cold boot — the determinism contract extends to the new
//! injection surface unchanged.

use ree_apps::Scenario;
use ree_inject::{
    execute, execute_full, execute_warm, Campaign, ErrorModel, NetFault, RunPlan, RunResult, Target,
};
use ree_sim::{SimDuration, SimTime};

const SEED0: u64 = 61_000;
const RUNS: u32 = 6;

/// The partition-during-recovery stressor on the 4-node testbed: the
/// SIFT side (nodes 0–1) severed from the application side (2–3) the
/// moment the injected FTM failure is detected.
fn partition_plan(duration_ms: u64) -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::Ftm,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults: vec![NetFault::partition_on_recovery(
            vec![vec![0, 1], vec![2, 3]],
            SimDuration::from_millis(duration_ms),
        )],
    }
}

#[test]
fn recovery_triggered_partition_fires_and_run_recovers() {
    let (result, env) = execute_full(&partition_plan(2_000), SEED0);
    assert!(result.injections > 0, "the SIGINT must be injected: {result:?}");
    assert_eq!(result.net_faults_applied, 1, "the partition must activate: {result:?}");
    assert!(result.recovered(), "the run must still recover after the heal: {result:?}");
    let rendered = env.cluster.trace().render();
    assert!(rendered.contains("net fault imposed"), "missing imposition trace");
    assert!(rendered.contains("net fault healed"), "missing heal trace");
}

#[test]
fn fixed_time_link_fault_fires_without_any_injection_trigger() {
    // An `At` trigger needs no failure detection: the fault window is
    // part of the plan, not a reaction to the error model.
    let plan = RunPlan {
        net_faults: vec![NetFault::link_at(
            2,
            3,
            SimTime::from_secs(40),
            SimDuration::from_secs(1),
        )],
        ..partition_plan(0)
    };
    let result = execute(&plan, SEED0 + 1);
    assert_eq!(result.net_faults_applied, 1, "{result:?}");
}

#[test]
fn partition_campaign_identical_across_thread_counts() {
    let plan = partition_plan(2_000);
    let cold: Vec<RunResult> = (0..u64::from(RUNS)).map(|i| execute(&plan, SEED0 + i)).collect();
    let base = Campaign::new(&plan).runs(RUNS).seed(SEED0);
    let one = base.clone().threads(1).collect();
    let two = base.clone().threads(2).collect();
    let eight = base.clone().threads(8).collect();
    assert_eq!(cold, one, "partition campaign diverged from cold boots");
    assert_eq!(one, two);
    assert_eq!(one, eight);
    assert!(
        one.iter().any(|r| r.net_faults_applied > 0),
        "at least one run must impose the partition"
    );
}

#[test]
fn partition_runs_identical_warm_vs_cold() {
    let plan = partition_plan(5_000);
    let geometry = plan.geometry();
    let snapshot = plan.boot_snapshot();
    for i in 0..u64::from(RUNS) {
        let cold = execute(&plan, SEED0 + i);
        let warm = execute_warm(&plan, &geometry, &snapshot, SEED0 + i);
        assert_eq!(cold, warm, "seed {} diverged warm vs cold", SEED0 + i);
    }
}

#[test]
fn empty_fault_list_is_byte_identical_to_the_legacy_driver() {
    // `net_faults: vec![]` must be indistinguishable from plans that
    // predate the field: same results, same trace.
    let with_field = partition_plan(0);
    let plan = RunPlan { net_faults: vec![], ..with_field };
    let (result, env) = execute_full(&plan, SEED0 + 2);
    assert_eq!(result.net_faults_applied, 0);
    assert!(!env.cluster.trace().render().contains("net fault"), "no fault lines expected");
}
