//! Warm-boot equivalence: forking a shared boot snapshot must be
//! indistinguishable from booting cold, for every seed, at every worker
//! count.
//!
//! This is the proof obligation behind the warm-boot campaign
//! optimisation (the PR 5 analogue of PR 4's
//! `clean_activation_never_draws_from_the_rng`): a campaign's clean boot
//! is a pure function of the plan (never of the run seed), per-run
//! randomness enters only through the re-seeded streams at the snapshot
//! instant, and cloning the booted cluster is faithful — so
//! `execute_warm` ≡ `execute_full` byte-for-byte.

use ree_inject::{
    execute, execute_full, execute_warm, execute_warm_full, Campaign, ErrorModel, RunPlan,
    RunResult, Target,
};
use ree_sim::SimTime;

fn plan(model: ErrorModel, target: Target) -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(0),
        target,
        model,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

const SEED0: u64 = 52_000;
const RUNS: u32 = 6;

/// One snapshot must be shareable across campaign worker threads: the
/// whole live simulation is `Send + Sync` by construction. (A compile-
/// time fact, asserted so a future `Rc`/`RefCell` regression fails
/// here with a readable message instead of deep inside a campaign.)
#[test]
fn snapshot_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ree_apps::BootSnapshot>();
    assert_send_sync::<ree_apps::Running>();
    assert_send_sync::<RunPlan>();
}

/// Cold reference sweep: every run boots its own cluster.
fn cold_sweep(p: &RunPlan) -> Vec<RunResult> {
    (0..u64::from(RUNS)).map(|i| execute(p, SEED0 + i)).collect()
}

#[test]
fn warm_equals_cold_register_sweep() {
    let p = plan(ErrorModel::Register, Target::App);
    let geometry = p.geometry();
    let snapshot = p.boot_snapshot();
    let warm: Vec<RunResult> =
        (0..u64::from(RUNS)).map(|i| execute_warm(&p, &geometry, &snapshot, SEED0 + i)).collect();
    assert_eq!(cold_sweep(&p), warm, "register sweep must be byte-identical warm vs cold");
}

#[test]
fn warm_equals_cold_sigint_sweep() {
    let p = plan(ErrorModel::Sigint, Target::App);
    let geometry = p.geometry();
    let snapshot = p.boot_snapshot();
    let warm: Vec<RunResult> =
        (0..u64::from(RUNS)).map(|i| execute_warm(&p, &geometry, &snapshot, SEED0 + i)).collect();
    assert_eq!(cold_sweep(&p), warm, "sigint sweep must be byte-identical warm vs cold");
}

#[test]
fn warm_final_environment_trace_is_byte_identical_to_cold() {
    // Stronger than RunResult equality: the full rendered trace of the
    // finished environment — every delivery, injection, recovery, and
    // lifecycle line — must match between a cold boot and a fork.
    let p = plan(ErrorModel::Register, Target::Ftm);
    let geometry = p.geometry();
    let snapshot = p.boot_snapshot();
    for seed in [SEED0, SEED0 + 3] {
        let (cold_result, cold_env) = execute_full(&p, seed);
        let (warm_result, warm_env) = execute_warm_full(&p, &geometry, &snapshot, seed);
        assert_eq!(cold_result, warm_result);
        assert_eq!(
            cold_env.cluster.trace().render(),
            warm_env.cluster.trace().render(),
            "trace diverged for seed {seed}"
        );
    }
}

#[test]
fn campaigns_identical_across_thread_counts_and_to_cold() {
    // Campaigns fork from one shared snapshot; the results
    // must equal the per-run cold boots (and each other) at any worker
    // count — including the determinism fixture point that a campaign's
    // output is a pure function of (plan, seeds).
    for model in [ErrorModel::Register, ErrorModel::Sigint] {
        let p = plan(model, Target::App);
        let cold = cold_sweep(&p);
        let base = Campaign::new(&p).runs(RUNS).seed(SEED0);
        let one = base.clone().threads(1).collect();
        let two = base.clone().threads(2).collect();
        let eight = base.clone().threads(8).collect();
        assert_eq!(cold, one, "single-threaded warm campaign diverged from cold boots");
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }
}

#[test]
fn forking_never_mutates_the_snapshot() {
    // The snapshot is shared immutably across worker threads; forking —
    // in any order, any number of times — must not change what later
    // forks see. (This is what makes clean boot seed-independent: no
    // per-run stream state lives in the snapshot.)
    let p = plan(ErrorModel::Sigstop, Target::ExecArmor);
    let geometry = p.geometry();
    let snapshot = p.boot_snapshot();
    let forward: Vec<RunResult> =
        (0..u64::from(RUNS)).map(|i| execute_warm(&p, &geometry, &snapshot, SEED0 + i)).collect();
    let backward: Vec<RunResult> = (0..u64::from(RUNS))
        .rev()
        .map(|i| execute_warm(&p, &geometry, &snapshot, SEED0 + i))
        .collect();
    let backward: Vec<RunResult> = backward.into_iter().rev().collect();
    assert_eq!(forward, backward, "fork order must not matter");
}

#[test]
fn snapshot_boot_is_reproducible() {
    // Booting the same plan twice yields interchangeable snapshots.
    let p = plan(ErrorModel::Register, Target::Heartbeat);
    let geometry = p.geometry();
    let a = p.boot_snapshot();
    let b = p.boot_snapshot();
    assert_eq!(a.booted_to(), b.booted_to());
    for seed in [SEED0, SEED0 + 1] {
        assert_eq!(
            execute_warm(&p, &geometry, &a, seed),
            execute_warm(&p, &geometry, &b, seed),
            "independent boots must be interchangeable"
        );
    }
}
