//! §5-style crash/hang injection smoke tests: every target must recover
//! from SIGINT and SIGSTOP injections (the paper recovered all ~700).

use ree_apps::Scenario;
use ree_inject::{execute, ErrorModel, RunPlan, Target};
use ree_sim::SimTime;

fn plan(target: Target, model: ErrorModel) -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target,
        model,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

fn run_several(target: Target, model: ErrorModel, n: u64) -> (u64, u64, u64) {
    let p = plan(target, model);
    let mut injected = 0;
    let mut recovered = 0;
    let mut completed = 0;
    for seed in 0..n {
        let r = execute(&p, 1000 + seed);
        if r.injections > 0 {
            injected += 1;
            if r.recovered() {
                recovered += 1;
            }
        }
        if r.completed {
            completed += 1;
        }
    }
    (injected, recovered, completed)
}

#[test]
fn sigint_into_application_recovers() {
    let (injected, recovered, completed) = run_several(Target::App, ErrorModel::Sigint, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected, "all injected runs must recover");
    assert_eq!(completed, 6);
}

#[test]
fn sigstop_into_application_recovers() {
    let (injected, recovered, completed) = run_several(Target::App, ErrorModel::Sigstop, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected, "all injected runs must recover");
    assert_eq!(completed, 6);
}

#[test]
fn sigint_into_ftm_recovers() {
    let (injected, recovered, completed) = run_several(Target::Ftm, ErrorModel::Sigint, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn sigstop_into_ftm_recovers() {
    let (injected, recovered, completed) = run_several(Target::Ftm, ErrorModel::Sigstop, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn sigint_into_exec_armor_recovers() {
    let (injected, recovered, completed) = run_several(Target::ExecArmor, ErrorModel::Sigint, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn sigstop_into_exec_armor_recovers() {
    let (injected, recovered, completed) = run_several(Target::ExecArmor, ErrorModel::Sigstop, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn sigint_into_heartbeat_recovers() {
    let (injected, recovered, completed) = run_several(Target::Heartbeat, ErrorModel::Sigint, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn sigstop_into_heartbeat_recovers() {
    let (injected, recovered, completed) = run_several(Target::Heartbeat, ErrorModel::Sigstop, 6);
    assert!(injected >= 4, "injected {injected}/6");
    assert_eq!(recovered, injected);
    assert_eq!(completed, 6);
}

#[test]
fn hang_failures_cost_more_app_time_than_crashes() {
    // §5.1: SIGSTOP app execution time >> SIGINT app execution time
    // because hangs are detected through the progress-indicator timeout.
    let pint = plan(Target::App, ErrorModel::Sigint);
    let pstop = plan(Target::App, ErrorModel::Sigstop);
    let mut int_actual = Vec::new();
    let mut stop_actual = Vec::new();
    for seed in 0..8 {
        let r = execute(&pint, 2000 + seed);
        if r.injections > 0 && r.completed {
            int_actual.push(r.actual.unwrap_or(0.0));
        }
        let r = execute(&pstop, 3000 + seed);
        if r.injections > 0 && r.completed {
            stop_actual.push(r.actual.unwrap_or(0.0));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&stop_actual) > mean(&int_actual) + 5.0,
        "sigstop mean {:.1} should exceed sigint mean {:.1} by > 5 s",
        mean(&stop_actual),
        mean(&int_actual)
    );
}
