//! Cross-thread campaign determinism: the work-stealing executor must
//! return bit-identical results for any worker count, and the streaming
//! fold must agree with the materialise-then-aggregate path.

use ree_apps::Scenario;
use ree_inject::{Aggregate, Campaign, ErrorModel, RunPlan, Target};
use ree_sim::SimTime;

fn plan() -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::App,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

const RUNS: u32 = 6;
const SEED0: u64 = 4100;

#[test]
fn identical_results_for_1_2_and_8_threads() {
    let p = plan();
    let base = Campaign::new(&p).runs(RUNS).seed(SEED0);
    let one = base.clone().threads(1).collect();
    let two = base.clone().threads(2).collect();
    let eight = base.clone().threads(8).collect();
    assert_eq!(one.len(), RUNS as usize);
    assert_eq!(one, two, "2-thread campaign diverged from single-threaded");
    assert_eq!(one, eight, "8-thread campaign diverged from single-threaded");
    // Seed order, not completion order.
    for (i, r) in one.iter().enumerate() {
        assert_eq!(r.seed, SEED0 + i as u64);
    }
}

#[test]
fn streaming_fold_matches_materialised_aggregate() {
    let p = plan();
    let results = Campaign::new(&p).runs(RUNS).seed(SEED0).collect();
    let reference = Aggregate::from_results(&results);
    let streamed = Campaign::new(&p).runs(RUNS).seed(SEED0).aggregate();
    assert_eq!(streamed, reference);
    // And with a skew-inducing thread count relative to the run count.
    let streamed3 = Campaign::new(&p)
        .runs(RUNS)
        .seed(SEED0)
        .threads(3)
        .fold(Aggregate::default(), |a, r| a.accept(&r));
    assert_eq!(streamed3, reference);
}

#[test]
fn zero_and_one_run_campaigns_are_safe_for_any_thread_count() {
    // Regression for the historical `threads.clamp(1, runs as usize)`
    // edge: `runs == 0` relied on an early return to dodge a `1..=0`
    // clamp panic, and `runs == 1` must degrade to one worker. Thread
    // selection is now total (`runs = 0` is executable, not a special
    // case before thread selection), which the adaptive engine's
    // unknown-run-count scheduling requires.
    let p = plan();
    for threads in [1usize, 2, 8] {
        let none = Campaign::new(&p).seed(SEED0).threads(threads).collect();
        assert!(none.is_empty(), "runs defaults to 0 and must yield no results");
        assert_eq!(
            Campaign::new(&p).runs(0).seed(SEED0).threads(threads).aggregate(),
            Aggregate::default()
        );
        let one = Campaign::new(&p).runs(1).seed(SEED0).threads(threads).collect();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].seed, SEED0);
    }
    // Unspecified thread count too.
    assert!(Campaign::new(&p).runs(0).seed(SEED0).collect().is_empty());
}

#[test]
fn spec_and_borrowing_builder_agree() {
    let p = plan();
    let spec = ree_inject::CampaignSpec::new(p.clone()).runs(RUNS).seed(SEED0);
    assert_eq!(spec.collect(), Campaign::new(&p).runs(RUNS).seed(SEED0).collect());
    assert_eq!(spec.aggregate(), Campaign::new(&p).runs(RUNS).seed(SEED0).aggregate());
}

#[test]
fn no_effect_requires_an_injection() {
    // A fault-free completed run (zero injections, correct output) must
    // not be classified as "no effect": the paper's category only covers
    // runs in which an error was actually injected.
    let mut r = ree_inject::execute(&plan(), SEED0);
    r.injections = 0;
    r.induced = None;
    r.restarts = 0;
    let agg = Aggregate::from_results(std::slice::from_ref(&r));
    assert_eq!(agg.no_effect, 0, "zero-injection run counted as no_effect");
    assert_eq!(agg.errors_injected, 0);
    if r.completed && r.output == ree_apps::Verdict::Correct {
        let mut injected = r.clone();
        injected.injections = 1;
        let agg = Aggregate::from_results(std::slice::from_ref(&injected));
        assert_eq!(agg.no_effect, 1, "injected uneventful run must count as no_effect");
    }
}
