//! Cross-thread campaign determinism: the work-stealing executor must
//! return bit-identical results for any worker count, and the streaming
//! fold must agree with the materialise-then-aggregate path.

use ree_apps::Scenario;
use ree_inject::{
    run_campaign, run_campaign_aggregate, run_campaign_fold_with_threads,
    run_campaign_with_threads, Aggregate, ErrorModel, RunPlan, Target,
};
use ree_sim::SimTime;

fn plan() -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::App,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
    }
}

const RUNS: u32 = 6;
const SEED0: u64 = 4100;

#[test]
fn identical_results_for_1_2_and_8_threads() {
    let p = plan();
    let one = run_campaign_with_threads(&p, RUNS, SEED0, 1);
    let two = run_campaign_with_threads(&p, RUNS, SEED0, 2);
    let eight = run_campaign_with_threads(&p, RUNS, SEED0, 8);
    assert_eq!(one.len(), RUNS as usize);
    assert_eq!(one, two, "2-thread campaign diverged from single-threaded");
    assert_eq!(one, eight, "8-thread campaign diverged from single-threaded");
    // Seed order, not completion order.
    for (i, r) in one.iter().enumerate() {
        assert_eq!(r.seed, SEED0 + i as u64);
    }
}

#[test]
fn streaming_fold_matches_materialised_aggregate() {
    let p = plan();
    let results = run_campaign(&p, RUNS, SEED0);
    let reference = Aggregate::from_results(&results);
    let streamed = run_campaign_aggregate(&p, RUNS, SEED0);
    assert_eq!(streamed, reference);
    // And with a skew-inducing thread count relative to the run count.
    let streamed3 =
        run_campaign_fold_with_threads(&p, RUNS, SEED0, 3, Aggregate::default(), |a, r| {
            a.accept(&r)
        });
    assert_eq!(streamed3, reference);
}

#[test]
fn zero_runs_is_empty() {
    let p = plan();
    assert!(run_campaign(&p, 0, SEED0).is_empty());
    assert_eq!(run_campaign_aggregate(&p, 0, SEED0), Aggregate::default());
}

#[test]
fn no_effect_requires_an_injection() {
    // A fault-free completed run (zero injections, correct output) must
    // not be classified as "no effect": the paper's category only covers
    // runs in which an error was actually injected.
    let mut r = ree_inject::execute(&plan(), SEED0);
    r.injections = 0;
    r.induced = None;
    r.restarts = 0;
    let agg = Aggregate::from_results(std::slice::from_ref(&r));
    assert_eq!(agg.no_effect, 0, "zero-injection run counted as no_effect");
    assert_eq!(agg.errors_injected, 0);
    if r.completed && r.output == ree_apps::Verdict::Correct {
        let mut injected = r.clone();
        injected.injections = 1;
        let agg = Aggregate::from_results(std::slice::from_ref(&injected));
        assert_eq!(agg.no_effect, 1, "injected uneventful run must count as no_effect");
    }
}
