//! Typed campaign errors: validation at the supervisor trust boundary
//! and the panic boundary around a single run.

use ree_inject::{
    execute_warm_checked, CampaignError, ErrorModel, NetFault, RunPlan, StoppingRule, Target,
};
use ree_sift::JobSpec;
use ree_sim::{SimDuration, SimTime};

fn plan() -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(1),
        target: Target::App,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    }
}

#[test]
fn well_formed_plan_validates() {
    assert_eq!(plan().validate(), Ok(()));
}

#[test]
fn zero_timeout_is_rejected() {
    let mut p = plan();
    p.timeout = SimTime::ZERO;
    assert!(matches!(p.validate(), Err(CampaignError::InvalidPlan(_))));
}

#[test]
fn out_of_range_job_node_is_rejected() {
    let mut p = plan();
    let nodes = p.scenario.nodes;
    p.scenario.jobs.push(JobSpec {
        app: "texture".into(),
        ranks: 1,
        nodes: vec![nodes as u16], // first node *past* the cluster
        submit_at: SimDuration::from_secs(5),
    });
    let err = p.validate().unwrap_err();
    assert!(matches!(err, CampaignError::InvalidPlan(_)));
    assert!(err.to_string().contains("node"), "unexpected message: {err}");
}

#[test]
fn rank_node_mismatch_is_rejected() {
    let mut p = plan();
    p.scenario.jobs[0].ranks += 1;
    assert!(matches!(p.validate(), Err(CampaignError::InvalidPlan(_))));
}

#[test]
fn net_fault_endpoint_out_of_range_is_rejected() {
    let mut p = plan();
    p.net_faults.push(NetFault::link_at(0, 99, SimTime::from_secs(10), SimDuration::from_secs(5)));
    let err = p.validate().unwrap_err();
    assert!(err.to_string().contains("net fault 0"), "unexpected message: {err}");
}

#[test]
fn degenerate_partition_is_rejected() {
    let mut p = plan();
    p.net_faults.push(NetFault::partition_on_recovery(vec![vec![0, 1]], SimDuration::from_secs(5)));
    assert!(matches!(p.validate(), Err(CampaignError::InvalidPlan(_))));
}

#[test]
fn stopping_rule_try_validate() {
    assert_eq!(StoppingRule::default().try_validate(), Ok(()));
    let bad = StoppingRule::default().confidence(1.5);
    assert!(matches!(bad.try_validate(), Err(CampaignError::InvalidRule(_))));
    let bad = StoppingRule::default().half_width(0.0);
    assert!(matches!(bad.try_validate(), Err(CampaignError::InvalidRule(_))));
    let bad = StoppingRule::default().batch(0);
    assert!(matches!(bad.try_validate(), Err(CampaignError::InvalidRule(_))));
}

#[test]
fn checked_execution_matches_unchecked() {
    let p = plan();
    let geometry = p.geometry();
    let snapshot = p.boot_snapshot();
    let checked = execute_warm_checked(&p, &geometry, &snapshot, 7).expect("run completes");
    let plain = ree_inject::execute_warm(&p, &geometry, &snapshot, 7);
    assert_eq!(checked, plain);
}

#[test]
fn campaign_error_displays() {
    let e = CampaignError::RunPanicked { seed: 42, message: "boom".into() };
    assert_eq!(e.to_string(), "run for seed 42 panicked: boom");
    let e = CampaignError::InvalidPlan("why".into());
    assert_eq!(e.to_string(), "invalid run plan: why");
}
