//! Pins the rendered trace of seeded testbed runs byte-for-byte.
//!
//! The fixtures under `tests/snapshots/` were generated from the
//! pre-`TraceDetail` trace implementation (eager `String` details); the
//! lazily-rendered typed details must reproduce them exactly, so every
//! `Display` impl in the migration is checked against the original
//! `format!` strings on real end-to-end runs — one fault-free, one with
//! repeated register injections (covering injection, signal, recovery,
//! and lifecycle records).
//!
//! Regenerate with `REGEN_TRACE_SNAPSHOT=1 cargo test -p ree-inject
//! --test trace_snapshot` after an *intentional* trace format change.

use ree_inject::{execute_full, ErrorModel, RunPlan, Target};
use ree_sim::SimTime;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name)
}

fn check(name: &str, rendered: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("REGEN_TRACE_SNAPSHOT").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    if expected != rendered {
        // Locate the first divergent line for a useful failure message.
        for (line, (a, b)) in (1..).zip(expected.lines().zip(rendered.lines())) {
            if a != b {
                panic!(
                    "trace render diverges from {} at line {line}:\n  expected: {a}\n  \
                     rendered: {b}",
                    path.display()
                );
            }
        }
        panic!(
            "trace render diverges from {} in length: expected {} lines, rendered {}",
            path.display(),
            expected.lines().count(),
            rendered.lines().count()
        );
    }
}

#[test]
fn fault_free_testbed_render_is_byte_identical() {
    let mut running = ree_apps::Scenario::single_texture(7).start();
    running.run_until_done(SimTime::from_secs(200));
    check("trace_fault_free_seed7.txt", &running.cluster.trace().render());
}

#[test]
fn register_injection_render_is_byte_identical() {
    let plan = RunPlan {
        scenario: ree_apps::Scenario::single_texture(7),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    };
    let (_result, running) = execute_full(&plan, 42);
    check("trace_register_seed42.txt", &running.cluster.trace().render());
}

#[test]
fn sigstop_injection_render_is_byte_identical() {
    // SIGSTOP exercises the hang-detection path: stop/continue signals,
    // probe timeouts, ARMOR kills and recoveries.
    let plan = RunPlan {
        scenario: ree_apps::Scenario::single_texture(7),
        target: Target::Ftm,
        model: ErrorModel::Sigstop,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    };
    let (_result, running) = execute_full(&plan, 11);
    check("trace_sigstop_ftm_seed11.txt", &running.cluster.trace().render());
}
