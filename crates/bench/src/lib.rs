//! # ree-bench — Criterion harnesses regenerating every table and figure
//!
//! Three benchmark suites:
//! * `tables` — one benchmark per paper table (3–12), each executing a
//!   scaled-down campaign per iteration;
//! * `figures` — figures 6–10;
//! * `micro` — component ablations: microcheckpointing, reliable comm,
//!   FFT, k-means, compression, SAN stepping.
//!
//! Absolute numbers are simulator wall-clock; the intent is tracking the
//! cost of each reproduction and catching performance regressions.
