//! # ree-bench — throughput and regression benchmarks
//!
//! Two kinds of measurement (method and history in
//! `docs/PERFORMANCE.md`):
//!
//! * **End-to-end campaign throughput** — the `campaign_bench` binary
//!   runs the paper's standard campaign and emits
//!   `BENCH_campaign.json` (runs/sec, mean/p95 per-run wall time).
//!   This is the headline capacity number every perf PR must move:
//!
//!   ```console
//!   $ cargo run --release -p ree-bench --bin campaign_bench -- --runs 512
//!   $ cargo run --release -p ree-bench --bin campaign_bench -- \
//!       --runs 32 --baseline BENCH_campaign.json   # CI smoke + regression diff
//!   ```
//!
//! * **Criterion suites** — `tables` (one benchmark per paper table
//!   3–12, each a scaled-down campaign), `figures` (figures 6–10),
//!   `micro` (component ablations: microcheckpointing, reliable comm,
//!   FFT, k-means, compression, SAN stepping), `classification`
//!   (typed trace queries), and `hotpath` (event-queue churn, trace
//!   push). Absolute numbers are simulator wall-clock; the intent is
//!   tracking the cost of each reproduction and catching regressions.
//!
//! The library itself only hosts shared helpers; the measurement entry
//! points are the binary and the benches. A campaign is cheap enough
//! to time directly in a test or doc example:
//!
//! ```
//! use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
//! use ree_sim::SimTime;
//!
//! let plan = RunPlan {
//!     scenario: ree_apps::Scenario::single_texture(1),
//!     target: Target::App,
//!     model: ErrorModel::Sigint,
//!     timeout: SimTime::from_secs(220),
//!     net_faults: vec![],
//! };
//! let agg = Campaign::new(&plan).runs(2).seed(7).aggregate();
//! assert!(agg.errors_injected <= 2);
//! ```
