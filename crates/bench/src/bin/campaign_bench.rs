//! End-to-end campaign throughput benchmark: the capacity ceiling for
//! every experiment in the paper is runs/second, so this binary measures
//! it directly and emits `BENCH_campaign.json` for CI artifacts and
//! PR-over-PR comparison.
//!
//! Usage: `campaign_bench [--runs N] [--seed S] [--out PATH] [--quiet]
//! [--baseline PATH] [--strict] [--only LABELS]`
//!
//! `--only` takes a comma-separated list of single-thread sweep labels
//! (e.g. `--only register`), runs just those, and exits without writing
//! JSON — the profiling mode: wrap the binary in `gprofng collect app`
//! and the profile covers exactly the sweep under study instead of the
//! whole suite.
//!
//! `--baseline` compares this invocation's register-sweep runs/sec
//! against a previously committed `BENCH_campaign.json` and prints a
//! GitHub-annotation-style `::warning::` when throughput regressed by
//! more than 10%. By default the comparison never fails the process —
//! CI runners are shared hardware, so absolute numbers are advisory
//! there; the hard gate is a developer re-running on the baseline's
//! machine (see `docs/PERFORMANCE.md`). `--strict` turns a >10%
//! register-sweep regression into a `::error::` and a non-zero exit,
//! for dedicated-hardware runs where the comparison is trustworthy.
//!
//! The workload is the paper's standard table campaign: the texture
//! application on the 4-node testbed under the register error model
//! (repeat-until-failure — the heaviest Table 2 protocol), plus a
//! SIGINT sweep (the lightest), so the measurement brackets the real
//! table workloads. The `partition` sweep adds the
//! partition-during-recovery stressor (FTM SIGINT with the interconnect
//! split at detection) — the network-fault-plan overhead on top of a
//! plain SIGINT sweep. Per-run wall times come from a single-threaded
//! sweep; aggregate throughput is additionally measured with the
//! work-stealing parallel campaign runner.
//!
//! The headline `register`/`sigint` sweeps run **warm** (one boot
//! snapshot per sweep, forked per run — what the `Campaign` executor
//! does); `register_cold`/`sigint_cold` re-measure the same seeds with
//! a full boot per run, so the JSON carries the warm-vs-cold
//! comparison.
//!
//! The `adaptive` section reruns both error models under the
//! confidence-targeted engine (±2% Wilson half-width at 95% on the
//! recovery rate, 512-run budget) and records how many runs the
//! stopping rule actually needed next to the fixed 512-run spend it
//! replaces.
//!
//! The `distributed_register` section re-runs the register sweep across
//! a supervised worker pool (2 and 4 subprocesses; this binary
//! re-executes itself as the workers) so the worker-pool overhead vs
//! the single-process baseline is tracked from the first distributed
//! PR. Each entry asserts the distributed aggregate byte-matches the
//! in-process `Campaign` fold before recording throughput.

use ree_dist::{distribute, DistOptions};
use ree_inject::{execute_warm, Campaign, ErrorModel, NetFault, RunPlan, StoppingRule, Target};
use ree_sim::{SimDuration, SimTime};
use std::time::Instant;

fn plan(model: ErrorModel, seed: u64) -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(seed),
        target: Target::App,
        model,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    }
}

/// The register plan with event tracing disabled — what a pure
/// throughput campaign (no trace-derived diagnostics) pays. Forks of a
/// no-trace snapshot skip the trace buffer entirely, so the gap between
/// this and `register` prices the tracing subsystem.
fn notrace_plan(model: ErrorModel, seed: u64) -> RunPlan {
    let mut scenario = ree_apps::Scenario::single_texture(seed);
    scenario.trace = false;
    RunPlan {
        scenario,
        target: Target::App,
        model,
        timeout: SimTime::from_secs(220),
        net_faults: vec![],
    }
}

/// The partition-during-recovery stressor: SIGINT into the FTM, with the
/// SIFT side (nodes 0–1) split from the application side (2–3) for 2 s
/// the moment the failure is detected.
fn partition_plan(seed: u64) -> RunPlan {
    RunPlan {
        scenario: ree_apps::Scenario::single_texture(seed),
        target: Target::Ftm,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults: vec![NetFault::partition_on_recovery(
            vec![vec![0, 1], vec![2, 3]],
            SimDuration::from_secs(2),
        )],
    }
}

struct Sweep {
    label: &'static str,
    runs: u32,
    total_secs: f64,
    mean_ms: f64,
    p95_ms: f64,
}

impl Sweep {
    fn runs_per_sec(&self) -> f64 {
        f64::from(self.runs) / self.total_secs
    }
}

/// Times `runs` single-threaded **cold** executions of `plan` (full
/// boot per run), recording each run's wall time.
fn sweep_cold(label: &'static str, plan: &RunPlan, runs: u32, seed0: u64) -> Sweep {
    run_sweep(label, runs, |i| ree_inject::execute(plan, seed0 + i))
}

/// Times `runs` single-threaded **warm** executions of `plan`: one boot
/// snapshot, one geometry derivation, a fork per run — the per-worker
/// shape of a `Campaign`. The snapshot boot is timed inside the sweep
/// total, so the amortisation is measured honestly.
fn sweep_warm(label: &'static str, plan: &RunPlan, runs: u32, seed0: u64) -> Sweep {
    let t0 = Instant::now();
    let geometry = plan.geometry();
    let snapshot = plan.boot_snapshot();
    let mut sweep = run_sweep(label, runs, |i| execute_warm(plan, &geometry, &snapshot, seed0 + i));
    sweep.total_secs = t0.elapsed().as_secs_f64();
    sweep
}

fn run_sweep(
    label: &'static str,
    runs: u32,
    mut run: impl FnMut(u64) -> ree_inject::RunResult,
) -> Sweep {
    let mut per_run_ms: Vec<f64> = Vec::with_capacity(runs as usize);
    let t0 = Instant::now();
    for i in 0..u64::from(runs) {
        let r0 = Instant::now();
        let result = run(i);
        std::hint::black_box(&result);
        per_run_ms.push(r0.elapsed().as_secs_f64() * 1e3);
    }
    let total_secs = t0.elapsed().as_secs_f64();
    per_run_ms.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = per_run_ms.iter().sum::<f64>() / per_run_ms.len().max(1) as f64;
    // Nearest-rank p95 (index ceil(0.95 n) - 1).
    let idx = ((per_run_ms.len() as f64 * 0.95).ceil() as usize).saturating_sub(1);
    let p95_ms = per_run_ms.get(idx).copied().unwrap_or(0.0);
    Sweep { label, runs, total_secs, mean_ms, p95_ms }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_sweep(s: &Sweep) -> String {
    format!(
        "{{\"label\": \"{}\", \"runs\": {}, \"total_secs\": {:.3}, \
         \"runs_per_sec\": {:.2}, \"mean_ms\": {:.3}, \"p95_ms\": {:.3}}}",
        s.label,
        s.runs,
        s.total_secs,
        s.runs_per_sec(),
        s.mean_ms,
        s.p95_ms
    )
}

/// One adaptive-engine measurement: the same plan as the fixed sweep,
/// driven until the stopping rule's CI target is met (or the budget is
/// spent), timed end to end.
struct AdaptiveSweep {
    label: &'static str,
    runs_to_target: u32,
    target_met: bool,
    rate: f64,
    half_width: f64,
    total_secs: f64,
    fixed_runs: u32,
}

/// Runs `plan` under a ±2%-at-95% Wilson stopping rule on the recovery
/// rate with a `fixed_runs` budget — the adaptive replacement for a
/// fixed `fixed_runs`-run sweep of the same cell.
fn sweep_adaptive(
    label: &'static str,
    plan: &RunPlan,
    fixed_runs: u32,
    seed0: u64,
) -> AdaptiveSweep {
    let rule = StoppingRule::default().half_width(0.02).max_runs(fixed_runs);
    let t0 = Instant::now();
    let report = Campaign::new(plan).seed(seed0).adaptive(&rule);
    let total_secs = t0.elapsed().as_secs_f64();
    AdaptiveSweep {
        label,
        runs_to_target: report.runs,
        target_met: report.target_met,
        rate: report.proportion.point(),
        half_width: report.half_width,
        total_secs,
        fixed_runs,
    }
}

fn json_adaptive(s: &AdaptiveSweep) -> String {
    format!(
        "{{\"label\": \"{}\", \"runs_to_target\": {}, \"target_met\": {}, \
         \"recovery_rate\": {:.4}, \"half_width\": {:.4}, \"total_secs\": {:.3}, \
         \"runs_per_sec\": {:.2}, \"fixed_runs\": {}, \"runs_saved_vs_fixed\": {}}}",
        s.label,
        s.runs_to_target,
        s.target_met,
        s.rate,
        s.half_width,
        s.total_secs,
        f64::from(s.runs_to_target) / s.total_secs.max(1e-9),
        s.fixed_runs,
        s.fixed_runs.saturating_sub(s.runs_to_target),
    )
}

/// One distributed register sweep: the same plan and seeds as the
/// single-process `register` sweep, executed by a supervised pool of
/// `workers` subprocesses and byte-checked against the in-process
/// aggregate before the throughput is recorded.
struct DistSweep {
    workers: usize,
    runs: u32,
    total_secs: f64,
    identical: bool,
    requeued: u64,
    fallback_runs: u64,
}

fn sweep_dist(plan: &RunPlan, runs: u32, seed0: u64, workers: usize) -> DistSweep {
    let expected = Campaign::new(plan).runs(runs).seed(seed0).aggregate();
    let t0 = Instant::now();
    let report =
        distribute(plan, runs, seed0, &DistOptions::new(workers)).expect("register plan validates");
    let total_secs = t0.elapsed().as_secs_f64();
    DistSweep {
        workers,
        runs,
        total_secs,
        identical: report.completed() && report.aggregate == expected,
        requeued: report.ledger.requeued,
        fallback_runs: report.ledger.fallback_runs,
    }
}

fn json_dist(s: &DistSweep) -> String {
    format!(
        "{{\"label\": \"register_dist_{}w\", \"workers\": {}, \"runs\": {}, \
         \"total_secs\": {:.3}, \"runs_per_sec\": {:.2}, \"identical\": {}, \
         \"requeued\": {}, \"fallback_runs\": {}}}",
        s.workers,
        s.workers,
        s.runs,
        s.total_secs,
        f64::from(s.runs) / s.total_secs.max(1e-9),
        s.identical,
        s.requeued,
        s.fallback_runs,
    )
}

/// Extracts the register sweep's `runs_per_sec` from a committed
/// `BENCH_campaign.json` without a JSON parser dependency: finds the
/// `"label": "register"` entry and reads the next `"runs_per_sec":`
/// number after it.
fn baseline_register_rps(json: &str) -> Option<f64> {
    let at = json.find("\"label\": \"register\"")?;
    let rest = &json[at..];
    let key = "\"runs_per_sec\": ";
    let num = &rest[rest.find(key)? + key.len()..];
    let end = num.find(|c: char| c != '.' && !c.is_ascii_digit()).unwrap_or(num.len());
    num[..end].parse().ok()
}

/// Diffs the measured register sweep against `path`'s committed
/// baseline. A >10% runs/sec regression warns by default; under
/// `strict` it errors and fails the process — the assertion that the
/// register sweep stays within 10% of the committed baseline.
fn compare_with_baseline(path: &str, measured: &Sweep, strict: bool) {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("::warning::cannot read baseline {path}: {e}");
            return;
        }
    };
    let Some(base) = baseline_register_rps(&json) else {
        eprintln!("::warning::no register runs_per_sec found in baseline {path}");
        return;
    };
    let now = measured.runs_per_sec();
    let delta = (now - base) / base * 100.0;
    if now < base * 0.9 {
        if strict {
            eprintln!(
                "::error::campaign throughput regression: register sweep {now:.1} runs/sec vs \
                 baseline {base:.1} ({delta:+.1}%) exceeds the 10% budget (--strict)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "::warning::campaign throughput regression: register sweep {now:.1} runs/sec vs \
             baseline {base:.1} ({delta:+.1}%) — investigate before merging (shared CI runners \
             make this advisory; confirm on dedicated hardware, see docs/PERFORMANCE.md)"
        );
    } else {
        eprintln!("baseline check: register {now:.1} runs/sec vs {base:.1} ({delta:+.1}%)");
    }
}

fn main() {
    // A ree-dist supervisor spawn: become a worker and never return.
    ree_dist::run_worker_if_spawned();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let runs: u32 = get("--runs").and_then(|s| s.parse().ok()).unwrap_or(96);
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(20020401);
    let out = get("--out").unwrap_or_else(|| "BENCH_campaign.json".to_owned());
    let note = get("--note").unwrap_or_default();
    let quiet = args.iter().any(|a| a == "--quiet");

    // Profiling mode: run only the named single-thread sweeps, no JSON.
    if let Some(only) = get("--only") {
        for label in only.split(',') {
            let sweep = match label {
                "register" => sweep_warm("register", &plan(ErrorModel::Register, seed), runs, seed),
                "register_notrace" => sweep_warm(
                    "register_notrace",
                    &notrace_plan(ErrorModel::Register, seed),
                    runs,
                    seed,
                ),
                "sigint" => sweep_warm("sigint", &plan(ErrorModel::Sigint, seed), runs, seed),
                "partition" => sweep_warm("partition", &partition_plan(seed), runs, seed),
                "register_cold" => {
                    sweep_cold("register_cold", &plan(ErrorModel::Register, seed), runs, seed)
                }
                "sigint_cold" => {
                    sweep_cold("sigint_cold", &plan(ErrorModel::Sigint, seed), runs, seed)
                }
                other => {
                    eprintln!("::error::unknown sweep label {other:?} for --only");
                    std::process::exit(2);
                }
            };
            eprintln!("{}", json_sweep(&sweep));
        }
        return;
    }

    let register = sweep_warm("register", &plan(ErrorModel::Register, seed), runs, seed);
    let register_notrace =
        sweep_warm("register_notrace", &notrace_plan(ErrorModel::Register, seed), runs, seed);
    let sigint = sweep_warm("sigint", &plan(ErrorModel::Sigint, seed), runs, seed);
    let partition = sweep_warm("partition", &partition_plan(seed), runs, seed);
    let register_cold = sweep_cold("register_cold", &plan(ErrorModel::Register, seed), runs, seed);
    let sigint_cold = sweep_cold("sigint_cold", &plan(ErrorModel::Sigint, seed), runs, seed);

    // Parallel aggregate throughput with the work-stealing runner.
    let pplan = plan(ErrorModel::Register, seed);
    let t0 = Instant::now();
    let results = Campaign::new(&pplan).runs(runs).seed(seed).collect();
    let parallel_secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(&results);
    let parallel_rps = f64::from(runs) / parallel_secs;

    // Adaptive engine: same cells, but the stopping rule decides the
    // spend. The budget is pinned at 512 (the paper-standard fixed
    // campaign size) independent of `--runs`, so the runs-saved numbers
    // always compare against the sweep the rule replaces.
    let adaptive_register =
        sweep_adaptive("adaptive_register", &plan(ErrorModel::Register, seed), 512, seed);
    let adaptive_sigint =
        sweep_adaptive("adaptive_sigint", &plan(ErrorModel::Sigint, seed), 512, seed);

    // Distributed register sweeps: worker-pool overhead vs the
    // single-process baseline, byte-checked before recording.
    let dist_plan = plan(ErrorModel::Register, seed);
    let dist_2w = sweep_dist(&dist_plan, runs, seed, 2);
    let dist_4w = sweep_dist(&dist_plan, runs, seed, 4);
    for d in [&dist_2w, &dist_4w] {
        if !d.identical {
            eprintln!(
                "::error::distributed register sweep ({} workers) diverged from the \
                 single-process aggregate",
                d.workers
            );
            std::process::exit(1);
        }
    }

    let json = format!(
        "{{\n  \"workload\": \"single_texture 4-node testbed, Target::App\",\n  \
         \"note\": \"{}\",\n  \
         \"runs_per_sweep\": {runs},\n  \"seed\": {seed},\n  \
         \"single_thread\": [\n    {},\n    {},\n    {},\n    {},\n    {},\n    {}\n  ],\n  \
         \"parallel_register\": {{\"runs\": {runs}, \"total_secs\": {parallel_secs:.3}, \
         \"runs_per_sec\": {parallel_rps:.2}}},\n  \
         \"distributed_register\": [\n    {},\n    {}\n  ],\n  \
         \"adaptive\": [\n    {},\n    {}\n  ]\n}}\n",
        json_escape(&note),
        json_sweep(&register),
        json_sweep(&register_notrace),
        json_sweep(&sigint),
        json_sweep(&partition),
        json_sweep(&register_cold),
        json_sweep(&sigint_cold),
        json_dist(&dist_2w),
        json_dist(&dist_4w),
        json_adaptive(&adaptive_register),
        json_adaptive(&adaptive_sigint),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    if !quiet {
        print!("{json}");
        eprintln!("wrote {out}");
    }
    if let Some(baseline) = get("--baseline") {
        compare_with_baseline(&baseline, &register, args.iter().any(|a| a == "--strict"));
    }
}
