//! Micro-benchmarks for the simulation hot path introduced by the
//! allocation-free kernel refactor: indexed-heap event-queue operations
//! and typed trace appends.
//!
//! These pin the per-operation costs that the end-to-end
//! `campaign_bench` binary measures in aggregate; a regression here
//! shows up before it has drowned in whole-campaign noise.

use criterion::{criterion_group, criterion_main, Criterion};
use ree_armor::{CheckpointBuffer, Fields, Value};
use ree_os::{Pid, Trace, TraceDetail, TraceEvent, TraceKind};
use ree_sim::{EventQueue, SimTime};
use std::hint::black_box;

fn hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");

    group.bench_function("queue_schedule_pop_churn", |b| {
        // Steady-state simulator shape: a standing population of pending
        // events with interleaved schedule/pop.
        let mut q = EventQueue::new();
        for i in 0..256u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        let mut t = 256u64 * 7;
        b.iter(|| {
            let popped = q.pop().expect("standing population");
            t += 13;
            q.schedule(SimTime::from_micros(t), popped.2);
            black_box(popped.0)
        });
    });

    group.bench_function("queue_cancel_o_log_n", |b| {
        // Schedule + cancel, the timer-heavy ARMOR pattern: cancellation
        // must physically remove the entry (no tombstone rot).
        let mut q = EventQueue::new();
        for i in 0..256u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        let mut t = 256u64 * 7;
        b.iter(|| {
            t += 13;
            let h = q.schedule(SimTime::from_micros(t), t);
            black_box(q.cancel(h))
        });
    });

    group.bench_function("queue_peek_time", |b| {
        let mut q = EventQueue::new();
        for i in 0..256u64 {
            q.schedule(SimTime::from_micros(i * 7), i);
        }
        b.iter(|| black_box(q.peek_time()));
    });

    group.bench_function("trace_push_typed_detail", |b| {
        // The per-delivery record: label + pid captured by value, no
        // formatting.
        let mut trace = Trace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if trace.len() >= 300_000 {
                trace.clear();
            }
            trace.push(
                SimTime::from_micros(i),
                Some(Pid(3)),
                TraceKind::Message,
                TraceDetail::Deliver { label: "armor-wire", from: Pid(7) },
            );
        });
    });

    group.bench_function("trace_push_event_typed_detail", |b| {
        let mut trace = Trace::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if trace.len() >= 300_000 {
                trace.clear();
            }
            trace.push_event(
                SimTime::from_micros(i),
                Some(Pid(3)),
                TraceKind::Recovery,
                TraceEvent::RecoveryCompleted,
                TraceDetail::AppRecovered { slot: 0, attempt: 1 },
            );
        });
    });

    group.bench_function("trace_render_100", |b| {
        // The deferred cost: rendering happens only on the debug path.
        let mut trace = Trace::new();
        for i in 0..100u64 {
            trace.push(
                SimTime::from_micros(i),
                Some(Pid(3)),
                TraceKind::Message,
                TraceDetail::Deliver { label: "armor-wire", from: Pid(7) },
            );
        }
        b.iter(|| black_box(trace.render().len()));
    });

    group.bench_function("snapshot_fork", |b| {
        // The per-run cost a warm campaign pays before injecting
        // anything: fork the boot snapshot (CoW storage and frozen
        // trace make this a deep copy of live state only) and reseed.
        let plan = ree_inject::RunPlan {
            scenario: ree_apps::Scenario::single_texture(11),
            target: ree_inject::Target::App,
            model: ree_inject::ErrorModel::Register,
            timeout: SimTime::from_secs(220),
            net_faults: vec![],
        };
        let snapshot = plan.boot_snapshot();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(snapshot.fork(seed))
        });
    });

    group.bench_function("fork_cow_write", |b| {
        // First storage write after a fork: the one write that pays the
        // copy-on-write unsharing of the remote file table.
        let plan = ree_inject::RunPlan {
            scenario: ree_apps::Scenario::single_texture(11),
            target: ree_inject::Target::App,
            model: ree_inject::ErrorModel::Register,
            timeout: SimTime::from_secs(220),
            net_faults: vec![],
        };
        let snapshot = plan.boot_snapshot();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut run = snapshot.fork(seed);
            run.cluster.remote_fs().write("bench/cow", vec![0xA5; 64]);
            black_box(run.cluster.remote_fs_ref().peek("bench/cow").map(<[u8]>::len))
        });
    });

    group.bench_function("ckpt_encode_dirty", |b| {
        // The per-send commit after one element changed: incremental
        // encode patches the dirty span of the cached image instead of
        // rebuilding the whole stable-storage image.
        let states: Vec<(String, Fields)> = (0..6)
            .map(|i| {
                let mut f = Fields::new();
                f.set("id", Value::U64(i));
                f.set("count", Value::U64(0));
                f.set("peer", Value::Str("armor-peer".into()));
                (format!("element{i}"), f)
            })
            .collect();
        let mut ckpt = CheckpointBuffer::new(states.iter().map(|(n, f)| (n.as_str(), f)));
        let _ = ckpt.encode();
        let mut f = states[2].1.clone();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            f.set("count", Value::U64(n));
            ckpt.update("element2", &f);
            black_box(ckpt.encode().len())
        });
    });

    group.bench_function("ckpt_update_unchanged", |b| {
        // The other commit-path win: a touched-but-unchanged element
        // costs one scratch encode + compare, no copy and no dirty span.
        let mut f = Fields::new();
        f.set("id", Value::U64(1));
        f.set("peer", Value::Str("armor-peer".into()));
        let mut ckpt = CheckpointBuffer::new([("element", &f)]);
        let _ = ckpt.encode();
        b.iter(|| black_box(ckpt.update("element", &f)));
    });

    group.finish();
}

criterion_group!(benches, hotpath);
criterion_main!(benches);
