//! One benchmark per paper table. Each iteration executes one
//! representative injection run of that table's campaign (campaigns are
//! embarrassingly parallel, so per-run cost is the scaling unit).

use criterion::{criterion_group, criterion_main, Criterion};
use ree_apps::Scenario;
use ree_inject::{execute, ErrorModel, RunPlan, Target};
use ree_os::HeapTarget;
use ree_sim::SimTime;
use std::hint::black_box;

fn plan(target: Target, model: ErrorModel) -> RunPlan {
    RunPlan {
        scenario: Scenario::single_texture(0),
        target,
        model,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    group.bench_function("table3_fault_free_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut run = Scenario::single_texture(seed).start();
            black_box(run.run_until_done(SimTime::from_secs(200)))
        });
    });
    group.bench_function("table4_sigint_app_run", |b| {
        let p = plan(Target::App, ErrorModel::Sigint);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table4_sigstop_exec_run", |b| {
        let p = plan(Target::ExecArmor, ErrorModel::Sigstop);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table5_hb30_ftm_run", |b| {
        let mut scenario = Scenario::single_texture(0);
        scenario.sift = scenario.sift.with_heartbeat_period(ree_sim::SimDuration::from_secs(30));
        let p = RunPlan {
            scenario,
            target: Target::Ftm,
            model: ErrorModel::Sigint,
            timeout: SimTime::from_secs(400),
            net_faults: vec![],
        };
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table6_register_ftm_run", |b| {
        let p = plan(Target::Ftm, ErrorModel::Register);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table6_text_app_run", |b| {
        let p = plan(Target::App, ErrorModel::TextSegment);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table7_heap_ftm_run", |b| {
        let p = plan(Target::Ftm, ErrorModel::Heap);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table8_targeted_node_mgmt_run", |b| {
        let p = plan(Target::Ftm, ErrorModel::HeapSingle(HeapTarget::Region("node_mgmt".into())));
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table10_app_heap_run", |b| {
        let p = plan(Target::App, ErrorModel::HeapSingle(HeapTarget::Any));
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.bench_function("table11_two_app_fault_free_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut run = Scenario::two_apps(seed).start();
            black_box(run.run_until_done(SimTime::from_secs(700)))
        });
    });
    group.bench_function("table12_register_otis_run", |b| {
        let p = RunPlan {
            scenario: Scenario::two_apps(0),
            target: Target::NamedApp("otis".into()),
            model: ErrorModel::Register,
            timeout: SimTime::from_secs(700),
            net_faults: vec![],
        };
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(execute(&p, seed))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_tables
}
criterion_main!(benches);
