//! One benchmark per paper figure (6–10), each iterating one
//! representative run of that figure's experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use ree_apps::Scenario;
use ree_experiments::figures;
use ree_os::Signal;
use ree_san::{solve, ReeModelParams};
use ree_sim::SimTime;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig6_hang_detection_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut running = Scenario::single_texture(seed).start();
            running.run_until(SimTime::from_secs(30));
            if let Some(pid) =
                running.cluster.all_procs().into_iter().find(|p| {
                    running.cluster.name_of(*p).map(|n| n.contains("-r1-")).unwrap_or(false)
                })
            {
                running.cluster.send_signal(pid, Signal::Stop);
            }
            black_box(running.run_until_done(SimTime::from_secs(250)))
        });
    });
    group.bench_function("fig7_ftm_setup_kill_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut running = Scenario::single_texture(seed).start();
            running.run_until(SimTime::from_micros(5_500_000));
            if let Some(ftm) = running.cluster.find_by_name("ftm") {
                running.cluster.send_signal(ftm, Signal::Int);
            }
            black_box(running.run_until_done(SimTime::from_secs(400)))
        });
    });
    group.bench_function("fig8_mpi_abort_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut running = Scenario::single_texture(seed).start();
            running.run_until(SimTime::from_micros(6_700_000));
            if let Some(ftm) = running.cluster.find_by_name("ftm") {
                running.cluster.send_signal(ftm, Signal::Int);
            }
            black_box(running.run_until_done(SimTime::from_secs(400)))
        });
    });
    group.bench_function("fig9_san_point", |b| {
        let params = ReeModelParams { sift_failure_rate: 1.0 / 600.0, ..Default::default() };
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(solve(&params, 200_000.0, seed))
        });
    });
    group.bench_function("fig10_race_pair", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(figures::fig10(seed))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_figures
}
criterion_main!(benches);
