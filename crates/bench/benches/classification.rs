//! Classification-path benchmarks for the typed trace subsystem:
//! string-scan vs typed-query classification on a realistic-size trace,
//! and campaign wall-clock through the work-stealing streaming executor.

use criterion::{criterion_group, criterion_main, Criterion};
use ree_apps::Scenario;
use ree_inject::{Campaign, ErrorModel, RunPlan, Target};
use ree_os::{Pid, Trace, TraceEvent, TraceKind};
use ree_sim::SimTime;
use std::hint::black_box;

/// Builds a trace shaped like a long injection run: mostly message and
/// lifecycle noise, with the classification-relevant events sprinkled in.
fn synthetic_run_trace(records: u64) -> Trace {
    let mut t = Trace::new();
    t.push_event(
        SimTime::ZERO,
        Some(Pid(3)),
        TraceKind::App,
        TraceEvent::SubmissionAccepted,
        "FTM accepted submission of texture (slot 0)",
    );
    for i in 0..4 {
        t.push_event(
            SimTime::from_secs(5 + i),
            Some(Pid(10 + i)),
            TraceKind::App,
            TraceEvent::ExecArmorInstalled,
            format!("installed exec as armor{} ({}) on node{}", 40 + i, 10 + i, 2 + i % 2),
        );
    }
    for i in 0..records {
        t.push(
            SimTime::from_micros(6_000_000 + i * 500),
            Some(Pid(20 + i % 8)),
            TraceKind::Message,
            format!("deliver armor-wire from pid{}", 4 + i % 6),
        );
    }
    t.push_event(
        SimTime::from_secs(70),
        Some(Pid(11)),
        TraceKind::App,
        TraceEvent::AssertionFired,
        "exec0_1 assertion fired: progress-indicator range",
    );
    t
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    group.sample_size(20);

    // The exact queries runner.rs issues once per run, per classification:
    // assertion check, hang attribution, and the system-failure phases.
    let trace = synthetic_run_trace(100_000);

    group.bench_function("string_scan_queries", |b| {
        b.iter(|| {
            let assertion = trace.contains("assertion fired");
            let hang = trace.contains("fault-induced hang") || trace.contains("detect hang");
            let submitted = trace.contains("FTM accepted submission");
            let execs = trace.count("installed exec");
            let terminated = trace.count("app-terminated");
            black_box((assertion, hang, submitted, execs, terminated))
        });
    });

    group.bench_function("typed_event_queries", |b| {
        b.iter(|| {
            let assertion = trace.any(TraceEvent::AssertionFired);
            let hang =
                trace.any(TraceEvent::FaultInducedHang) || trace.any(TraceEvent::HangDetected);
            let submitted = trace.any(TraceEvent::SubmissionAccepted);
            let execs = trace.count_of(TraceEvent::ExecArmorInstalled);
            let terminated = trace.count_of(TraceEvent::AppTerminated);
            black_box((assertion, hang, submitted, execs, terminated))
        });
    });
    group.finish();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let plan = RunPlan {
        scenario: Scenario::single_texture(0),
        target: Target::App,
        model: ErrorModel::Sigint,
        timeout: SimTime::from_secs(320),
        net_faults: vec![],
    };
    group.bench_function("campaign_4x_materialised", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1000;
            black_box(Campaign::new(&plan).runs(4).seed(seed).threads(4).collect().len())
        });
    });
    group.bench_function("campaign_4x_streaming_fold", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1000;
            black_box(Campaign::new(&plan).runs(4).seed(seed).aggregate().errors_injected)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
