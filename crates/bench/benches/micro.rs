//! Component micro-benchmarks and design ablations called out in
//! DESIGN.md: microcheckpoint throughput, reliable-comm round trips, the
//! science kernels, SAN stepping, and a full fault-free SIFT run.

use criterion::{criterion_group, criterion_main, Criterion};
use ree_armor::{ArmorEvent, ArmorId, CheckpointBuffer, Fields, Inbound, ReliableComm, Value};
use ree_experiments::Scenario;
use ree_san::{solve, ReeModelParams};
use ree_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");

    group.bench_function("microcheckpoint_update_commit", |b| {
        let mut fields = Fields::new();
        for i in 0..16 {
            fields.set(format!("field{i}"), Value::U64(i));
        }
        let mut buf = CheckpointBuffer::new([("element", &fields)]);
        b.iter(|| {
            buf.update("element", &fields);
            black_box(buf.encode())
        });
    });

    group.bench_function("reliable_comm_roundtrip", |b| {
        let mut a = ReliableComm::new(ArmorId(1), SimDuration::from_secs(2));
        let mut z = ReliableComm::new(ArmorId(2), SimDuration::from_secs(2));
        b.iter(|| {
            let pkt = a.send(SimTime::ZERO, ArmorId(2), vec![ArmorEvent::new("bench")]);
            if let Inbound::Deliver(msg) = z.on_packet(pkt) {
                let ack = z.acknowledge(&msg);
                black_box(a.on_packet(ack));
            }
        });
    });

    group.bench_function("fft_256", |b| {
        let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        b.iter(|| black_box(ree_apps::fft::fft_real(&signal)));
    });

    group.bench_function("texture_filter_64px", |b| {
        let img = ree_apps::synth::mars_surface(64, 7);
        b.iter(|| black_box(ree_apps::filters::filter_tiles(&img, 0, 0..64, 8)));
    });

    group.bench_function("kmeans_64x3", |b| {
        let img = ree_apps::synth::mars_surface(64, 7);
        let per: Vec<Vec<(usize, f64)>> =
            (0..3).map(|f| ree_apps::filters::filter_tiles(&img, f, 0..64, 8)).collect();
        let features = ree_apps::filters::assemble_features(&per, 64);
        b.iter(|| black_box(ree_apps::kmeans::kmeans(&features, 3, 4, 50)));
    });

    group.bench_function("compress_4k_samples", |b| {
        let values: Vec<f64> = (0..4096).map(|i| 285.0 + (i as f64 * 0.01).sin()).collect();
        let q = ree_apps::compress::quantize(&values);
        b.iter(|| black_box(ree_apps::compress::compress(&q)));
    });

    group.bench_function("san_solve_100k", |b| {
        let params = ReeModelParams::default();
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(solve(&params, 100_000.0, seed))
        });
    });

    group.bench_function("fault_free_sift_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut run = Scenario::single_texture(seed).start();
            black_box(run.run_until_done(SimTime::from_secs(200)))
        });
    });

    // Ablation: assertions on vs off for a fault-free run (overhead of
    // the self-checking mechanisms themselves).
    group.bench_function("ablation_assertions_off", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut scenario = Scenario::single_texture(seed);
            scenario.sift.assertions_enabled = false;
            let mut run = scenario.start();
            black_box(run.run_until_done(SimTime::from_secs(200)))
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(6)).warm_up_time(std::time::Duration::from_secs(1));
    targets = micro
}
criterion_main!(benches);
