//! The process table: a generational slab indexed directly by [`Pid`],
//! with a per-node pid index and an interned name→pid index.
//!
//! The simulation inner loop resolves a pid on every event dispatch, so
//! lookups must not hash. Entries live in a slab (`slots`, recycled via
//! a free list) and a dense `by_pid` vector maps pid serial → slot in
//! O(1). Pids are never reused (a documented property of the OS model:
//! stale references must be detectable), so the pid serial itself acts
//! as the slot generation — a freed slot's next occupant holds a higher
//! pid, and the `by_pid` entry for a dead pid is tombstoned, making
//! every stale lookup miss deterministically.
//!
//! The secondary indexes fix two O(n) scans the `HashMap` table forced:
//! [`ProcTable::procs_on_node`] returns a maintained sorted slice
//! (previously: filter + collect + sort per call), and
//! [`ProcTable::find_by_name`] reads the interned name index with
//! **lowest-pid-wins** semantics on duplicate names (previously:
//! `HashMap` iteration order — whichever hashed first).

use crate::process::Pid;
use ree_net::NodeId;
use std::collections::HashMap;
use std::sync::Arc;

/// `by_pid` tombstone: pid not (or no longer) in the table.
const NONE: u32 = u32::MAX;

#[derive(Clone)]
struct Slot<T> {
    node: NodeId,
    name: Arc<str>,
    entry: T,
}

/// Generational-slab process table with node and name indexes.
pub(crate) struct ProcTable<T> {
    slots: Vec<Option<Slot<T>>>,
    free: Vec<u32>,
    /// pid serial → slot index ([`NONE`] when dead/unknown).
    by_pid: Vec<u32>,
    /// Per-node live pids, ascending.
    by_node: Vec<Vec<Pid>>,
    /// Interned name → live pids with that name, ascending.
    by_name: HashMap<Arc<str>, Vec<Pid>>,
    next_pid: u64,
    len: usize,
}

/// Cloning deep-copies every entry (warm-boot snapshot forking) while
/// preserving the slab vectors' capacity: the snapshot's table sits at
/// its boot-time high-water mark and forked runs spawn recovery
/// processes past the current length, so a `len`-sized clone would
/// re-grow on every run.
impl<T: Clone> Clone for ProcTable<T> {
    fn clone(&self) -> Self {
        fn presized<T: Clone>(v: &[T], capacity: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(capacity);
            out.extend_from_slice(v);
            out
        }
        ProcTable {
            slots: presized(&self.slots, self.slots.capacity()),
            free: presized(&self.free, self.free.capacity()),
            by_pid: presized(&self.by_pid, self.by_pid.capacity()),
            by_node: self.by_node.clone(),
            by_name: self.by_name.clone(),
            next_pid: self.next_pid,
            len: self.len,
        }
    }
}

impl<T> ProcTable<T> {
    /// Creates an empty table for a cluster of `nodes` nodes.
    pub(crate) fn new(nodes: usize) -> Self {
        ProcTable {
            slots: Vec::new(),
            free: Vec::new(),
            by_pid: vec![NONE], // Pid(0) is never issued.
            by_node: vec![Vec::new(); nodes],
            by_name: HashMap::new(),
            next_pid: 1,
            len: 0,
        }
    }

    /// Number of live processes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Inserts a new process, assigning it the next pid serial.
    pub(crate) fn insert(&mut self, node: NodeId, name: Arc<str>, entry: T) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let slot_entry = Slot { node, name: Arc::clone(&name), entry };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot_entry);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("process table slot overflow");
                self.slots.push(Some(slot_entry));
                i
            }
        };
        debug_assert_eq!(self.by_pid.len() as u64, pid.0);
        self.by_pid.push(slot);
        // New pids are strictly increasing, so pushing keeps both
        // secondary indexes sorted.
        self.by_node[node.0 as usize].push(pid);
        self.by_name.entry(name).or_default().push(pid);
        self.len += 1;
        pid
    }

    #[inline]
    fn slot_of(&self, pid: Pid) -> Option<u32> {
        match self.by_pid.get(pid.0 as usize) {
            Some(&s) if s != NONE => Some(s),
            _ => None,
        }
    }

    /// True if the pid is live.
    pub(crate) fn contains(&self, pid: Pid) -> bool {
        self.slot_of(pid).is_some()
    }

    /// Immutable entry access — O(1), no hashing.
    #[inline]
    pub(crate) fn get(&self, pid: Pid) -> Option<&T> {
        let slot = self.slot_of(pid)?;
        Some(&self.slots[slot as usize].as_ref().expect("indexed slot occupied").entry)
    }

    /// Mutable entry access — O(1), no hashing.
    #[inline]
    pub(crate) fn get_mut(&mut self, pid: Pid) -> Option<&mut T> {
        let slot = self.slot_of(pid)?;
        Some(&mut self.slots[slot as usize].as_mut().expect("indexed slot occupied").entry)
    }

    /// Node a live pid runs on — O(1).
    pub(crate) fn node_of(&self, pid: Pid) -> Option<NodeId> {
        let slot = self.slot_of(pid)?;
        Some(self.slots[slot as usize].as_ref().expect("indexed slot occupied").node)
    }

    /// Interned instance name of a live pid — O(1).
    pub(crate) fn name_of(&self, pid: Pid) -> Option<&Arc<str>> {
        let slot = self.slot_of(pid)?;
        Some(&self.slots[slot as usize].as_ref().expect("indexed slot occupied").name)
    }

    /// Removes a process, returning `(node, name, entry)` — callers that
    /// need the identity after death (exit traces) take it from here so
    /// the entry type does not have to duplicate it.
    pub(crate) fn remove_full(&mut self, pid: Pid) -> Option<(NodeId, Arc<str>, T)> {
        let slot = self.slot_of(pid)?;
        self.by_pid[pid.0 as usize] = NONE;
        let Slot { node, name, entry } =
            self.slots[slot as usize].take().expect("indexed slot occupied");
        self.free.push(slot);
        self.len -= 1;
        let on_node = &mut self.by_node[node.0 as usize];
        if let Ok(i) = on_node.binary_search(&pid) {
            on_node.remove(i);
        }
        if let Some(named) = self.by_name.get_mut(&name) {
            if let Ok(i) = named.binary_search(&pid) {
                named.remove(i);
            }
            if named.is_empty() {
                // Drop the key so transient instance names (relaunch
                // attempts) do not accumulate across a long run.
                self.by_name.remove(&name);
            }
        }
        Some((node, name, entry))
    }

    /// Lowest live pid carrying `name` (deterministic under duplicate
    /// names; respawns always rank after survivors).
    pub(crate) fn find_by_name(&self, name: &str) -> Option<Pid> {
        self.by_name.get(name).and_then(|pids| pids.first().copied())
    }

    /// Live pids on `node`, ascending — a maintained index, not a scan.
    pub(crate) fn procs_on_node(&self, node: NodeId) -> &[Pid] {
        self.by_node.get(node.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All live pids, ascending.
    pub(crate) fn all_pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = Vec::with_capacity(self.len);
        for node in &self.by_node {
            v.extend_from_slice(node);
        }
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ProcTable<&'static str> {
        ProcTable::new(2)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = table();
        let a = t.insert(NodeId(0), "a".into(), "A");
        let b = t.insert(NodeId(1), "b".into(), "B");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Some(&"A"));
        assert_eq!(t.get_mut(b), Some(&mut "B"));
        let (node, name, entry) = t.remove_full(a).expect("live entry removed");
        assert_eq!((node, &*name, entry), (NodeId(0), "a", "A"));
        assert_eq!(t.get(a), None);
        assert!(!t.contains(a));
        assert!(t.remove_full(a).is_none(), "double remove");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pids_never_reused_even_when_slots_are() {
        let mut t = table();
        let a = t.insert(NodeId(0), "a".into(), "A");
        t.remove_full(a);
        // Reuses a's slot but must not reuse its pid.
        let b = t.insert(NodeId(0), "b".into(), "B");
        assert!(b > a);
        assert_eq!(t.get(a), None, "stale pid must miss the recycled slot");
        assert_eq!(t.get(b), Some(&"B"));
    }

    #[test]
    fn find_by_name_is_lowest_pid_wins() {
        let mut t = table();
        let first = t.insert(NodeId(0), "ftm".into(), "first");
        let second = t.insert(NodeId(1), "ftm".into(), "second");
        assert_eq!(t.find_by_name("ftm"), Some(first), "duplicate names resolve to lowest pid");
        t.remove_full(first);
        assert_eq!(t.find_by_name("ftm"), Some(second));
        t.remove_full(second);
        assert_eq!(t.find_by_name("ftm"), None);
    }

    #[test]
    fn node_index_stays_sorted_through_churn() {
        let mut t = table();
        let a = t.insert(NodeId(0), "a".into(), "A");
        let b = t.insert(NodeId(0), "b".into(), "B");
        let c = t.insert(NodeId(1), "c".into(), "C");
        assert_eq!(t.procs_on_node(NodeId(0)), &[a, b]);
        assert_eq!(t.procs_on_node(NodeId(1)), &[c]);
        t.remove_full(a);
        let d = t.insert(NodeId(0), "d".into(), "D");
        assert_eq!(t.procs_on_node(NodeId(0)), &[b, d]);
        assert_eq!(t.procs_on_node(NodeId(7)), &[] as &[Pid], "unknown node is empty");
        assert_eq!(t.all_pids(), vec![b, c, d]);
    }
}
