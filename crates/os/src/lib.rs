//! # ree-os — the simulated REE cluster operating system
//!
//! Substitute for the paper's PowerPC-750 / LynxOS testbed (§2). Provides
//! everything the SIFT protocols observe from their OS:
//!
//! * a **process table** with parent/child `waitpid` semantics (§3.2 —
//!   "crash detection for child processes is implemented by having a
//!   thread within the parent process block on a `waitpid()` call");
//! * **signals** — SIGINT (crash model), SIGSTOP (hang model), SIGSEGV /
//!   SIGILL (fault manifestations), SIGKILL / SIGCONT;
//! * **timers** and chunked **CPU work** in virtual time;
//! * asynchronous **message delivery** over the [`ree_net`] interconnect;
//! * per-node **RAM disks** (checkpoint stable storage, §3.4) and the
//!   shared **remote file system** (the Sun workstation in Figure 2);
//! * the **machine-state fault model** (registers + text segment) whose
//!   corruption activates on access, substituting for NFTAPE's
//!   hardware-level injectors (Table 2);
//! * a structured **trace** used by experiments and tests.
//!
//! Higher layers implement behaviour by writing [`Process`] state
//! machines; the ARMOR runtime, mini-MPI, and the applications are all
//! ordinary processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod machine;
mod process;
mod ptable;
mod storage;
mod trace;

pub use cluster::{Cluster, ClusterConfig, ProcCtx, SpawnSpec, TextSource, TimerId, WorkId};
pub use machine::{
    FaultConsequence, FunctionSite, InjectionSite, MachineProfile, MachineState, RegClass, TextHit,
};
pub use process::{
    ExitStatus, FieldKind, HeapHit, HeapModel, HeapTarget, Message, Payload, Pid, Process,
    ProcessClone, Signal,
};
pub use storage::{DiskError, RamDisk, RemoteFs};
pub use trace::{Trace, TraceDetail, TraceEvent, TraceKind, TraceRecord};

// Re-export the interconnect vocabulary so most consumers only need
// ree-os: node identity plus the topology-construction surface
// (scenarios place workloads on explicit topologies).
pub use ree_net::{
    LinkId, LinkParams, Network, NetworkConfig, NodeId, Port, SwitchId, Topology, TopologyBuilder,
};
