//! The simulated cluster: nodes, process table, signals, timers, CPU work,
//! message delivery, and the fault-activation hook.
//!
//! This is the substrate substituting for the paper's 4/6-node PowerPC-750
//! LynxOS testbed (§2). Everything the SIFT protocols can observe — child
//! exits via `waitpid`, process-table liveness, signal semantics, message
//! timing, stable storage — is modelled here; everything above (ARMORs,
//! MPI, applications) is ordinary `Process` behaviour.

use crate::machine::{FaultConsequence, InjectionSite, MachineState};
use crate::process::{ExitStatus, HeapHit, HeapTarget, Message, Payload, Pid, Process, Signal};
use crate::ptable::ProcTable;
use crate::storage::{RamDisk, RemoteFs};
use crate::trace::{Trace, TraceDetail, TraceEvent, TraceKind};
use ree_net::{Network, NetworkConfig, NodeId, SendVerdict, Topology};
use ree_sim::{EventHandle, EventQueue, SimDuration, SimRng, SimTime};
use std::sync::Arc;

/// Identifies a pending timer (for cancellation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

/// Identifies a unit of CPU work (for cancellation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkId(u64);

/// Where a newly spawned process's text image comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TextSource {
    /// Fresh image loaded from the (uncorruptible) remote file system.
    Pristine,
    /// Copy of another process's current image — the daemon
    /// fork-style recovery of §3.4, which *propagates text corruption*.
    CopyFrom(Pid),
}

/// Parameters for spawning a process.
pub struct SpawnSpec {
    /// Human-readable instance name (unique names ease trace queries).
    pub name: String,
    /// Node to run on.
    pub node: NodeId,
    /// The behaviour state machine.
    pub behavior: Box<dyn Process>,
    /// Parent for `waitpid` notification, if any.
    pub parent: Option<Pid>,
    /// Text-image source.
    pub text: TextSource,
    /// Override of the spawn latency (e.g. image copy vs. disk reload).
    pub latency: Option<SimDuration>,
}

impl SpawnSpec {
    /// Convenience constructor with pristine text and default latency.
    pub fn new(name: impl Into<String>, node: NodeId, behavior: Box<dyn Process>) -> Self {
        SpawnSpec {
            name: name.into(),
            node,
            behavior,
            parent: None,
            text: TextSource::Pristine,
            latency: None,
        }
    }

    /// Sets the parent process.
    pub fn with_parent(mut self, parent: Pid) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Sets the text-image source.
    pub fn with_text(mut self, text: TextSource) -> Self {
        self.text = text;
        self
    }

    /// Sets an explicit spawn latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = Some(latency);
        self
    }
}

impl std::fmt::Debug for SpawnSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpawnSpec")
            .field("name", &self.name)
            .field("node", &self.node)
            .field("parent", &self.parent)
            .field("text", &self.text)
            .finish()
    }
}

/// Static configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes (the paper uses 4 and 6).
    pub nodes: usize,
    /// Interconnect model, used as a degenerate single-switch topology
    /// when no explicit `topology` is given.
    pub net: NetworkConfig,
    /// Explicit interconnect topology (switches, per-link parameters);
    /// `None` builds [`Topology::single_switch`] from `net`, which
    /// reproduces the historical flat model byte-for-byte.
    pub topology: Option<Topology>,
    /// Master seed; all stochastic behaviour derives from it.
    pub seed: u64,
    /// Per-node RAM-disk capacity in bytes.
    pub ramdisk_capacity: usize,
    /// Whether node failure wipes the node's RAM disk (checkpoints lost).
    pub wipe_ramdisk_on_node_failure: bool,
    /// Granularity at which CPU work executes (and faults can activate).
    pub work_chunk: SimDuration,
    /// Latency of process creation.
    pub spawn_latency: SimDuration,
    /// Whether the trace buffer records events.
    pub trace_enabled: bool,
}

impl ClusterConfig {
    /// The paper's 4-node testbed (two boards × two PowerPC 750s).
    pub fn ree_testbed(seed: u64) -> Self {
        ClusterConfig {
            nodes: 4,
            net: NetworkConfig::ethernet_100mbps(),
            topology: None,
            seed,
            ramdisk_capacity: 2 << 20,
            wipe_ramdisk_on_node_failure: true,
            work_chunk: SimDuration::from_millis(250),
            spawn_latency: SimDuration::from_millis(150),
            trace_enabled: true,
        }
    }

    /// The 6-node testbed used for the two-application experiments (§8).
    pub fn ree_testbed_6node(seed: u64) -> Self {
        ClusterConfig { nodes: 6, ..Self::ree_testbed(seed) }
    }
}

#[derive(Clone)]
enum OsEvent {
    Start { pid: Pid },
    Deliver { to: Pid, from: Pid, label: &'static str, payload: Box<dyn Payload> },
    Timer { pid: Pid, timer_id: u64, tag: u64 },
    WorkChunk { pid: Pid, work_id: u64 },
    SignalEv { pid: Pid, sig: Signal },
    ChildExit { parent: Pid, child: Pid, status: ExitStatus },
}

#[derive(Clone)]
struct WorkState {
    tag: u64,
    remaining: SimDuration,
}

#[derive(Clone)]
struct ProcEntry {
    kind: &'static str,
    parent: Option<Pid>,
    behavior: Option<Box<dyn Process>>,
    machine: MachineState,
    stopped: bool,
    deaf: bool,
    stash: Vec<OsEvent>,
    /// Armed one-shot timer ids. A process holds a handful at a time, so
    /// a linear vector beats hashing on the per-event path.
    live_timers: Vec<u64>,
    /// In-progress CPU work units, keyed by work id (same small-n
    /// argument as `live_timers`).
    works: Vec<(u64, WorkState)>,
    spawned_at: SimTime,
}

#[derive(Clone)]
struct NodeState {
    ramdisk: RamDisk,
    alive: bool,
}

/// The simulated cluster world.
///
/// # Examples
///
/// ```
/// use ree_os::{Cluster, ClusterConfig, Message, Process, ProcCtx, SpawnSpec};
/// use ree_net::NodeId;
/// use ree_sim::SimTime;
///
/// #[derive(Clone)]
/// struct Hello;
/// impl Process for Hello {
///     fn kind(&self) -> &'static str { "hello" }
///     fn on_start(&mut self, ctx: &mut ProcCtx<'_>) { ctx.trace("hello started"); }
///     fn on_message(&mut self, _msg: Message, _ctx: &mut ProcCtx<'_>) {}
/// }
///
/// let mut cluster = Cluster::new(ClusterConfig::ree_testbed(1));
/// cluster.spawn(SpawnSpec::new("hello", NodeId(0), Box::new(Hello)));
/// cluster.run_until(SimTime::from_secs(1));
/// assert!(cluster.trace().contains("hello started"));
/// ```
///
/// A cluster is [`Clone`]: a booted cluster can be deep-copied and each
/// copy driven independently (the warm-boot campaign snapshot). Combine
/// with [`Cluster::reseed`] to give each copy its own random streams.
#[derive(Clone)]
pub struct Cluster {
    config: ClusterConfig,
    now: SimTime,
    queue: EventQueue<OsEvent>,
    net: Network,
    nodes: Vec<NodeState>,
    procs: ProcTable<ProcEntry>,
    /// Exit records, indexed by pid serial (dense: one slot per pid ever
    /// issued).
    graveyard: Vec<Option<(SimTime, ExitStatus)>>,
    remote_fs: RemoteFs,
    rng: SimRng,
    machine_rng: SimRng,
    trace: Trace,
    next_timer: u64,
    next_work: u64,
    pending_self_exit: Option<ExitStatus>,
    current_pid: Option<Pid>,
}

impl Cluster {
    /// Builds a cluster from configuration.
    pub fn new(config: ClusterConfig) -> Self {
        let mut master = SimRng::new(config.seed);
        let net_rng = master.fork(1);
        let rng = master.fork(2);
        let machine_rng = master.fork(3);
        let nodes = (0..config.nodes)
            .map(|_| NodeState {
                ramdisk: RamDisk::with_capacity(config.ramdisk_capacity),
                alive: true,
            })
            .collect();
        let mut trace = Trace::new();
        trace.set_enabled(config.trace_enabled);
        let net = match &config.topology {
            Some(topology) => {
                assert!(
                    topology.nodes() as usize >= config.nodes,
                    "topology covers {} nodes but the cluster has {}",
                    topology.nodes(),
                    config.nodes
                );
                Network::with_topology(topology.clone(), net_rng)
            }
            None => Network::new(config.net.clone(), config.nodes as u16, net_rng),
        };
        Cluster {
            net,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes,
            procs: ProcTable::new(config.nodes),
            graveyard: Vec::new(),
            remote_fs: RemoteFs::new(),
            rng,
            machine_rng,
            trace,
            next_timer: 1,
            next_work: 1,
            pending_self_exit: None,
            current_pid: None,
            config,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (to clear between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The shared remote file system.
    pub fn remote_fs(&mut self) -> &mut RemoteFs {
        &mut self.remote_fs
    }

    /// Read-only remote FS access.
    pub fn remote_fs_ref(&self) -> &RemoteFs {
        &self.remote_fs
    }

    /// A node's RAM disk.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn ramdisk(&mut self, node: NodeId) -> &mut RamDisk {
        &mut self.nodes[node.0 as usize].ramdisk
    }

    /// Direct network access (for load injection in recovery paths).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read-only network access (traffic counters, topology, routes).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Forks an independent RNG stream (for injectors).
    pub fn fork_rng(&mut self, tag: u64) -> SimRng {
        self.rng.fork(tag)
    }

    /// Re-seeds every random stream (network jitter/drop, cluster,
    /// machine model) exactly as [`Cluster::new`] derives them from
    /// `seed`, discarding the streams' current positions. Deterministic
    /// non-stream state — event queue, process table, storage, trace —
    /// is untouched.
    ///
    /// This is the warm-boot forking contract: a campaign boots one
    /// cluster (under the campaign's scenario seed), clones it per run,
    /// and re-seeds each clone with the run seed. A cold run that boots
    /// its own cluster and re-seeds at the same instant produces
    /// byte-identical behaviour, because the post-reseed streams are a
    /// pure function of `seed` and the pre-reseed boot is a pure
    /// function of the scenario.
    pub fn reseed(&mut self, seed: u64) {
        let mut master = SimRng::new(seed);
        self.net.reseed(master.fork(1));
        self.rng = master.fork(2);
        self.machine_rng = master.fork(3);
        self.config.seed = seed;
    }

    // ------------------------------------------------------------------
    // Process management
    // ------------------------------------------------------------------

    /// Spawns a process; it starts after the spawn latency.
    ///
    /// # Panics
    ///
    /// Panics if the target node does not exist.
    pub fn spawn(&mut self, spec: SpawnSpec) -> Pid {
        assert!((spec.node.0 as usize) < self.nodes.len(), "spawn on unknown node");
        let kind = spec.behavior.kind();
        let profile = spec.behavior.machine_profile();
        let text = match spec.text {
            TextSource::Pristine => MachineState::generic_text_image(kind),
            TextSource::CopyFrom(src) => self
                .procs
                .get(src)
                .map(|e| e.machine.copy_text_image())
                .unwrap_or_else(|| MachineState::generic_text_image(kind)),
        };
        let name: Arc<str> = spec.name.into();
        let entry = ProcEntry {
            kind,
            parent: spec.parent,
            behavior: Some(spec.behavior),
            machine: MachineState::new(profile, text),
            stopped: false,
            deaf: false,
            stash: Vec::new(),
            live_timers: Vec::new(),
            works: Vec::new(),
            spawned_at: self.now,
        };
        let pid = self.procs.insert(spec.node, Arc::clone(&name), entry);
        let latency = spec.latency.unwrap_or(self.config.spawn_latency);
        self.queue.schedule(self.now + latency, OsEvent::Start { pid });
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Lifecycle,
            TraceDetail::Spawn { name, kind, node: spec.node },
        );
        pid
    }

    /// True if the process is in the process table.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.contains(pid)
    }

    /// True if the process is alive but stopped (hung).
    pub fn is_stopped(&self, pid: Pid) -> bool {
        self.procs.get(pid).map(|e| e.stopped).unwrap_or(false)
    }

    /// True if the process suffers receive omissions (messages dropped).
    pub fn is_deaf(&self, pid: Pid) -> bool {
        self.procs.get(pid).map(|e| e.deaf).unwrap_or(false)
    }

    /// Exit record of a dead process.
    pub fn exit_status(&self, pid: Pid) -> Option<&(SimTime, ExitStatus)> {
        self.graveyard.get(pid.0 as usize).and_then(Option::as_ref)
    }

    /// Node a live process runs on.
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.procs.node_of(pid)
    }

    /// Instance name of a live process.
    pub fn name_of(&self, pid: Pid) -> Option<&str> {
        self.procs.name_of(pid).map(|n| &**n)
    }

    /// Behaviour kind of a live process (e.g. `armor`, `mpi-app`).
    pub fn kind_of(&self, pid: Pid) -> Option<&'static str> {
        self.procs.get(pid).map(|e| e.kind)
    }

    /// Finds a live process by instance name. Duplicate names resolve
    /// to the **lowest** live pid (deterministic; previously this
    /// depended on `HashMap` iteration order).
    pub fn find_by_name(&self, name: &str) -> Option<Pid> {
        self.procs.find_by_name(name)
    }

    /// All live processes on a node, ascending — a maintained index
    /// (no allocation or sorting per call).
    pub fn procs_on_node(&self, node: NodeId) -> &[Pid] {
        self.procs.procs_on_node(node)
    }

    /// All live processes, ascending.
    pub fn all_procs(&self) -> Vec<Pid> {
        self.procs.all_pids()
    }

    // ------------------------------------------------------------------
    // Fault injection surface
    // ------------------------------------------------------------------

    /// Delivers a signal to a process (the SIGINT/SIGSTOP error models).
    pub fn send_signal(&mut self, pid: Pid, sig: Signal) {
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Injection,
            TraceDetail::SignalInjected(sig),
        );
        self.queue.schedule(self.now, OsEvent::SignalEv { pid, sig });
    }

    /// Flips a bit in the target's register file.
    pub fn inject_register(&mut self, pid: Pid) -> Option<InjectionSite> {
        let entry = self.procs.get_mut(pid)?;
        let site = entry.machine.inject_register_bit(&mut self.machine_rng);
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Injection,
            TraceDetail::RegisterFlip(site.clone()),
        );
        Some(site)
    }

    /// Flips a bit in the target's text segment.
    pub fn inject_text(&mut self, pid: Pid) -> Option<InjectionSite> {
        let entry = self.procs.get_mut(pid)?;
        let site = entry.machine.inject_text_bit(&mut self.machine_rng);
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Injection,
            TraceDetail::TextFlip(site.clone()),
        );
        Some(site)
    }

    /// Flips a bit in the target's heap model.
    pub fn inject_heap(&mut self, pid: Pid, target: &HeapTarget) -> Option<HeapHit> {
        // Split borrows: heap lives in behaviour, RNG in the cluster.
        let entry = self.procs.get_mut(pid)?;
        let behavior = entry.behavior.as_mut()?;
        let hit = behavior.heap()?.flip_bit(&mut self.machine_rng, target)?;
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Injection,
            TraceDetail::HeapFlip(hit.clone()),
        );
        Some(hit)
    }

    /// Crashes an entire node: all processes killed, every incident
    /// link taken down ([`Network::set_node_down`]), RAM disk optionally
    /// wiped. Loopback on the failed node is unaffected (nothing is
    /// left running to use it).
    pub fn fail_node(&mut self, node: NodeId) {
        self.trace.push(self.now, None, TraceKind::Injection, TraceDetail::NodeFailed(node));
        let victims: Vec<Pid> = self.procs_on_node(node).to_vec();
        for pid in victims {
            self.terminate(pid, ExitStatus::Killed(Signal::Kill), false);
        }
        self.nodes[node.0 as usize].alive = false;
        if self.config.wipe_ramdisk_on_node_failure {
            self.nodes[node.0 as usize].ramdisk.wipe();
        }
        self.net.set_node_down(node, true);
    }

    /// Restores a failed node (rebooted, empty).
    pub fn restore_node(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = true;
        self.net.set_node_down(node, false);
        self.trace.push(self.now, None, TraceKind::Recovery, TraceDetail::NodeRestored(node));
    }

    /// True if the node is up.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.0 as usize).map(|n| n.alive).unwrap_or(false)
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Executes the next pending event, returning its time, or `None` if
    /// the cluster is quiescent.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, _, ev) = self.queue.pop()?;
        self.now = time;
        self.dispatch(ev);
        Some(time)
    }

    /// Runs until `horizon`; afterwards `now() == horizon` unless the
    /// queue drained earlier (then `now()` is the last event time).
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (time, _, ev) = self.queue.pop().expect("peeked event");
            self.now = time;
            self.dispatch(ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
        self.now
    }

    /// Handles of every event that could legally fire next — all events
    /// scheduled for the earliest pending instant, in deterministic
    /// `(time, seq)` order. [`Cluster::step`] always fires the first;
    /// a model checker branches over the full set, because same-instant
    /// delivery order is a modelling choice, not a causal one. Empty
    /// when the cluster is quiescent.
    pub fn step_choices(&self) -> Vec<EventHandle> {
        self.queue.ready_handles()
    }

    /// Executes the specific pending event addressed by `handle`, which
    /// must be one of the current [`Cluster::step_choices`]. Handles for
    /// later instants (which would break causality), stale handles, and
    /// handles minted by another cluster's queue are rejected with
    /// `None`, leaving the cluster untouched.
    pub fn step_with(&mut self, handle: EventHandle) -> Option<SimTime> {
        let time = self.queue.time_of(handle)?;
        if Some(time) != self.queue.peek_time() {
            return None;
        }
        let (time, ev) = self.queue.pop_at(handle).expect("handle verified live");
        self.now = time;
        self.dispatch(ev);
        Some(time)
    }

    /// Time of the next pending event without executing it, or `None`
    /// when quiescent.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Short static label of a pending event (e.g. `"start"`,
    /// `"deliver"`, `"timer"`), or `None` for stale/foreign handles.
    /// Lets fault-model tooling pick branch victims by event class
    /// without exposing the private event type.
    pub fn event_label(&self, handle: EventHandle) -> Option<&'static str> {
        self.queue.get(handle).map(|ev| match ev {
            OsEvent::Start { .. } => "start",
            OsEvent::Deliver { .. } => "deliver",
            OsEvent::Timer { .. } => "timer",
            OsEvent::WorkChunk { .. } => "work",
            OsEvent::SignalEv { .. } => "signal",
            OsEvent::ChildExit { .. } => "child-exit",
        })
    }

    /// Discards a pending event without dispatching it — the sabotage
    /// primitive for model-checker self-tests: dropping an OS wakeup
    /// models a lost event the recovery protocols must survive. The
    /// drop is recorded in the trace. Returns the event's scheduled
    /// time, or `None` for stale/foreign handles.
    pub fn discard_event(&mut self, handle: EventHandle) -> Option<SimTime> {
        let label = self.event_label(handle)?;
        let (time, _ev) = self.queue.pop_at(handle)?;
        self.trace.push(
            self.now,
            None,
            TraceKind::Injection,
            TraceDetail::Custom(format!("event omitted: {label}").into_boxed_str()),
        );
        Some(time)
    }

    /// Runs until `pred` holds (checked after each event) or the horizon
    /// passes. Returns `true` if the predicate was satisfied.
    pub fn run_until_pred<F: FnMut(&Cluster) -> bool>(
        &mut self,
        horizon: SimTime,
        mut pred: F,
    ) -> bool {
        if pred(self) {
            return true;
        }
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (time, _, ev) = self.queue.pop().expect("peeked event");
            self.now = time;
            self.dispatch(ev);
            if pred(self) {
                return true;
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
        false
    }

    // ------------------------------------------------------------------
    // State digest
    // ------------------------------------------------------------------

    /// Feeds a canonical encoding of every piece of mutable cluster
    /// state into `h`, so two clusters that will behave identically
    /// hash identically and two that have diverged (almost surely) do
    /// not. This is the convergence-pruning primitive for bounded model
    /// checking: branches whose digests collide are explored once.
    ///
    /// Canonicalisation rules:
    ///
    /// * **Pending events** are hashed in `(time, seq)` firing order
    ///   with seqs **rank-renumbered** (0, 1, 2, … in firing order):
    ///   only the *relative* order of seqs affects future pops, so two
    ///   states reached by different interleavings — whose absolute seq
    ///   counters differ — still converge.
    /// * **RNG streams** (cluster, machine, network) hash by position:
    ///   equal visible state with diverged randomness must not prune.
    /// * **Behaviour state** (`Box<dyn Process>`) is opaque; it is
    ///   approximated by the trace's typed-event counters plus every
    ///   storage effect (RAM-disk and remote-FS contents). A behaviour
    ///   divergence invisible to all three could in principle collide —
    ///   accepted and documented in `docs/MODELCHECK.md`.
    pub fn write_state_digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.now.hash(h);
        self.rng.state().hash(h);
        self.machine_rng.state().hash(h);
        self.net.write_state_digest(h);
        // Nodes: liveness plus full RAM-disk contents (sorted by path
        // by construction).
        self.nodes.len().hash(h);
        for node in &self.nodes {
            node.alive.hash(h);
            node.ramdisk.used().hash(h);
            for path in node.ramdisk.paths() {
                path.hash(h);
                node.ramdisk.read(path).hash(h);
            }
        }
        // Remote FS: contents plus the version/read/write counters the
        // completion probes key on.
        self.remote_fs.version().hash(h);
        self.remote_fs.reads().hash(h);
        self.remote_fs.writes().hash(h);
        for path in self.remote_fs.paths() {
            path.hash(h);
            self.remote_fs.peek(path).hash(h);
        }
        // Process table, ascending pid (deterministic already).
        let pids = self.procs.all_pids();
        pids.len().hash(h);
        for pid in pids {
            let entry = self.procs.get(pid).expect("live pid");
            pid.hash(h);
            self.procs.name_of(pid).expect("live pid").hash(h);
            entry.kind.hash(h);
            self.procs.node_of(pid).expect("live pid").hash(h);
            entry.parent.hash(h);
            entry.stopped.hash(h);
            entry.deaf.hash(h);
            entry.spawned_at.hash(h);
            entry.stash.len().hash(h);
            for ev in &entry.stash {
                hash_event_fingerprint(ev, h);
            }
            let mut timers = entry.live_timers.clone();
            timers.sort_unstable();
            timers.hash(h);
            let mut works: Vec<(u64, u64, SimDuration)> =
                entry.works.iter().map(|(id, w)| (*id, w.tag, w.remaining)).collect();
            works.sort_unstable();
            works.hash(h);
            entry.machine.has_pending_corruption().hash(h);
            entry.machine.corrupted_text_sites().hash(h);
            entry.machine.activations().hash(h);
            entry.machine.faults_activated().hash(h);
        }
        // Graveyard (exit history) and id counters.
        self.graveyard.len().hash(h);
        for slot in &self.graveyard {
            match slot {
                None => h.write_u8(0),
                Some((t, status)) => {
                    h.write_u8(1);
                    t.hash(h);
                    hash_exit_status(status, h);
                }
            }
        }
        self.next_timer.hash(h);
        self.next_work.hash(h);
        // Behaviour-state proxy: what the environment has observed.
        self.trace.counters().hash(h);
        // Pending events in firing order, seqs rank-renumbered.
        let mut pending: Vec<(SimTime, u64, &OsEvent)> = self.queue.iter_pending().collect();
        pending.sort_unstable_by_key(|&(t, s, _)| (t, s));
        pending.len().hash(h);
        for (rank, (time, _seq, ev)) in pending.into_iter().enumerate() {
            time.hash(h);
            rank.hash(h);
            hash_event_fingerprint(ev, h);
        }
    }

    fn dispatch(&mut self, ev: OsEvent) {
        match ev {
            OsEvent::SignalEv { pid, sig } => {
                self.handle_signal(pid, sig);
                return;
            }
            OsEvent::WorkChunk { pid, work_id } => {
                self.handle_work_chunk(pid, work_id);
                return;
            }
            OsEvent::Timer { pid, timer_id, .. } => {
                // One-shot semantics: a cancelled timer never fires. Fired
                // timers stashed during a stop re-arm their id on resume.
                let live = match self.procs.get_mut(pid) {
                    Some(e) => match e.live_timers.iter().position(|t| *t == timer_id) {
                        Some(i) => {
                            e.live_timers.swap_remove(i);
                            true
                        }
                        None => false,
                    },
                    None => false,
                };
                if !live {
                    return;
                }
            }
            _ => {}
        }
        let pid = match &ev {
            OsEvent::Start { pid } => *pid,
            OsEvent::Deliver { to, .. } => *to,
            OsEvent::Timer { pid, .. } => *pid,
            OsEvent::ChildExit { parent, .. } => *parent,
            OsEvent::SignalEv { .. } | OsEvent::WorkChunk { .. } => unreachable!(),
        };
        let Some(ev) = self.pre_execute(pid, ev) else { return };
        match ev {
            OsEvent::Start { .. } => self.with_behavior(pid, |b, ctx| b.on_start(ctx)),
            OsEvent::Deliver { from, label, payload, .. } => {
                self.trace.push(
                    self.now,
                    Some(pid),
                    TraceKind::Message,
                    TraceDetail::Deliver { label, from },
                );
                self.with_behavior(pid, |b, ctx| {
                    b.on_message(Message { from, label, payload }, ctx)
                });
            }
            OsEvent::Timer { tag, .. } => self.with_behavior(pid, |b, ctx| b.on_timer(tag, ctx)),
            OsEvent::ChildExit { child, status, .. } => {
                self.with_behavior(pid, |b, ctx| b.on_child_exit(child, status, ctx));
            }
            OsEvent::SignalEv { .. } | OsEvent::WorkChunk { .. } => unreachable!(),
        }
    }

    /// Common pre-execution path: liveness check, stop-stashing, and
    /// fault activation. Returns the event back if it should be delivered
    /// to the behaviour, `None` if it was consumed (process dead, event
    /// stashed, or fault-induced crash).
    fn pre_execute(&mut self, pid: Pid, ev: OsEvent) -> Option<OsEvent> {
        let entry = self.procs.get_mut(pid)?;
        if entry.stopped {
            entry.stash.push(ev);
            return None;
        }
        if entry.deaf {
            if let OsEvent::Deliver { label, .. } = &ev {
                self.trace.push(
                    self.now,
                    Some(pid),
                    TraceKind::Message,
                    TraceDetail::OmissionDrop { label },
                );
                return None;
            }
        }
        match entry.machine.activate(&mut self.machine_rng) {
            None => Some(ev),
            Some(FaultConsequence::SegFault) => {
                self.terminate(pid, ExitStatus::Killed(Signal::Segv), true);
                None
            }
            Some(FaultConsequence::IllegalInstruction) => {
                self.terminate(pid, ExitStatus::Killed(Signal::Ill), true);
                None
            }
            Some(FaultConsequence::Hang) => {
                entry.stopped = true;
                entry.stash.push(ev);
                self.trace.push_event(
                    self.now,
                    Some(pid),
                    TraceKind::Lifecycle,
                    TraceEvent::FaultInducedHang,
                    "fault-induced hang",
                );
                None
            }
            Some(FaultConsequence::SilentCorruption) => {
                if let Some(b) = entry.behavior.as_mut() {
                    b.silent_corruption(&mut self.machine_rng);
                }
                self.trace.push(self.now, Some(pid), TraceKind::Injection, "silent corruption");
                Some(ev)
            }
            Some(FaultConsequence::ReceiveOmission) => {
                entry.deaf = true;
                self.trace.push(
                    self.now,
                    Some(pid),
                    TraceKind::Lifecycle,
                    "fault-induced receive omission",
                );
                Some(ev)
            }
        }
    }

    /// Takes the behaviour out, runs `f` with a context, handles
    /// self-exit, and puts the behaviour back.
    fn with_behavior<F>(&mut self, pid: Pid, f: F)
    where
        F: FnOnce(&mut Box<dyn Process>, &mut ProcCtx<'_>),
    {
        let Some(entry) = self.procs.get_mut(pid) else { return };
        let Some(mut behavior) = entry.behavior.take() else { return };
        self.current_pid = Some(pid);
        {
            let mut ctx = ProcCtx { cluster: self, pid };
            f(&mut behavior, &mut ctx);
        }
        self.current_pid = None;
        if let Some(status) = self.pending_self_exit.take() {
            // Behaviour requested exit; drop it and terminate.
            drop(behavior);
            self.terminate(pid, status, true);
        } else if let Some(entry) = self.procs.get_mut(pid) {
            entry.behavior = Some(behavior);
        }
        // If the entry vanished (killed during its own handler via a
        // signal it sent itself synchronously — not possible since signals
        // are queued), the behaviour is dropped here.
    }

    fn handle_signal(&mut self, pid: Pid, sig: Signal) {
        let Some(entry) = self.procs.get_mut(pid) else { return };
        match sig {
            Signal::Int | Signal::Kill => {
                self.terminate(pid, ExitStatus::Killed(sig), true);
            }
            Signal::Segv | Signal::Ill => {
                self.terminate(pid, ExitStatus::Killed(sig), true);
            }
            Signal::Stop => {
                entry.stopped = true;
                self.trace.push(self.now, Some(pid), TraceKind::Signal, "stopped");
            }
            Signal::Cont => {
                if entry.stopped {
                    entry.stopped = false;
                    let stash = std::mem::take(&mut entry.stash);
                    self.trace.push(self.now, Some(pid), TraceKind::Signal, "continued");
                    for ev in stash {
                        if let OsEvent::Timer { timer_id, .. } = &ev {
                            // The id was consumed when the timer fired
                            // into the stash; re-arm it for redelivery.
                            entry.live_timers.push(*timer_id);
                        }
                        self.queue.schedule(self.now, ev);
                    }
                }
            }
        }
    }

    fn handle_work_chunk(&mut self, pid: Pid, work_id: u64) {
        let chunk = self.config.work_chunk;
        let Some(entry) = self.procs.get_mut(pid) else { return };
        if !entry.works.iter().any(|(id, _)| *id == work_id) {
            return;
        }
        if entry.stopped {
            entry.stash.push(OsEvent::WorkChunk { pid, work_id });
            return;
        }
        // Fault activation for this slice of computation.
        match entry.machine.activate(&mut self.machine_rng) {
            None => {}
            Some(FaultConsequence::SegFault) => {
                self.terminate(pid, ExitStatus::Killed(Signal::Segv), true);
                return;
            }
            Some(FaultConsequence::IllegalInstruction) => {
                self.terminate(pid, ExitStatus::Killed(Signal::Ill), true);
                return;
            }
            Some(FaultConsequence::Hang) => {
                entry.stopped = true;
                entry.stash.push(OsEvent::WorkChunk { pid, work_id });
                self.trace.push_event(
                    self.now,
                    Some(pid),
                    TraceKind::Lifecycle,
                    TraceEvent::FaultInducedHang,
                    "fault-induced hang",
                );
                return;
            }
            Some(FaultConsequence::SilentCorruption) => {
                if let Some(b) = entry.behavior.as_mut() {
                    b.silent_corruption(&mut self.machine_rng);
                }
                self.trace.push(self.now, Some(pid), TraceKind::Injection, "silent corruption");
            }
            Some(FaultConsequence::ReceiveOmission) => {
                entry.deaf = true;
                self.trace.push(
                    self.now,
                    Some(pid),
                    TraceKind::Lifecycle,
                    "fault-induced receive omission",
                );
            }
        }
        let Some(entry) = self.procs.get_mut(pid) else { return };
        let Some(i) = entry.works.iter().position(|(id, _)| *id == work_id) else { return };
        let work = &mut entry.works[i].1;
        if work.remaining > chunk {
            work.remaining -= chunk;
            self.queue.schedule(self.now + chunk, OsEvent::WorkChunk { pid, work_id });
        } else {
            let tag = work.tag;
            entry.works.swap_remove(i);
            self.with_behavior(pid, |b, ctx| b.on_work_done(tag, ctx));
        }
    }

    fn terminate(&mut self, pid: Pid, status: ExitStatus, notify_parent: bool) {
        let Some((_, name, entry)) = self.procs.remove_full(pid) else { return };
        self.trace.push(
            self.now,
            Some(pid),
            TraceKind::Lifecycle,
            TraceDetail::ProcExit { name, status: status.clone() },
        );
        let serial = pid.0 as usize;
        if self.graveyard.len() <= serial {
            self.graveyard.resize(serial + 1, None);
        }
        self.graveyard[serial] = Some((self.now, status.clone()));
        if notify_parent {
            if let Some(parent) = entry.parent {
                if self.procs.contains(parent) {
                    // waitpid wakes the parent essentially immediately.
                    self.queue.schedule(
                        self.now + SimDuration::from_micros(500),
                        OsEvent::ChildExit { parent, child: pid, status },
                    );
                }
            }
        }
    }
}

/// Hashes an event's identity — variant tag, pids, labels, ids — but not
/// its opaque payload. Two pending `Deliver`s that agree on sender,
/// receiver, and protocol label hash alike even if their payloads were
/// computed differently; the payload divergence surfaces through the
/// storage/trace state it came from.
fn hash_event_fingerprint(ev: &OsEvent, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash;
    match ev {
        OsEvent::Start { pid } => {
            h.write_u8(0);
            pid.hash(h);
        }
        OsEvent::Deliver { to, from, label, .. } => {
            h.write_u8(1);
            to.hash(h);
            from.hash(h);
            label.hash(h);
        }
        OsEvent::Timer { pid, timer_id, tag } => {
            h.write_u8(2);
            pid.hash(h);
            timer_id.hash(h);
            tag.hash(h);
        }
        OsEvent::WorkChunk { pid, work_id } => {
            h.write_u8(3);
            pid.hash(h);
            work_id.hash(h);
        }
        OsEvent::SignalEv { pid, sig } => {
            h.write_u8(4);
            pid.hash(h);
            sig.hash(h);
        }
        OsEvent::ChildExit { parent, child, status } => {
            h.write_u8(5);
            parent.hash(h);
            child.hash(h);
            hash_exit_status(status, h);
        }
    }
}

/// Hashes an [`ExitStatus`] (which has no `Hash` impl of its own because
/// it carries a free-form abort reason).
fn hash_exit_status(status: &ExitStatus, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash;
    match status {
        ExitStatus::Exited(code) => {
            h.write_u8(0);
            code.hash(h);
        }
        ExitStatus::Killed(sig) => {
            h.write_u8(1);
            sig.hash(h);
        }
        ExitStatus::Aborted(reason) => {
            h.write_u8(2);
            reason.hash(h);
        }
    }
}

/// The system-call surface a process sees while handling an event.
pub struct ProcCtx<'a> {
    cluster: &'a mut Cluster,
    pid: Pid,
}

impl ProcCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.cluster.now
    }

    /// This process's PID.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.cluster.procs.node_of(self.pid).expect("self entry")
    }

    /// Deterministic random stream (shared cluster stream).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.cluster.rng
    }

    /// Sends `payload` (`size` simulated bytes) to another process.
    ///
    /// Delivery is asynchronous and may be silently dropped by a lossy or
    /// partitioned network; reliable protocols must acknowledge.
    pub fn send<T: Payload>(&mut self, to: Pid, label: &'static str, size: u64, payload: T) {
        self.send_boxed(to, label, size, Box::new(payload));
    }

    /// Type-erased variant of [`ProcCtx::send`].
    pub fn send_boxed(
        &mut self,
        to: Pid,
        label: &'static str,
        size: u64,
        payload: Box<dyn Payload>,
    ) {
        let from_node = self.node();
        let to_node = match self.cluster.procs.node_of(to) {
            Some(n) => n,
            None => {
                // Destination already dead: packet goes nowhere. Still
                // consumes send-side bandwidth.
                self.cluster.trace.push(
                    self.cluster.now,
                    Some(self.pid),
                    TraceKind::Message,
                    TraceDetail::SendToDead { label, to },
                );
                return;
            }
        };
        match self.cluster.net.send(self.cluster.now, from_node, to_node, size) {
            SendVerdict::Delivered(at) => {
                let from = self.pid;
                self.cluster.queue.schedule(at, OsEvent::Deliver { to, from, label, payload });
            }
            SendVerdict::Dropped => {
                self.cluster.trace.push(
                    self.cluster.now,
                    Some(self.pid),
                    TraceKind::Message,
                    TraceDetail::MsgDropped { label, to },
                );
            }
            SendVerdict::Partitioned => {
                self.cluster.trace.push(
                    self.cluster.now,
                    Some(self.pid),
                    TraceKind::Message,
                    TraceDetail::MsgPartitioned { label, to },
                );
            }
        }
    }

    /// Arms a one-shot timer; `tag` is returned to
    /// [`Process::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.cluster.next_timer;
        self.cluster.next_timer += 1;
        let entry = self.cluster.procs.get_mut(self.pid).expect("self entry");
        entry.live_timers.push(id);
        self.cluster.queue.schedule(
            self.cluster.now + delay,
            OsEvent::Timer { pid: self.pid, timer_id: id, tag },
        );
        TimerId(id)
    }

    /// Cancels a timer if it has not fired.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if let Some(entry) = self.cluster.procs.get_mut(self.pid) {
            if let Some(i) = entry.live_timers.iter().position(|t| *t == id.0) {
                entry.live_timers.swap_remove(i);
            }
        }
    }

    /// Starts a CPU-bound work unit of the given total duration; the
    /// process receives [`Process::on_work_done`] with `tag` when it
    /// finishes. Work executes in chunks, pausing while the process is
    /// stopped and dying with the process.
    pub fn start_work(&mut self, total: SimDuration, tag: u64) -> WorkId {
        let id = self.cluster.next_work;
        self.cluster.next_work += 1;
        let entry = self.cluster.procs.get_mut(self.pid).expect("self entry");
        entry.works.push((id, WorkState { tag, remaining: total }));
        let first = self.cluster.config.work_chunk.min(total);
        let first = if first.is_zero() { SimDuration::from_micros(1) } else { first };
        self.cluster
            .queue
            .schedule(self.cluster.now + first, OsEvent::WorkChunk { pid: self.pid, work_id: id });
        WorkId(id)
    }

    /// Cancels an in-progress work unit.
    pub fn abort_work(&mut self, id: WorkId) {
        if let Some(entry) = self.cluster.procs.get_mut(self.pid) {
            if let Some(i) = entry.works.iter().position(|(w, _)| *w == id.0) {
                entry.works.swap_remove(i);
            }
        }
    }

    /// Spawns a child or detached process.
    pub fn spawn(&mut self, spec: SpawnSpec) -> Pid {
        self.cluster.spawn(spec)
    }

    /// Voluntarily exits with a status code after this handler returns.
    pub fn exit(&mut self, code: i32) {
        self.cluster.pending_self_exit = Some(ExitStatus::Exited(code));
    }

    /// Kills the process after an internal self-check detected an error
    /// (the ARMOR fail-fast path).
    pub fn abort(&mut self, reason: impl Into<String>) {
        self.cluster.pending_self_exit = Some(ExitStatus::Aborted(reason.into()));
    }

    /// Crashes the process as if the hardware raised `sig` (e.g. a
    /// segmentation fault from dereferencing a corrupted pointer). Takes
    /// effect when the current handler returns.
    pub fn crash(&mut self, sig: Signal) {
        self.cluster.pending_self_exit = Some(ExitStatus::Killed(sig));
    }

    /// Sends a signal to any process (including self; takes effect when
    /// the signal event is dispatched).
    pub fn kill(&mut self, pid: Pid, sig: Signal) {
        self.cluster.queue.schedule(self.cluster.now, OsEvent::SignalEv { pid, sig });
    }

    /// Checks the OS process table — how Execution ARMORs detect crashes
    /// of MPI ranks they did not spawn (§3.3).
    pub fn process_alive(&self, pid: Pid) -> bool {
        self.cluster.is_alive(pid)
    }

    /// Exit status of a dead process, if known.
    pub fn exit_status_of(&self, pid: Pid) -> Option<ExitStatus> {
        self.cluster.graveyard.get(pid.0 as usize).and_then(Option::as_ref).map(|(_, s)| s.clone())
    }

    /// The local node's RAM disk (stable storage for checkpoints).
    pub fn ramdisk(&mut self) -> &mut RamDisk {
        let node = self.node();
        &mut self.cluster.nodes[node.0 as usize].ramdisk
    }

    /// The shared remote file system.
    pub fn remote_fs(&mut self) -> &mut RemoteFs {
        &mut self.cluster.remote_fs
    }

    /// Registers transient network contention (recovery traffic).
    pub fn net_load(&mut self, window: SimDuration, slowdown: f64) {
        let now = self.cluster.now;
        self.cluster.net.inject_load(now, window, slowdown);
    }

    /// Copies this process's current text image (fork-style recovery).
    pub fn self_text_source(&self) -> TextSource {
        TextSource::CopyFrom(self.pid)
    }

    /// Count of corrupted sites in this process's own text image.
    pub fn own_text_corruption(&self) -> usize {
        self.cluster.procs.get(self.pid).expect("self entry").machine.corrupted_text_sites()
    }

    /// Reloads this process's text image from disk (clears corruption).
    pub fn reload_own_text(&mut self) {
        if let Some(e) = self.cluster.procs.get_mut(self.pid) {
            e.machine.reload_text_from_disk();
        }
    }

    /// Appends an application-level trace record.
    pub fn trace(&mut self, detail: impl Into<TraceDetail>) {
        self.cluster.trace.push(self.cluster.now, Some(self.pid), TraceKind::App, detail.into());
    }

    /// Appends an application-level trace record with a typed event, so
    /// campaign classification can match it in O(1).
    pub fn trace_event(&mut self, event: TraceEvent, detail: impl Into<TraceDetail>) {
        self.cluster.trace.push_event(
            self.cluster.now,
            Some(self.pid),
            TraceKind::App,
            event,
            detail.into(),
        );
    }

    /// Appends a recovery-category trace record.
    pub fn trace_recovery(&mut self, detail: impl Into<TraceDetail>) {
        self.cluster.trace.push(
            self.cluster.now,
            Some(self.pid),
            TraceKind::Recovery,
            detail.into(),
        );
    }

    /// Appends a recovery-category trace record with a typed event.
    pub fn trace_recovery_event(&mut self, event: TraceEvent, detail: impl Into<TraceDetail>) {
        self.cluster.trace.push_event(
            self.cluster.now,
            Some(self.pid),
            TraceKind::Recovery,
            event,
            detail.into(),
        );
    }

    /// Seconds since this process was (re)spawned.
    pub fn uptime(&self) -> SimDuration {
        self.cluster.now.since(self.cluster.procs.get(self.pid).expect("self entry").spawned_at)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("procs", &self.procs.len())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}
