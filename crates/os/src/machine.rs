//! Per-process machine-state fault model: register file and text segment.
//!
//! The paper injects single-bit flips into the PowerPC register set and
//! the text segment "until a failure is induced" (Table 2), then
//! classifies the induced failure as a segmentation fault, illegal
//! instruction, hang, or assertion (Table 6). Real in-process register
//! corruption is not possible from safe Rust, so — per the substitution
//! rule — each simulated process carries a [`MachineState`]:
//!
//! * a **register file** whose slots have architectural classes (pointer /
//!   data / control). A corrupted register only matters if a subsequent
//!   instruction *reads* it; registers are also overwritten quickly, which
//!   the paper cites as the reason register errors caused fewer system
//!   failures than text errors (§6);
//! * a **text image** of weighted function sites. A flipped bit lands in
//!   an opcode or an operand; the corruption manifests when the function
//!   is next *executed* and persists until the image is reloaded from
//!   disk. Crucially, a daemon recovering an ARMOR copies **its own**
//!   image (§3.4), so daemon text corruption propagates to recovered
//!   ARMORs.
//!
//! Activation is evaluated every time the process handles an event or
//! executes a work chunk ([`MachineState::activate`]). The consequence
//! distributions per corruption-site class are documented in DESIGN.md
//! §4.2 and calibrated so the *shape* of Table 6's failure classification
//! emerges (registers: segfault-dominant; text: more illegal
//! instructions; data sites: silent corruption feeding the heap model).

use ree_sim::SimRng;

/// Architectural class of a register slot; determines how corruption
/// manifests when the register is read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegClass {
    /// Holds addresses; corrupt reads dereference wild pointers.
    Pointer,
    /// Holds data values; corrupt reads mostly produce silent corruption.
    Data,
    /// Holds control state (link register, counters, condition codes);
    /// corrupt reads derail control flow.
    Control,
}

/// Where in the text segment a bit flip landed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TextHit {
    /// The flip corrupted an instruction opcode.
    Opcode,
    /// The flip corrupted an operand / immediate / displacement.
    Operand,
}

/// The observable consequence of an activated fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultConsequence {
    /// Access to an unmapped or invalid address (SIGSEGV): crash.
    SegFault,
    /// Invalid opcode executed (SIGILL): crash.
    IllegalInstruction,
    /// The process ceases to make progress.
    Hang,
    /// A value was silently corrupted; the OS routes this into the
    /// process's heap model (and, for ARMORs, assertions may later fire).
    SilentCorruption,
    /// The process stops receiving messages while otherwise running —
    /// the receive-omission failure the paper observed in the Heartbeat
    /// ARMOR after text-segment corruption (§6.1).
    ReceiveOmission,
}

/// One register slot.
#[derive(Clone, Copy, Debug)]
struct RegSlot {
    class: RegClass,
    corrupted: bool,
}

/// A function site within the text image.
#[derive(Clone, Debug)]
pub struct FunctionSite {
    /// Human-readable name (shows up in traces).
    pub name: String,
    /// Relative execution frequency; activation samples sites by weight.
    pub weight: f64,
    /// Outstanding corruption, if any.
    pub corruption: Option<TextHit>,
}

/// Behavioural parameters of the activation model.
///
/// The defaults reproduce the qualitative Table 6 split; tests and
/// ablation benches may override individual probabilities.
#[derive(Clone, Debug)]
pub struct MachineProfile {
    /// Number of pointer-class registers.
    pub pointer_regs: usize,
    /// Number of data-class registers.
    pub data_regs: usize,
    /// Number of control-class registers.
    pub control_regs: usize,
    /// Probability that a given corrupted register is *read* during one
    /// activation (event handled / work chunk executed).
    pub reg_touch_prob: f64,
    /// Probability that a corrupted register is overwritten (corruption
    /// cleared without effect) per activation — register values have
    /// short lifetimes (paper §6).
    pub reg_overwrite_prob: f64,
    /// Probability that the corrupted *function* executes during one
    /// activation, additionally scaled by the site's weight share.
    pub text_exec_prob: f64,
}

impl Default for MachineProfile {
    fn default() -> Self {
        MachineProfile {
            pointer_regs: 13,
            data_regs: 11,
            control_regs: 8,
            reg_touch_prob: 0.18,
            reg_overwrite_prob: 0.45,
            text_exec_prob: 0.35,
        }
    }
}

/// Report of one injected bit flip (what the injector hit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectionSite {
    /// Register `index` of the given class was flipped.
    Register {
        /// Register number.
        index: usize,
        /// Architectural class of the register.
        class: RegClass,
    },
    /// A text-segment site was flipped.
    Text {
        /// Function name.
        function: String,
        /// Opcode or operand.
        hit: TextHit,
    },
}

/// Simulated machine state (registers + text) of one process.
#[derive(Clone, Debug)]
pub struct MachineState {
    regs: Vec<RegSlot>,
    text: Vec<FunctionSite>,
    profile: MachineProfile,
    activations: u64,
    faults_activated: u64,
    /// Count of outstanding corruptions (corrupted registers + corrupted
    /// text sites). Campaign runs spend most of their events with no
    /// fault armed, so [`MachineState::activate`] is O(1) when this is
    /// zero — and since the armed-free path never drew from the RNG in
    /// the first place, the early-out preserves the per-seed RNG stream
    /// exactly (the determinism fixtures stay valid unmodified).
    armed: u32,
    /// Sum of all text-site weights, fixed at construction (weights never
    /// change after the image is built/copied).
    text_weight_total: f64,
}

impl MachineState {
    /// Builds machine state from a profile and a text image (possibly a
    /// corrupted copy of a daemon's image, §3.4).
    pub fn new(profile: MachineProfile, text: Vec<FunctionSite>) -> Self {
        let mut regs = Vec::with_capacity(32);
        for _ in 0..profile.pointer_regs {
            regs.push(RegSlot { class: RegClass::Pointer, corrupted: false });
        }
        for _ in 0..profile.data_regs {
            regs.push(RegSlot { class: RegClass::Data, corrupted: false });
        }
        for _ in 0..profile.control_regs {
            regs.push(RegSlot { class: RegClass::Control, corrupted: false });
        }
        let armed = text.iter().filter(|s| s.corruption.is_some()).count() as u32;
        let text_weight_total = text.iter().map(|s| s.weight).sum();
        MachineState {
            regs,
            text,
            profile,
            activations: 0,
            faults_activated: 0,
            armed,
            text_weight_total,
        }
    }

    /// Builds a generic text image: a frequency-weighted set of function
    /// sites typical of the ARMOR/application processes in the paper.
    pub fn generic_text_image(process_kind: &str) -> Vec<FunctionSite> {
        // "Only the most frequently used registers and functions in the
        // text segment were targeted for injection" (§4.1) — we model the
        // hot part of the image only.
        let names = [
            ("msg_dispatch", 3.0),
            ("event_deliver", 2.5),
            ("checkpoint_copy", 1.5),
            ("timer_service", 1.0),
            ("io_service", 1.0),
            ("alloc", 0.8),
            ("compute_kernel", 4.0),
            ("protocol_encode", 1.2),
        ];
        names
            .iter()
            .map(|(n, w)| FunctionSite {
                name: format!("{process_kind}::{n}"),
                weight: *w,
                corruption: None,
            })
            .collect()
    }

    /// Flips a bit in a uniformly chosen register ("bits in the registers
    /// of the target process are periodically flipped", Table 2).
    pub fn inject_register_bit(&mut self, rng: &mut SimRng) -> InjectionSite {
        let idx = rng.index(self.regs.len());
        if !self.regs[idx].corrupted {
            self.armed += 1;
        }
        self.regs[idx].corrupted = true;
        InjectionSite::Register { index: idx, class: self.regs[idx].class }
    }

    /// Flips a bit at a weight-sampled text site.
    pub fn inject_text_bit(&mut self, rng: &mut SimRng) -> InjectionSite {
        let weights: Vec<f64> = self.text.iter().map(|s| s.weight).collect();
        let idx = rng.weighted_index(&weights);
        // Nearly half the targeted instruction bits select opcode fields
        // (hot code paths; §4.1 targets the most-used functions).
        let hit = if rng.chance(0.45) { TextHit::Opcode } else { TextHit::Operand };
        if self.text[idx].corruption.is_none() {
            self.armed += 1;
        }
        self.text[idx].corruption = Some(hit);
        InjectionSite::Text { function: self.text[idx].name.clone(), hit }
    }

    /// True if any corruption is outstanding.
    pub fn has_pending_corruption(&self) -> bool {
        debug_assert_eq!(
            self.armed as usize,
            self.regs.iter().filter(|r| r.corrupted).count()
                + self.text.iter().filter(|s| s.corruption.is_some()).count(),
            "armed counter out of sync"
        );
        self.armed > 0
    }

    /// Copies this machine's *text image* (with any corruption) — the
    /// daemon-recovers-ARMOR-from-its-own-image mechanism of §3.4.
    pub fn copy_text_image(&self) -> Vec<FunctionSite> {
        self.text.clone()
    }

    /// Count of corrupted text sites (used to decide image reload).
    pub fn corrupted_text_sites(&self) -> usize {
        self.text.iter().filter(|s| s.corruption.is_some()).count()
    }

    /// Clears all text corruption (reloading the executable from disk).
    pub fn reload_text_from_disk(&mut self) {
        for site in &mut self.text {
            if site.corruption.take().is_some() {
                self.armed -= 1;
            }
        }
    }

    /// Runs one activation step: the process executed some instructions
    /// (handling an event or running a work chunk). Samples whether any
    /// outstanding corruption is touched and, if so, with what
    /// consequence. Returns at most one consequence (the first activated).
    pub fn activate(&mut self, rng: &mut SimRng) -> Option<FaultConsequence> {
        self.activations += 1;
        // Fast path: nothing armed — O(1), and **no RNG draw**. The slow
        // path below never drew from the RNG for clean slots either, so
        // skipping it leaves the per-seed stream byte-identical (this is
        // why the determinism fixtures did not need re-baselining; see
        // docs/PERFORMANCE.md).
        if self.armed == 0 {
            return None;
        }
        // Registers first: short lifetimes mean they either matter
        // quickly or never.
        for i in 0..self.regs.len() {
            if !self.regs[i].corrupted {
                continue;
            }
            if rng.chance(self.profile.reg_touch_prob) {
                self.regs[i].corrupted = false;
                self.armed -= 1;
                self.faults_activated += 1;
                return Some(Self::register_consequence(self.regs[i].class, rng));
            }
            if rng.chance(self.profile.reg_overwrite_prob) {
                // Overwritten before being read: fault masked.
                self.regs[i].corrupted = false;
                self.armed -= 1;
            }
        }
        // Text sites: weight-proportional execution probability.
        let total_weight = self.text_weight_total;
        for i in 0..self.text.len() {
            let Some(hit) = self.text[i].corruption else { continue };
            let share = self.text[i].weight / total_weight.max(1e-12);
            if rng.chance(self.profile.text_exec_prob * share * self.text.len() as f64 / 2.0) {
                self.faults_activated += 1;
                // Text corruption persists (no clearing) — the same error
                // re-manifests after recovery if the image is reused.
                return Some(Self::text_consequence(hit, rng));
            }
        }
        None
    }

    fn register_consequence(class: RegClass, rng: &mut SimRng) -> FaultConsequence {
        let (weights, outcomes) = match class {
            RegClass::Pointer => (
                [0.90, 0.02, 0.05, 0.03],
                [
                    FaultConsequence::SegFault,
                    FaultConsequence::IllegalInstruction,
                    FaultConsequence::Hang,
                    FaultConsequence::SilentCorruption,
                ],
            ),
            RegClass::Data => (
                [0.36, 0.02, 0.22, 0.40],
                [
                    FaultConsequence::SegFault,
                    FaultConsequence::IllegalInstruction,
                    FaultConsequence::Hang,
                    FaultConsequence::SilentCorruption,
                ],
            ),
            RegClass::Control => (
                [0.15, 0.15, 0.63, 0.07],
                [
                    FaultConsequence::SegFault,
                    FaultConsequence::IllegalInstruction,
                    FaultConsequence::Hang,
                    FaultConsequence::SilentCorruption,
                ],
            ),
        };
        outcomes[rng.weighted_index(&weights)]
    }

    fn text_consequence(hit: TextHit, rng: &mut SimRng) -> FaultConsequence {
        let (weights, outcomes) = match hit {
            TextHit::Opcode => (
                [0.28, 0.50, 0.14, 0.05, 0.03],
                [
                    FaultConsequence::SegFault,
                    FaultConsequence::IllegalInstruction,
                    FaultConsequence::Hang,
                    FaultConsequence::SilentCorruption,
                    FaultConsequence::ReceiveOmission,
                ],
            ),
            TextHit::Operand => (
                [0.50, 0.11, 0.17, 0.19, 0.03],
                [
                    FaultConsequence::SegFault,
                    FaultConsequence::IllegalInstruction,
                    FaultConsequence::Hang,
                    FaultConsequence::SilentCorruption,
                    FaultConsequence::ReceiveOmission,
                ],
            ),
        };
        outcomes[rng.weighted_index(&weights)]
    }

    /// Total activation steps evaluated.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total faults that actually manifested.
    pub fn faults_activated(&self) -> u64 {
        self.faults_activated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineState {
        MachineState::new(MachineProfile::default(), MachineState::generic_text_image("test"))
    }

    #[test]
    fn clean_machine_never_faults() {
        let mut m = machine();
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert_eq!(m.activate(&mut rng), None);
        }
        assert_eq!(m.faults_activated(), 0);
        assert!(!m.has_pending_corruption());
    }

    #[test]
    fn register_injection_eventually_activates_or_masks() {
        let mut rng = SimRng::new(2);
        let mut activated = 0;
        let mut masked = 0;
        for seed in 0..200 {
            let mut m = machine();
            let mut r = SimRng::new(seed);
            m.inject_register_bit(&mut rng);
            let mut outcome = None;
            for _ in 0..50 {
                if let Some(c) = m.activate(&mut r) {
                    outcome = Some(c);
                    break;
                }
                if !m.has_pending_corruption() {
                    break;
                }
            }
            match outcome {
                Some(_) => activated += 1,
                None => masked += 1,
            }
        }
        // Registers decay: a substantial fraction must be masked, and a
        // substantial fraction must activate.
        assert!(activated > 30, "activated={activated}");
        assert!(masked > 30, "masked={masked}");
    }

    #[test]
    fn pointer_registers_mostly_segfault() {
        let mut rng = SimRng::new(3);
        let mut seg = 0;
        let mut total = 0;
        for _ in 0..2000 {
            let c = MachineState::register_consequence(RegClass::Pointer, &mut rng);
            total += 1;
            if c == FaultConsequence::SegFault {
                seg += 1;
            }
        }
        assert!(seg as f64 / total as f64 > 0.8);
    }

    #[test]
    fn opcode_corruption_yields_more_illegal_instructions_than_operand() {
        let mut rng = SimRng::new(4);
        let count_illegal = |hit: TextHit, rng: &mut SimRng| {
            (0..2000)
                .filter(|_| {
                    MachineState::text_consequence(hit, rng) == FaultConsequence::IllegalInstruction
                })
                .count()
        };
        let op = count_illegal(TextHit::Opcode, &mut rng);
        let operand = count_illegal(TextHit::Operand, &mut rng);
        assert!(op > operand * 2, "opcode={op} operand={operand}");
    }

    #[test]
    fn text_corruption_persists_until_reload() {
        let mut rng = SimRng::new(5);
        let mut m = machine();
        m.inject_text_bit(&mut rng);
        assert_eq!(m.corrupted_text_sites(), 1);
        // Activating does not clear text corruption.
        for _ in 0..100 {
            let _ = m.activate(&mut rng);
        }
        assert_eq!(m.corrupted_text_sites(), 1);
        m.reload_text_from_disk();
        assert_eq!(m.corrupted_text_sites(), 0);
        assert!(!m.has_pending_corruption());
    }

    #[test]
    fn copied_image_carries_corruption() {
        let mut rng = SimRng::new(6);
        let mut daemon = machine();
        daemon.inject_text_bit(&mut rng);
        let child = MachineState::new(MachineProfile::default(), daemon.copy_text_image());
        assert_eq!(child.corrupted_text_sites(), 1);
    }

    #[test]
    fn text_faults_are_more_persistent_than_register_faults() {
        // Register: one activation either fires or decays it quickly.
        // Text: it can fire many times (crash loop after recovery).
        let mut rng = SimRng::new(7);
        let mut m = machine();
        m.inject_text_bit(&mut rng);
        let mut fired = 0;
        for _ in 0..400 {
            if m.activate(&mut rng).is_some() {
                fired += 1;
            }
        }
        assert!(fired >= 2, "text fault should re-fire, fired={fired}");
    }

    #[test]
    fn clean_activation_never_draws_from_the_rng() {
        // The armed==0 early-out must leave the per-seed RNG stream
        // untouched, or every determinism fixture would shift.
        let mut m = machine();
        let mut used = SimRng::new(99);
        for _ in 0..10_000 {
            assert_eq!(m.activate(&mut used), None);
        }
        let mut fresh = SimRng::new(99);
        for _ in 0..32 {
            assert_eq!(used.range_u64(0, 1 << 40), fresh.range_u64(0, 1 << 40));
        }
        assert_eq!(m.activations(), 10_000);
    }

    #[test]
    fn armed_counter_tracks_inject_activate_reload_cycles() {
        let mut rng = SimRng::new(11);
        let mut m = machine();
        assert!(!m.has_pending_corruption());
        m.inject_register_bit(&mut rng);
        m.inject_register_bit(&mut rng);
        m.inject_text_bit(&mut rng);
        assert!(m.has_pending_corruption());
        // Drive activation until every register fault fires or decays
        // (has_pending_corruption debug-asserts counter consistency on
        // every call).
        for _ in 0..500 {
            let _ = m.activate(&mut rng);
            let _ = m.has_pending_corruption();
        }
        // Text corruption persists until reload.
        assert!(m.has_pending_corruption());
        m.reload_text_from_disk();
        // Registers are gone by now (touch or overwrite within 500
        // activations is overwhelmingly certain with these defaults).
        assert!(!m.has_pending_corruption());
        // Back on the fast path: no further state change.
        assert_eq!(m.activate(&mut rng), None);
    }

    #[test]
    fn copied_corrupt_image_arms_the_new_machine() {
        let mut rng = SimRng::new(12);
        let mut daemon = machine();
        daemon.inject_text_bit(&mut rng);
        let child = MachineState::new(MachineProfile::default(), daemon.copy_text_image());
        assert!(child.has_pending_corruption(), "armed count must survive image copy");
    }

    #[test]
    fn injection_sites_report_what_was_hit() {
        let mut rng = SimRng::new(8);
        let mut m = machine();
        match m.inject_register_bit(&mut rng) {
            InjectionSite::Register { index, .. } => assert!(index < 32),
            other => panic!("unexpected site {other:?}"),
        }
        match m.inject_text_bit(&mut rng) {
            InjectionSite::Text { function, .. } => assert!(function.starts_with("test::")),
            other => panic!("unexpected site {other:?}"),
        }
    }
}
