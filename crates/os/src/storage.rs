//! Stable storage: per-node RAM disks and the shared remote file system.
//!
//! The REE testbed (paper §2) set aside 1–2 MB of RAM per node to emulate
//! local non-volatile memory (checkpoints go here — §3.4 "the local RAM
//! disk on each node serves as stable storage"), plus a remote file system
//! on a Sun workstation holding program executables, application input and
//! output data.

use std::collections::HashMap;

/// A node-local RAM disk emulating non-volatile memory.
///
/// Contents survive *process* failures (the recovering ARMOR reads its
/// checkpoint back) but, mirroring the testbed, are lost if the node
/// itself is wiped — tolerating node failures requires checkpoints in
/// centralized storage (paper §3.4).
///
/// # Examples
///
/// ```
/// use ree_os::RamDisk;
/// let mut disk = RamDisk::with_capacity(1 << 20);
/// disk.write("ckpt/ftm", b"state".to_vec()).unwrap();
/// assert_eq!(disk.read("ckpt/ftm"), Some(&b"state"[..]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RamDisk {
    files: HashMap<String, Vec<u8>>,
    capacity: usize,
    used: usize,
    writes: u64,
    bytes_written: u64,
}

/// Error writing to a [`RamDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The write would exceed the configured capacity.
    Full {
        /// Bytes requested by the write.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Full { requested, available } => {
                write!(f, "ram disk full: requested {requested} bytes, {available} available")
            }
        }
    }
}

impl std::error::Error for DiskError {}

impl RamDisk {
    /// Creates a RAM disk with the REE default capacity (2 MB).
    pub fn new() -> Self {
        Self::with_capacity(2 << 20)
    }

    /// Creates a RAM disk with an explicit byte capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        RamDisk { files: HashMap::new(), capacity, used: 0, writes: 0, bytes_written: 0 }
    }

    /// Writes (creating or replacing) a file.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Full`] if the write would exceed capacity; the
    /// previous contents of the file are preserved in that case.
    pub fn write(&mut self, path: &str, data: Vec<u8>) -> Result<(), DiskError> {
        let existing = self.files.get(path).map_or(0, Vec::len);
        let new_used = self.used - existing + data.len();
        if new_used > self.capacity {
            return Err(DiskError::Full {
                requested: data.len(),
                available: self.capacity - (self.used - existing),
            });
        }
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        self.used = new_used;
        self.files.insert(path.to_owned(), data);
        Ok(())
    }

    /// Reads a file's contents, if present.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Removes a file; returns its contents if it existed.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        let data = self.files.remove(path)?;
        self.used -= data.len();
        Some(data)
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Erases everything (models a node wipe / power loss on volatile
    /// portions).
    pub fn wipe(&mut self) {
        self.files.clear();
        self.used = 0;
    }

    /// Bytes currently stored.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Total writes performed (checkpoint-commit accounting).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes written over the disk's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Iterates over stored paths.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

/// The shared remote file system (the Sun workstation in Figure 2).
///
/// Visible to every node; holds executables, input images, application
/// status files, and output products. Unlike [`RamDisk`] it has no
/// capacity limit and survives any cluster failure.
#[derive(Debug, Clone, Default)]
pub struct RemoteFs {
    files: HashMap<String, Vec<u8>>,
    reads: u64,
    writes: u64,
}

impl RemoteFs {
    /// Creates an empty remote file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes (creating or replacing) a file.
    pub fn write(&mut self, path: &str, data: Vec<u8>) {
        self.writes += 1;
        self.files.insert(path.to_owned(), data);
    }

    /// Reads a file's contents, if present.
    pub fn read(&mut self, path: &str) -> Option<&[u8]> {
        self.reads += 1;
        self.files.get(path).map(Vec::as_slice)
    }

    /// Reads without bumping access counters (for assertions in tests).
    pub fn peek(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Removes a file; returns its contents if it existed.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        self.files.remove(path)
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Number of read operations served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write operations served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over stored paths.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramdisk_roundtrip_and_remove() {
        let mut d = RamDisk::new();
        d.write("a", vec![1, 2, 3]).unwrap();
        assert_eq!(d.read("a"), Some(&[1u8, 2, 3][..]));
        assert!(d.exists("a"));
        assert_eq!(d.remove("a"), Some(vec![1, 2, 3]));
        assert!(!d.exists("a"));
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn ramdisk_replacement_accounts_for_freed_space() {
        let mut d = RamDisk::with_capacity(10);
        d.write("a", vec![0; 8]).unwrap();
        // Replacing an 8-byte file with a 10-byte file fits exactly.
        d.write("a", vec![0; 10]).unwrap();
        assert_eq!(d.used(), 10);
    }

    #[test]
    fn ramdisk_rejects_overflow_and_preserves_old_contents() {
        let mut d = RamDisk::with_capacity(4);
        d.write("a", vec![7; 4]).unwrap();
        let err = d.write("a", vec![0; 5]).unwrap_err();
        assert!(matches!(err, DiskError::Full { requested: 5, .. }));
        assert_eq!(d.read("a"), Some(&[7u8; 4][..]));
    }

    #[test]
    fn ramdisk_wipe_clears_all() {
        let mut d = RamDisk::new();
        d.write("x", vec![1]).unwrap();
        d.write("y", vec![2]).unwrap();
        d.wipe();
        assert_eq!(d.used(), 0);
        assert!(!d.exists("x"));
        // Write counters persist across a wipe (they are lifetime stats).
        assert_eq!(d.writes(), 2);
    }

    #[test]
    fn remote_fs_roundtrip() {
        let mut fs = RemoteFs::new();
        fs.write("images/mars_001.img", vec![9; 16]);
        assert_eq!(fs.read("images/mars_001.img"), Some(&[9u8; 16][..]));
        assert_eq!(fs.reads(), 1);
        assert_eq!(fs.writes(), 1);
        assert!(fs.exists("images/mars_001.img"));
        assert_eq!(fs.peek("missing"), None);
    }

    #[test]
    fn disk_error_displays() {
        let e = DiskError::Full { requested: 5, available: 2 };
        assert!(e.to_string().contains("5 bytes"));
    }
}
