//! Stable storage: per-node RAM disks and the shared remote file system.
//!
//! The REE testbed (paper §2) set aside 1–2 MB of RAM per node to emulate
//! local non-volatile memory (checkpoints go here — §3.4 "the local RAM
//! disk on each node serves as stable storage"), plus a remote file system
//! on a Sun workstation holding program executables, application input and
//! output data.
//!
//! Both stores share their contents copy-on-write between snapshot forks:
//! cloning a store bumps one refcount, and the first write after a fork
//! clones only the entry table (path boxes plus per-file refcount bumps),
//! never the stored bytes — file contents are immutable chunks replaced
//! wholesale on write. Entries are kept sorted by path, so enumeration
//! order is deterministic regardless of insert order (the previous
//! `HashMap` representation leaked its arbitrary iteration order, the
//! same class of bug as the process-table `find_by_name` fix).

use std::sync::Arc;

/// Sorted path → contents table shared copy-on-write between forks.
#[derive(Debug, Clone, Default)]
struct FileMap {
    /// Sorted by path; contents are immutable once stored.
    entries: Vec<(Box<str>, Arc<Vec<u8>>)>,
}

impl FileMap {
    fn idx(&self, path: &str) -> Result<usize, usize> {
        self.entries.binary_search_by(|(p, _)| p.as_ref().cmp(path))
    }

    fn get(&self, path: &str) -> Option<&Arc<Vec<u8>>> {
        self.idx(path).ok().map(|i| &self.entries[i].1)
    }

    /// Inserts or replaces; returns the previous contents if any.
    fn insert(&mut self, path: &str, data: Arc<Vec<u8>>) -> Option<Arc<Vec<u8>>> {
        match self.idx(path) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, data)),
            Err(i) => {
                self.entries.insert(i, (path.into(), data));
                None
            }
        }
    }

    fn remove(&mut self, path: &str) -> Option<Arc<Vec<u8>>> {
        self.idx(path).ok().map(|i| self.entries.remove(i).1)
    }

    fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(p, _)| p.as_ref())
    }
}

/// Recovers owned bytes from a possibly-shared chunk without copying when
/// this store held the only reference.
fn unwrap_bytes(chunk: Arc<Vec<u8>>) -> Vec<u8> {
    Arc::try_unwrap(chunk).unwrap_or_else(|shared| (*shared).clone())
}

/// A node-local RAM disk emulating non-volatile memory.
///
/// Contents survive *process* failures (the recovering ARMOR reads its
/// checkpoint back) but, mirroring the testbed, are lost if the node
/// itself is wiped — tolerating node failures requires checkpoints in
/// centralized storage (paper §3.4).
///
/// Cloning is O(1): forks share the file table until one of them writes.
///
/// # Examples
///
/// ```
/// use ree_os::RamDisk;
/// let mut disk = RamDisk::with_capacity(1 << 20);
/// disk.write("ckpt/ftm", b"state".to_vec()).unwrap();
/// assert_eq!(disk.read("ckpt/ftm"), Some(&b"state"[..]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RamDisk {
    files: Arc<FileMap>,
    capacity: usize,
    used: usize,
    writes: u64,
    bytes_written: u64,
}

/// Error writing to a [`RamDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The write would exceed the configured capacity.
    Full {
        /// Bytes requested by the write.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Full { requested, available } => {
                write!(f, "ram disk full: requested {requested} bytes, {available} available")
            }
        }
    }
}

impl std::error::Error for DiskError {}

impl RamDisk {
    /// Creates a RAM disk with the REE default capacity (2 MB).
    pub fn new() -> Self {
        Self::with_capacity(2 << 20)
    }

    /// Creates a RAM disk with an explicit byte capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        RamDisk {
            files: Arc::new(FileMap::default()),
            capacity,
            used: 0,
            writes: 0,
            bytes_written: 0,
        }
    }

    /// Writes (creating or replacing) a file.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::Full`] if the write would exceed capacity; the
    /// previous contents of the file are preserved in that case.
    pub fn write(&mut self, path: &str, data: Vec<u8>) -> Result<(), DiskError> {
        let existing = self.files.get(path).map_or(0, |d| d.len());
        let new_used = self.used - existing + data.len();
        if new_used > self.capacity {
            return Err(DiskError::Full {
                requested: data.len(),
                available: self.capacity - (self.used - existing),
            });
        }
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        self.used = new_used;
        Arc::make_mut(&mut self.files).insert(path, Arc::new(data));
        Ok(())
    }

    /// Reads a file's contents, if present.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|d| d.as_slice())
    }

    /// Removes a file; returns its contents if it existed.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        // Probe before `make_mut` so removing a missing path never
        // unshares a forked table.
        self.files.get(path)?;
        let data = Arc::make_mut(&mut self.files).remove(path)?;
        self.used -= data.len();
        Some(unwrap_bytes(data))
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.get(path).is_some()
    }

    /// Erases everything (models a node wipe / power loss on volatile
    /// portions). Forks sharing the old contents are unaffected.
    pub fn wipe(&mut self) {
        self.files = Arc::new(FileMap::default());
        self.used = 0;
    }

    /// Bytes currently stored.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Total writes performed (checkpoint-commit accounting).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes written over the disk's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Iterates over stored paths in sorted order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.paths()
    }
}

/// The shared remote file system (the Sun workstation in Figure 2).
///
/// Visible to every node; holds executables, input images, application
/// status files, and output products. Unlike [`RamDisk`] it has no
/// capacity limit and survives any cluster failure. Cloning is O(1) —
/// forks share the file table copy-on-write.
#[derive(Debug, Clone, Default)]
pub struct RemoteFs {
    files: Arc<FileMap>,
    reads: u64,
    writes: u64,
    version: u64,
}

impl RemoteFs {
    /// Creates an empty remote file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Content-mutation counter: bumped on every write and successful
    /// remove, never by reads. Pollers (e.g. a per-event completion
    /// predicate) can memoise a lookup against this and re-probe only
    /// when the table actually changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Writes (creating or replacing) a file.
    pub fn write(&mut self, path: &str, data: Vec<u8>) {
        self.writes += 1;
        self.version += 1;
        Arc::make_mut(&mut self.files).insert(path, Arc::new(data));
    }

    /// Reads a file's contents, if present.
    pub fn read(&mut self, path: &str) -> Option<&[u8]> {
        self.reads += 1;
        self.files.get(path).map(|d| d.as_slice())
    }

    /// Reads without bumping access counters (for assertions in tests).
    pub fn peek(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|d| d.as_slice())
    }

    /// Removes a file; returns its contents if it existed.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        // Probe before `make_mut` so removing a missing path never
        // unshares a forked table.
        self.files.get(path)?;
        self.version += 1;
        Arc::make_mut(&mut self.files).remove(path).map(unwrap_bytes)
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.get(path).is_some()
    }

    /// Number of read operations served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write operations served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over stored paths in sorted order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.paths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramdisk_roundtrip_and_remove() {
        let mut d = RamDisk::new();
        d.write("a", vec![1, 2, 3]).unwrap();
        assert_eq!(d.read("a"), Some(&[1u8, 2, 3][..]));
        assert!(d.exists("a"));
        assert_eq!(d.remove("a"), Some(vec![1, 2, 3]));
        assert!(!d.exists("a"));
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn ramdisk_replacement_accounts_for_freed_space() {
        let mut d = RamDisk::with_capacity(10);
        d.write("a", vec![0; 8]).unwrap();
        // Replacing an 8-byte file with a 10-byte file fits exactly.
        d.write("a", vec![0; 10]).unwrap();
        assert_eq!(d.used(), 10);
    }

    #[test]
    fn ramdisk_rejects_overflow_and_preserves_old_contents() {
        let mut d = RamDisk::with_capacity(4);
        d.write("a", vec![7; 4]).unwrap();
        let err = d.write("a", vec![0; 5]).unwrap_err();
        assert!(matches!(err, DiskError::Full { requested: 5, .. }));
        assert_eq!(d.read("a"), Some(&[7u8; 4][..]));
    }

    #[test]
    fn ramdisk_wipe_clears_all() {
        let mut d = RamDisk::new();
        d.write("x", vec![1]).unwrap();
        d.write("y", vec![2]).unwrap();
        d.wipe();
        assert_eq!(d.used(), 0);
        assert!(!d.exists("x"));
        // Write counters persist across a wipe (they are lifetime stats).
        assert_eq!(d.writes(), 2);
    }

    #[test]
    fn remote_fs_roundtrip() {
        let mut fs = RemoteFs::new();
        fs.write("images/mars_001.img", vec![9; 16]);
        assert_eq!(fs.read("images/mars_001.img"), Some(&[9u8; 16][..]));
        assert_eq!(fs.reads(), 1);
        assert_eq!(fs.writes(), 1);
        assert!(fs.exists("images/mars_001.img"));
        assert_eq!(fs.peek("missing"), None);
    }

    #[test]
    fn disk_error_displays() {
        let e = DiskError::Full { requested: 5, available: 2 };
        assert!(e.to_string().contains("5 bytes"));
    }

    #[test]
    fn enumeration_order_is_sorted_regardless_of_insert_order() {
        let mut a = RamDisk::new();
        for p in ["ckpt/ftm", "app/out", "zeta", "app/in"] {
            a.write(p, vec![1]).unwrap();
        }
        let mut b = RamDisk::new();
        for p in ["zeta", "app/in", "app/out", "ckpt/ftm"] {
            b.write(p, vec![1]).unwrap();
        }
        let pa: Vec<&str> = a.paths().collect();
        let pb: Vec<&str> = b.paths().collect();
        assert_eq!(pa, pb);
        assert_eq!(pa, vec!["app/in", "app/out", "ckpt/ftm", "zeta"]);

        let mut fs1 = RemoteFs::new();
        let mut fs2 = RemoteFs::new();
        for p in ["b", "a", "c"] {
            fs1.write(p, vec![]);
        }
        for p in ["c", "b", "a"] {
            fs2.write(p, vec![]);
        }
        assert_eq!(fs1.paths().collect::<Vec<_>>(), fs2.paths().collect::<Vec<_>>());
    }

    #[test]
    fn cow_write_after_fork_leaves_parent_untouched() {
        let mut parent = RamDisk::new();
        parent.write("ckpt/ftm", vec![1, 2, 3]).unwrap();
        parent.write("ckpt/hb", vec![4]).unwrap();

        let mut fork = parent.clone();
        fork.write("ckpt/ftm", vec![9, 9]).unwrap();
        fork.remove("ckpt/hb");
        fork.write("new", vec![7]).unwrap();

        assert_eq!(parent.read("ckpt/ftm"), Some(&[1u8, 2, 3][..]));
        assert_eq!(parent.read("ckpt/hb"), Some(&[4u8][..]));
        assert!(!parent.exists("new"));
        assert_eq!(parent.used(), 4);
        assert_eq!(fork.read("ckpt/ftm"), Some(&[9u8, 9][..]));
        assert!(!fork.exists("ckpt/hb"));
    }

    #[test]
    fn cow_fork_of_fork_is_independent() {
        let mut root = RemoteFs::new();
        root.write("a", vec![1]);
        let mut child = root.clone();
        child.write("a", vec![2]);
        let mut grandchild = child.clone();
        grandchild.write("a", vec![3]);
        grandchild.write("b", vec![4]);

        assert_eq!(root.peek("a"), Some(&[1u8][..]));
        assert_eq!(child.peek("a"), Some(&[2u8][..]));
        assert_eq!(grandchild.peek("a"), Some(&[3u8][..]));
        assert!(!child.exists("b"));
    }
}
