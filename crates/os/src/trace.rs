//! Structured run trace — the "data collection" half of the NFTAPE role.
//!
//! Every OS-level occurrence (spawn, exit, signal, message, injection) is
//! recorded with its virtual timestamp. Experiments and tests query the
//! trace instead of scraping stdout.
//!
//! Records carry two payloads: an optional **typed event** — a
//! [`TraceEvent`] that campaign classification matches on in O(1) via
//! per-kind counters — and a typed **detail** ([`TraceDetail`]) that
//! captures the arguments of the occurrence (pids, labels, nodes,
//! injection sites, small ints) by value. Nothing is formatted while the
//! simulation runs; the human-readable string view is rendered lazily by
//! [`Trace::render`] (or any `Display` use) on the rare debugging path,
//! so the hot path of a run performs no allocation per record.

use crate::machine::InjectionSite;
use crate::process::{ExitStatus, HeapHit, Pid, Signal};
use ree_net::NodeId;
use ree_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// Category of a trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Process lifecycle (spawn/exit).
    Lifecycle,
    /// Signal delivery.
    Signal,
    /// Message send/deliver.
    Message,
    /// Fault injection.
    Injection,
    /// Application- or ARMOR-level annotation.
    App,
    /// Recovery actions.
    Recovery,
}

/// Machine-readable identity of a notable occurrence: what the SIFT
/// environment logged, as a value instead of a substring.
///
/// Campaign classification (the NFTAPE "collect" role, §4) matches on
/// these instead of scanning rendered detail strings; the trace keeps a
/// per-kind counter so [`Trace::any`] and [`Trace::count_of`] are O(1)
/// regardless of run length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceEvent {
    /// A daemon ARMOR registered itself with the FTM.
    DaemonRegistered = 0,
    /// A daemon installed a non-exec ARMOR (FTM, Heartbeat ARMOR, …).
    ArmorInstalled,
    /// A daemon installed an Execution ARMOR.
    ExecArmorInstalled,
    /// A daemon uninstalled an ARMOR (normal takedown).
    ArmorUninstalled,
    /// The FTM accepted an application submission from the SCC.
    SubmissionAccepted,
    /// An application rank entered its run phase.
    AppStarted,
    /// An application rank announced clean termination to the SIFT
    /// environment (§3.3 termination notice).
    AppTerminated,
    /// The OS hung a process as a fault consequence (threads suspended).
    FaultInducedHang,
    /// An ARMOR assertion/self-check fired (fail-fast abort).
    AssertionFired,
    /// A daemon's prober found a local ARMOR unresponsive.
    HangDetected,
    /// A daemon observed a local ARMOR crash (waitpid).
    CrashDetected,
    /// An Execution ARMOR detected its application rank hung.
    AppHangDetected,
    /// An Execution ARMOR detected its application rank crashed.
    AppCrashDetected,
    /// The Heartbeat ARMOR detected FTM failure (heartbeat timeout).
    FtmFailureDetected,
    /// The FTM declared a node failed (daemon silent).
    NodeFailureDetected,
    /// A recovery completed: restarted ARMOR restored / application
    /// relaunched.
    RecoveryCompleted,
    /// Rank 0 aborted the application on an MPI init timeout (Figure 8).
    MpiInitTimeout,
    /// A rank gave up after blocking too long on the SIFT interface.
    MpiRankGaveUp,
}

impl TraceEvent {
    /// Number of event kinds (size of the counter table) — derived from
    /// the last discriminant so adding a variant can never leave the
    /// table undersized.
    pub const COUNT: usize = TraceEvent::MpiRankGaveUp as usize + 1;

    fn index(self) -> usize {
        self as usize
    }

    /// True for events that mark the *detection* of a failure — the
    /// start of a recovery interval (§4.2 recovery-time measurement).
    pub fn is_failure_detection(self) -> bool {
        matches!(
            self,
            TraceEvent::HangDetected
                | TraceEvent::CrashDetected
                | TraceEvent::AppHangDetected
                | TraceEvent::AppCrashDetected
                | TraceEvent::FtmFailureDetected
                | TraceEvent::NodeFailureDetected
        )
    }
}

/// The arguments of a trace record, captured as values instead of a
/// pre-formatted string.
///
/// The hot-path variants are plain copies — pids, `&'static str`
/// protocol labels, nodes, small ints — so appending a record costs a
/// `memcpy`, not a `format!`. Process and ARMOR instance names are
/// interned `Arc<str>`s shared with their owning table entry (one
/// allocation per spawn, refcount bumps per record). Rare free-form
/// notes use the [`TraceDetail::Custom`] escape hatch.
///
/// `Display` renders exactly the strings the pre-typed implementation
/// produced, so [`Trace::render`] output is byte-identical (pinned by
/// the `trace_snapshot` fixtures in `ree-inject`).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceDetail {
    /// A fixed message with no arguments.
    Static(&'static str),
    /// Free-form escape hatch for rare, genuinely dynamic notes.
    Custom(Box<str>),

    // --- OS kernel (cluster) ---
    /// Process created: "spawn {name} ({kind}) on {node}".
    Spawn {
        /// Instance name.
        name: Arc<str>,
        /// Behaviour kind.
        kind: &'static str,
        /// Target node.
        node: NodeId,
    },
    /// Process left the table: "{name} exits: {status}".
    ProcExit {
        /// Instance name.
        name: Arc<str>,
        /// How it ended.
        status: ExitStatus,
    },
    /// Signal injected: "signal {sig}".
    SignalInjected(Signal),
    /// Register bit flip: "register flip {site:?}".
    RegisterFlip(InjectionSite),
    /// Text-segment bit flip: "text flip {site:?}".
    TextFlip(InjectionSite),
    /// Heap bit flip: "heap flip {hit:?}".
    HeapFlip(HeapHit),
    /// Whole-node failure: "{node} failed".
    NodeFailed(NodeId),
    /// Node restoration: "{node} restored".
    NodeRestored(NodeId),
    /// Message delivery: "deliver {label} from {from}".
    Deliver {
        /// Protocol label.
        label: &'static str,
        /// Sending process.
        from: Pid,
    },
    /// Receive-omission drop: "receive omission drops {label}".
    OmissionDrop {
        /// Protocol label.
        label: &'static str,
    },
    /// Send to a dead process: "send {label} to dead {to}".
    SendToDead {
        /// Protocol label.
        label: &'static str,
        /// Intended destination.
        to: Pid,
    },
    /// Lossy-network drop: "dropped {label} to {to}".
    MsgDropped {
        /// Protocol label.
        label: &'static str,
        /// Intended destination.
        to: Pid,
    },
    /// Partitioned send: "partitioned {label} to {to}".
    MsgPartitioned {
        /// Protocol label.
        label: &'static str,
        /// Intended destination.
        to: Pid,
    },

    // --- SIFT environment (daemons, FTM, SCC, Execution ARMORs) ---
    /// "daemon on node{node} registering with FTM".
    DaemonRegistering {
        /// Daemon's node.
        node: u64,
    },
    /// "installed {kind} as armor{armor} ({pid}) on {node}".
    ArmorInstall {
        /// ARMOR kind ("ftm", "exec", …).
        kind: Box<str>,
        /// Installed ARMOR id.
        armor: u32,
        /// Host process.
        pid: Pid,
        /// Install node.
        node: NodeId,
    },
    /// "armor{armor} failed {restarts} times; reloading image from disk".
    ArmorImageReload {
        /// Failing ARMOR id.
        armor: u32,
        /// Consecutive failures observed.
        restarts: u64,
    },
    /// "uninstalled armor{armor}".
    ArmorUninstall {
        /// Removed ARMOR id.
        armor: u64,
    },
    /// "detect hang armor{armor}".
    DetectHang {
        /// Hung ARMOR id.
        armor: u64,
    },
    /// "detect crash armor{armor}".
    DetectCrash {
        /// Crashed ARMOR id.
        armor: u64,
    },
    /// "detect node{node} failure (daemon silent)".
    DetectNodeFailure {
        /// Silent node.
        node: u64,
    },
    /// "FTM accepted submission of {app} (slot {slot})".
    FtmAcceptedSubmission {
        /// Application name.
        app: Box<str>,
        /// Assigned slot.
        slot: u64,
    },
    /// "FTM reports slot {slot} complete to SCC".
    FtmSlotComplete {
        /// Completed slot.
        slot: u64,
    },
    /// "connect timeout for slot {slot}; retrying setup".
    FtmConnectTimeout {
        /// Slot whose setup stalled.
        slot: u64,
    },
    /// "FTM restarting app slot {slot} (restart #{restart})".
    FtmRestartApp {
        /// Restarting slot.
        slot: u64,
        /// Restart ordinal.
        restart: u64,
    },
    /// "migrating armor{armor} ({kind}) to node{node}".
    MigratingArmor {
        /// Migrating ARMOR id.
        armor: u64,
        /// ARMOR kind.
        kind: Box<str>,
        /// New host node.
        node: u64,
    },
    /// "SCC resubmitting slot {slot} (no start report)".
    SccResubmit {
        /// Resubmitted slot.
        slot: u64,
    },
    /// "SCC submits {app} (slot {slot})".
    SccSubmit {
        /// Application name.
        app: Box<str>,
        /// Target slot.
        slot: u64,
    },
    /// "SCC received {variant} { f1.0: f1.1[, f2.0: f2.1] }" — mirrors
    /// the derived `Debug` of the SCC report enum without formatting it
    /// eagerly.
    SccReceivedReport {
        /// Report variant name.
        variant: &'static str,
        /// First field (name, value).
        f1: (&'static str, u64),
        /// Optional second field.
        f2: Option<(&'static str, u64)>,
    },
    /// "exec armor reports app failure: slot{slot} rank{rank} ({reason})".
    AppFailureReport {
        /// Application slot.
        slot: u64,
        /// Failing rank.
        rank: u64,
        /// "crash" or "hang".
        reason: &'static str,
    },
    /// "recovered application slot{slot} (attempt {attempt})".
    AppRecovered {
        /// Recovered slot.
        slot: u64,
        /// Launch attempt.
        attempt: u64,
    },
    /// "app-terminated slot{slot} rank{rank}".
    AppTerminatedNotice {
        /// Application slot.
        slot: u64,
        /// Terminating rank.
        rank: u64,
    },
    /// "detect app crash rank{rank}".
    DetectAppCrash {
        /// Crashed rank.
        rank: u64,
    },
    /// "detect app hang rank{rank}".
    DetectAppHang {
        /// Hung rank.
        rank: u64,
    },

    // --- ARMOR runtime ---
    /// "route miss for armor{armor}; packet dropped".
    RouteMiss {
        /// Unroutable destination.
        armor: u32,
    },
    /// "{name} restored state from checkpoint".
    CheckpointRestored {
        /// ARMOR instance name.
        name: Arc<str>,
    },
    /// "{name} checkpoint unusable ({error}); cold start".
    CheckpointUnusable {
        /// ARMOR instance name.
        name: Arc<str>,
        /// Decode error.
        error: Box<str>,
    },
    /// "recovered {name}".
    Recovered {
        /// ARMOR instance name.
        name: Arc<str>,
    },
    /// "{name} crash: {reason}".
    ArmorCrash {
        /// ARMOR instance name.
        name: Arc<str>,
        /// Crash reason.
        reason: Box<str>,
    },
    /// "{name} assertion fired: {reason}".
    ArmorAssertion {
        /// ARMOR instance name.
        name: Arc<str>,
        /// Failed check.
        reason: Box<str>,
    },
    /// "{name} handling thread aborted: {reason}".
    ThreadAborted {
        /// ARMOR instance name.
        name: Arc<str>,
        /// Abort reason.
        reason: Box<str>,
    },
    /// "{name} thread abort: {reason}".
    ThreadAbort {
        /// ARMOR instance name.
        name: Arc<str>,
        /// Abort reason.
        reason: Box<str>,
    },
    /// "{name}: misrouted packet dropped".
    Misrouted {
        /// ARMOR instance name.
        name: Arc<str>,
    },
    /// "{name}: unknown message label {label}".
    UnknownLabel {
        /// ARMOR instance name.
        name: Arc<str>,
        /// The unrecognised label.
        label: &'static str,
    },
    /// "{name}: no restore instruction; proceeding from checkpoint".
    NoRestoreInstruction {
        /// ARMOR instance name.
        name: Arc<str>,
    },

    // --- MPI + applications ---
    /// "mpi: rank {rank} send to unknown rank {to_rank}".
    MpiUnknownRank {
        /// Sending rank.
        rank: u32,
        /// Unknown destination rank.
        to_rank: u32,
    },
    /// "rank {rank} gave up after blocking {blocked} on the SIFT
    /// interface".
    RankGaveUp {
        /// Blocked rank.
        rank: u32,
        /// How long it was blocked.
        blocked: SimDuration,
    },
    /// "{app} rank {rank} running (resume '{token}')".
    AppRankRunning {
        /// Application name.
        app: Box<str>,
        /// Rank entering its run phase.
        rank: u32,
        /// Resume token.
        token: Box<str>,
    },
}

impl From<&'static str> for TraceDetail {
    fn from(s: &'static str) -> Self {
        TraceDetail::Static(s)
    }
}

impl From<String> for TraceDetail {
    fn from(s: String) -> Self {
        TraceDetail::Custom(s.into_boxed_str())
    }
}

impl std::fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use TraceDetail as D;
        match self {
            D::Static(s) => f.write_str(s),
            D::Custom(s) => f.write_str(s),
            D::Spawn { name, kind, node } => write!(f, "spawn {name} ({kind}) on {node}"),
            D::ProcExit { name, status } => write!(f, "{name} exits: {status}"),
            D::SignalInjected(sig) => write!(f, "signal {sig}"),
            D::RegisterFlip(site) => write!(f, "register flip {site:?}"),
            D::TextFlip(site) => write!(f, "text flip {site:?}"),
            D::HeapFlip(hit) => write!(f, "heap flip {hit:?}"),
            D::NodeFailed(node) => write!(f, "{node} failed"),
            D::NodeRestored(node) => write!(f, "{node} restored"),
            D::Deliver { label, from } => write!(f, "deliver {label} from {from}"),
            D::OmissionDrop { label } => write!(f, "receive omission drops {label}"),
            D::SendToDead { label, to } => write!(f, "send {label} to dead {to}"),
            D::MsgDropped { label, to } => write!(f, "dropped {label} to {to}"),
            D::MsgPartitioned { label, to } => write!(f, "partitioned {label} to {to}"),
            D::DaemonRegistering { node } => {
                write!(f, "daemon on node{node} registering with FTM")
            }
            D::ArmorInstall { kind, armor, pid, node } => {
                write!(f, "installed {kind} as armor{armor} ({pid}) on {node}")
            }
            D::ArmorImageReload { armor, restarts } => {
                write!(f, "armor{armor} failed {restarts} times; reloading image from disk")
            }
            D::ArmorUninstall { armor } => write!(f, "uninstalled armor{armor}"),
            D::DetectHang { armor } => write!(f, "detect hang armor{armor}"),
            D::DetectCrash { armor } => write!(f, "detect crash armor{armor}"),
            D::DetectNodeFailure { node } => {
                write!(f, "detect node{node} failure (daemon silent)")
            }
            D::FtmAcceptedSubmission { app, slot } => {
                write!(f, "FTM accepted submission of {app} (slot {slot})")
            }
            D::FtmSlotComplete { slot } => write!(f, "FTM reports slot {slot} complete to SCC"),
            D::FtmConnectTimeout { slot } => {
                write!(f, "connect timeout for slot {slot}; retrying setup")
            }
            D::FtmRestartApp { slot, restart } => {
                write!(f, "FTM restarting app slot {slot} (restart #{restart})")
            }
            D::MigratingArmor { armor, kind, node } => {
                write!(f, "migrating armor{armor} ({kind}) to node{node}")
            }
            D::SccResubmit { slot } => write!(f, "SCC resubmitting slot {slot} (no start report)"),
            D::SccSubmit { app, slot } => write!(f, "SCC submits {app} (slot {slot})"),
            D::SccReceivedReport { variant, f1, f2 } => {
                write!(f, "SCC received {variant} {{ {}: {}", f1.0, f1.1)?;
                if let Some((name, value)) = f2 {
                    write!(f, ", {name}: {value}")?;
                }
                write!(f, " }}")
            }
            D::AppFailureReport { slot, rank, reason } => {
                write!(f, "exec armor reports app failure: slot{slot} rank{rank} ({reason})")
            }
            D::AppRecovered { slot, attempt } => {
                write!(f, "recovered application slot{slot} (attempt {attempt})")
            }
            D::AppTerminatedNotice { slot, rank } => {
                write!(f, "app-terminated slot{slot} rank{rank}")
            }
            D::DetectAppCrash { rank } => write!(f, "detect app crash rank{rank}"),
            D::DetectAppHang { rank } => write!(f, "detect app hang rank{rank}"),
            D::RouteMiss { armor } => write!(f, "route miss for armor{armor}; packet dropped"),
            D::CheckpointRestored { name } => write!(f, "{name} restored state from checkpoint"),
            D::CheckpointUnusable { name, error } => {
                write!(f, "{name} checkpoint unusable ({error}); cold start")
            }
            D::Recovered { name } => write!(f, "recovered {name}"),
            D::ArmorCrash { name, reason } => write!(f, "{name} crash: {reason}"),
            D::ArmorAssertion { name, reason } => write!(f, "{name} assertion fired: {reason}"),
            D::ThreadAborted { name, reason } => {
                write!(f, "{name} handling thread aborted: {reason}")
            }
            D::ThreadAbort { name, reason } => write!(f, "{name} thread abort: {reason}"),
            D::Misrouted { name } => write!(f, "{name}: misrouted packet dropped"),
            D::UnknownLabel { name, label } => {
                write!(f, "{name}: unknown message label {label}")
            }
            D::NoRestoreInstruction { name } => {
                write!(f, "{name}: no restore instruction; proceeding from checkpoint")
            }
            D::MpiUnknownRank { rank, to_rank } => {
                write!(f, "mpi: rank {rank} send to unknown rank {to_rank}")
            }
            D::RankGaveUp { rank, blocked } => {
                write!(f, "rank {rank} gave up after blocking {blocked} on the SIFT interface")
            }
            D::AppRankRunning { app, rank, token } => {
                write!(f, "{app} rank {rank} running (resume '{token}')")
            }
        }
    }
}

/// Substring test against the rendered form, skipping the render for the
/// variants that already hold their full text.
fn detail_contains(detail: &TraceDetail, needle: &str) -> bool {
    match detail {
        TraceDetail::Static(s) => s.contains(needle),
        TraceDetail::Custom(s) => s.contains(needle),
        other => other.to_string().contains(needle),
    }
}

/// One timestamped trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the occurrence.
    pub time: SimTime,
    /// Process involved, if any.
    pub pid: Option<Pid>,
    /// Record category.
    pub kind: TraceKind,
    /// Typed identity, when the occurrence is one classification cares
    /// about.
    pub event: Option<TraceEvent>,
    /// Typed arguments of the occurrence; `Display` renders the
    /// human-readable line.
    pub detail: TraceDetail,
}

/// An in-memory, bounded trace buffer with O(1) typed-event queries.
///
/// Record storage is split into an immutable shared **prefix** and a
/// mutable **tail**. [`Trace::freeze`] moves everything recorded so far
/// into the `Arc`'d prefix, after which cloning the trace — the per-run
/// snapshot fork — bumps a refcount instead of deep-copying the boot
/// records. Readers never see the seam: queries, iteration, and
/// rendering present one ordered sequence.
#[derive(Debug)]
pub struct Trace {
    /// Records frozen at snapshot time, shared between forks.
    prefix: Option<Arc<[TraceRecord]>>,
    /// Records appended since the last freeze.
    tail: Vec<TraceRecord>,
    counters: [u64; TraceEvent::COUNT],
    enabled: bool,
    cap: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        // Preserve the tail's capacity: a freshly frozen trace has an
        // empty tail whose capacity still reflects the boot-time record
        // volume, and each forked run appends a comparable number of
        // records. `Vec::clone` would start the fork at zero capacity
        // and re-grow through every doubling on every run.
        let mut tail = Vec::with_capacity(self.tail.capacity());
        tail.extend_from_slice(&self.tail);
        Trace {
            prefix: self.prefix.clone(),
            tail,
            counters: self.counters,
            enabled: self.enabled,
            cap: self.cap,
            dropped: self.dropped,
        }
    }
}

impl Trace {
    /// Creates an enabled trace with a generous default cap.
    pub fn new() -> Self {
        Trace {
            prefix: None,
            tail: Vec::new(),
            counters: [0; TraceEvent::COUNT],
            enabled: true,
            cap: 400_000,
            dropped: 0,
        }
    }

    fn prefix_slice(&self) -> &[TraceRecord] {
        self.prefix.as_deref().unwrap_or(&[])
    }

    /// Freezes everything recorded so far into the shared immutable
    /// prefix. Subsequent [`Clone`]s share it by refcount, so forking a
    /// booted snapshot stops deep-copying the boot records. Repeated
    /// freezes concatenate. Purely an ownership change — every reader
    /// sees the same ordered sequence before and after.
    pub fn freeze(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let prefix: Arc<[TraceRecord]> = match self.prefix.take() {
            None => self.tail.drain(..).collect(),
            Some(old) => old.iter().cloned().chain(self.tail.drain(..)).collect(),
        };
        self.prefix = Some(prefix);
    }

    /// Enables or disables recording (campaigns disable it for speed).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an untyped record (no-op when disabled or at capacity).
    pub fn push(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        kind: TraceKind,
        detail: impl Into<TraceDetail>,
    ) {
        self.record(time, pid, kind, None, detail.into());
    }

    /// Appends a typed record. The per-kind counter is bumped even when
    /// the record itself is dropped at capacity, so the O(1) queries stay
    /// truthful on runs that overflow the buffer.
    pub fn push_event(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        kind: TraceKind,
        event: TraceEvent,
        detail: impl Into<TraceDetail>,
    ) {
        self.record(time, pid, kind, Some(event), detail.into());
    }

    fn record(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        kind: TraceKind,
        event: Option<TraceEvent>,
        detail: TraceDetail,
    ) {
        if !self.enabled {
            return;
        }
        if let Some(ev) = event {
            self.counters[ev.index()] += 1;
        }
        if self.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.tail.push(TraceRecord { time, pid, kind, event, detail });
    }

    /// All records, in order (frozen prefix first, then the live tail).
    pub fn records(&self) -> impl DoubleEndedIterator<Item = &TraceRecord> + Clone + '_ {
        self.prefix_slice().iter().chain(self.tail.iter())
    }

    /// Number of stored records (excluding any dropped at capacity).
    pub fn len(&self) -> usize {
        self.prefix_slice().len() + self.tail.len()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records of one category.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRecord> {
        self.records().filter(move |r| r.kind == kind)
    }

    /// Records carrying one typed event, in order.
    pub fn of_event(&self, event: TraceEvent) -> impl Iterator<Item = &TraceRecord> {
        self.records().filter(move |r| r.event == Some(event))
    }

    /// True if the event occurred at least once — O(1).
    pub fn any(&self, event: TraceEvent) -> bool {
        self.counters[event.index()] > 0
    }

    /// Number of occurrences of the event — O(1), and counted even for
    /// occurrences whose records were dropped at capacity.
    pub fn count_of(&self, event: TraceEvent) -> u64 {
        self.counters[event.index()]
    }

    /// True if any record's rendered detail contains `needle` (debugging;
    /// O(n) and renders each record — classification paths use
    /// [`Trace::any`] instead).
    pub fn contains(&self, needle: &str) -> bool {
        self.records().any(|r| detail_contains(&r.detail, needle))
    }

    /// First record whose rendered detail contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceRecord> {
        self.records().find(|r| detail_contains(&r.detail, needle))
    }

    /// Count of records whose rendered detail contains `needle`
    /// (debugging; O(n) — classification paths use [`Trace::count_of`]
    /// instead).
    pub fn count(&self, needle: &str) -> usize {
        self.records().filter(|r| detail_contains(&r.detail, needle)).count()
    }

    /// Renders the whole trace as text, one record per line — the
    /// debugging string view, built only when asked for.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.records() {
            let _ = match r.pid {
                Some(pid) => writeln!(out, "{} {} {:?} {}", r.time, pid, r.kind, r.detail),
                None => writeln!(out, "{} - {:?} {}", r.time, r.kind, r.detail),
            };
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} records dropped at capacity)", self.dropped);
        }
        out
    }

    /// Number of records dropped after hitting the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The full typed-event counter table, indexed by [`TraceEvent`]
    /// discriminant. This is the trace's O(1) behavioural summary —
    /// state digests hash it as a cheap proxy for "what has the SIFT
    /// environment observed so far" without touching record storage.
    pub fn counters(&self) -> &[u64; TraceEvent::COUNT] {
        &self.counters
    }

    /// Clears all records and counters (including any frozen prefix).
    pub fn clear(&mut self) {
        self.prefix = None;
        self.tail.clear();
        self.counters = [0; TraceEvent::COUNT];
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm");
        t.push(SimTime::from_secs(1), None, TraceKind::Injection, "SIGINT into ftm");
        assert_eq!(t.len(), 2);
        assert!(t.contains("SIGINT"));
        assert_eq!(t.count("ftm"), 2);
        assert_eq!(t.of_kind(TraceKind::Injection).count(), 1);
        assert_eq!(t.find("spawn").unwrap().pid, Some(Pid(1)));
    }

    #[test]
    fn typed_events_count_in_constant_time() {
        let mut t = Trace::new();
        assert!(!t.any(TraceEvent::AssertionFired));
        for i in 0..3 {
            t.push_event(
                SimTime::from_secs(i),
                Some(Pid(9)),
                TraceKind::App,
                TraceEvent::AssertionFired,
                format!("armor assertion fired: #{i}"),
            );
        }
        t.push_event(
            SimTime::from_secs(9),
            None,
            TraceKind::Recovery,
            TraceEvent::RecoveryCompleted,
            "recovered ftm",
        );
        assert!(t.any(TraceEvent::AssertionFired));
        assert_eq!(t.count_of(TraceEvent::AssertionFired), 3);
        assert_eq!(t.count_of(TraceEvent::RecoveryCompleted), 1);
        assert_eq!(t.count_of(TraceEvent::MpiInitTimeout), 0);
        assert_eq!(t.of_event(TraceEvent::AssertionFired).count(), 3);
        assert_eq!(
            t.of_event(TraceEvent::RecoveryCompleted).next().unwrap().time,
            SimTime::from_secs(9)
        );
    }

    #[test]
    fn counters_survive_capacity_overflow() {
        let mut t = Trace::new();
        t.cap = 2;
        for i in 0..5 {
            t.push_event(
                SimTime::ZERO,
                None,
                TraceKind::App,
                TraceEvent::AppTerminated,
                format!("{i}"),
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // The typed counter sees every occurrence, not just stored ones.
        assert_eq!(t.count_of(TraceEvent::AppTerminated), 5);
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.count_of(TraceEvent::AppTerminated), 0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.push(SimTime::ZERO, None, TraceKind::App, "x");
        t.push_event(SimTime::ZERO, None, TraceKind::App, TraceEvent::AppStarted, "y");
        assert!(t.is_empty());
        assert!(!t.any(TraceEvent::AppStarted));
        assert!(!t.is_enabled());
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = Trace::new();
        t.cap = 2;
        for i in 0..5 {
            t.push(SimTime::ZERO, None, TraceKind::App, format!("{i}"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn freeze_is_invisible_to_readers() {
        let mut frozen = Trace::new();
        let mut plain = Trace::new();
        for t in [&mut frozen, &mut plain] {
            t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm");
            t.push_event(
                SimTime::from_secs(1),
                None,
                TraceKind::Recovery,
                TraceEvent::RecoveryCompleted,
                "recovered ftm",
            );
        }
        frozen.freeze();
        frozen.freeze(); // idempotent on an empty tail
        for t in [&mut frozen, &mut plain] {
            t.push(SimTime::from_secs(2), None, TraceKind::App, "post-freeze");
        }
        assert_eq!(frozen.render(), plain.render());
        assert_eq!(frozen.len(), plain.len());
        assert_eq!(frozen.count_of(TraceEvent::RecoveryCompleted), 1);
        assert_eq!(frozen.of_kind(TraceKind::App).count(), 1);
        assert_eq!(frozen.find("spawn").unwrap().pid, Some(Pid(1)));
        // Reverse iteration crosses the prefix/tail seam.
        let last = frozen.records().next_back().unwrap();
        assert_eq!(last.time, SimTime::from_secs(2));
    }

    #[test]
    fn forks_of_a_frozen_trace_are_independent() {
        let mut parent = Trace::new();
        parent.push(SimTime::ZERO, None, TraceKind::App, "boot");
        parent.freeze();
        let rendered = parent.render();

        let mut fork = parent.clone();
        fork.push(SimTime::from_secs(5), None, TraceKind::Injection, "flip");
        assert_eq!(fork.len(), 2);
        // The parent snapshot never sees the fork's appends.
        assert_eq!(parent.render(), rendered);
        assert_eq!(parent.len(), 1);

        let mut refork = parent.clone();
        refork.clear();
        assert!(refork.is_empty());
        assert_eq!(parent.len(), 1);
    }

    #[test]
    fn cap_counts_across_the_freeze_seam() {
        let mut t = Trace::new();
        t.cap = 3;
        t.push(SimTime::ZERO, None, TraceKind::App, "a");
        t.push(SimTime::ZERO, None, TraceKind::App, "b");
        t.freeze();
        t.push(SimTime::ZERO, None, TraceKind::App, "c");
        t.push(SimTime::ZERO, None, TraceKind::App, "overflow");
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn render_is_line_per_record() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm");
        t.push(SimTime::from_secs(2), None, TraceKind::Recovery, "recovered ftm");
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("spawn ftm"));
        assert!(text.contains("recovered ftm"));
    }

    #[test]
    fn failure_detection_partition() {
        assert!(TraceEvent::HangDetected.is_failure_detection());
        assert!(TraceEvent::AppCrashDetected.is_failure_detection());
        assert!(!TraceEvent::RecoveryCompleted.is_failure_detection());
        assert!(!TraceEvent::AssertionFired.is_failure_detection());
    }
}
