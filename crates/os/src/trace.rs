//! Structured run trace — the "data collection" half of the NFTAPE role.
//!
//! Every OS-level occurrence (spawn, exit, signal, message, injection) is
//! recorded with its virtual timestamp. Experiments and tests query the
//! trace instead of scraping stdout.

use crate::process::Pid;
use ree_sim::SimTime;

/// Category of a trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Process lifecycle (spawn/exit).
    Lifecycle,
    /// Signal delivery.
    Signal,
    /// Message send/deliver.
    Message,
    /// Fault injection.
    Injection,
    /// Application- or ARMOR-level annotation.
    App,
    /// Recovery actions.
    Recovery,
}

/// One timestamped trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the occurrence.
    pub time: SimTime,
    /// Process involved, if any.
    pub pid: Option<Pid>,
    /// Record category.
    pub kind: TraceKind,
    /// Human-readable detail.
    pub detail: String,
}

/// An in-memory, bounded trace buffer.
#[derive(Debug)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
    cap: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Creates an enabled trace with a generous default cap.
    pub fn new() -> Self {
        Trace { records: Vec::new(), enabled: true, cap: 400_000, dropped: 0 }
    }

    /// Enables or disables recording (campaigns disable it for speed).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled or at capacity).
    pub fn push(&mut self, time: SimTime, pid: Option<Pid>, kind: TraceKind, detail: String) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { time, pid, kind, detail });
    }

    /// All records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records of one category.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// True if any record's detail contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.records.iter().any(|r| r.detail.contains(needle))
    }

    /// First record whose detail contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.detail.contains(needle))
    }

    /// Count of records whose detail contains `needle`.
    pub fn count(&self, needle: &str) -> usize {
        self.records.iter().filter(|r| r.detail.contains(needle)).count()
    }

    /// Number of records dropped after hitting the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm".into());
        t.push(SimTime::from_secs(1), None, TraceKind::Injection, "SIGINT into ftm".into());
        assert_eq!(t.records().len(), 2);
        assert!(t.contains("SIGINT"));
        assert_eq!(t.count("ftm"), 2);
        assert_eq!(t.of_kind(TraceKind::Injection).count(), 1);
        assert_eq!(t.find("spawn").unwrap().pid, Some(Pid(1)));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.push(SimTime::ZERO, None, TraceKind::App, "x".into());
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = Trace { records: Vec::new(), enabled: true, cap: 2, dropped: 0 };
        for i in 0..5 {
            t.push(SimTime::ZERO, None, TraceKind::App, format!("{i}"));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.dropped(), 0);
    }
}
