//! Structured run trace — the "data collection" half of the NFTAPE role.
//!
//! Every OS-level occurrence (spawn, exit, signal, message, injection) is
//! recorded with its virtual timestamp. Experiments and tests query the
//! trace instead of scraping stdout.
//!
//! Records carry two payloads: an optional **typed event** — a
//! [`TraceEvent`] that campaign classification matches on in O(1) via
//! per-kind counters — and a human-readable **detail** string kept for
//! debugging. Classification hot paths (`ree-inject`) use only the typed
//! side; the string side is a lazily-rendered view ([`Trace::render`]).

use crate::process::Pid;
use ree_sim::SimTime;

/// Category of a trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Process lifecycle (spawn/exit).
    Lifecycle,
    /// Signal delivery.
    Signal,
    /// Message send/deliver.
    Message,
    /// Fault injection.
    Injection,
    /// Application- or ARMOR-level annotation.
    App,
    /// Recovery actions.
    Recovery,
}

/// Machine-readable identity of a notable occurrence: what the SIFT
/// environment logged, as a value instead of a substring.
///
/// Campaign classification (the NFTAPE "collect" role, §4) matches on
/// these instead of scanning rendered detail strings; the trace keeps a
/// per-kind counter so [`Trace::any`] and [`Trace::count_of`] are O(1)
/// regardless of run length.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceEvent {
    /// A daemon ARMOR registered itself with the FTM.
    DaemonRegistered = 0,
    /// A daemon installed a non-exec ARMOR (FTM, Heartbeat ARMOR, …).
    ArmorInstalled,
    /// A daemon installed an Execution ARMOR.
    ExecArmorInstalled,
    /// A daemon uninstalled an ARMOR (normal takedown).
    ArmorUninstalled,
    /// The FTM accepted an application submission from the SCC.
    SubmissionAccepted,
    /// An application rank entered its run phase.
    AppStarted,
    /// An application rank announced clean termination to the SIFT
    /// environment (§3.3 termination notice).
    AppTerminated,
    /// The OS hung a process as a fault consequence (threads suspended).
    FaultInducedHang,
    /// An ARMOR assertion/self-check fired (fail-fast abort).
    AssertionFired,
    /// A daemon's prober found a local ARMOR unresponsive.
    HangDetected,
    /// A daemon observed a local ARMOR crash (waitpid).
    CrashDetected,
    /// An Execution ARMOR detected its application rank hung.
    AppHangDetected,
    /// An Execution ARMOR detected its application rank crashed.
    AppCrashDetected,
    /// The Heartbeat ARMOR detected FTM failure (heartbeat timeout).
    FtmFailureDetected,
    /// The FTM declared a node failed (daemon silent).
    NodeFailureDetected,
    /// A recovery completed: restarted ARMOR restored / application
    /// relaunched.
    RecoveryCompleted,
    /// Rank 0 aborted the application on an MPI init timeout (Figure 8).
    MpiInitTimeout,
    /// A rank gave up after blocking too long on the SIFT interface.
    MpiRankGaveUp,
}

impl TraceEvent {
    /// Number of event kinds (size of the counter table) — derived from
    /// the last discriminant so adding a variant can never leave the
    /// table undersized.
    pub const COUNT: usize = TraceEvent::MpiRankGaveUp as usize + 1;

    fn index(self) -> usize {
        self as usize
    }

    /// True for events that mark the *detection* of a failure — the
    /// start of a recovery interval (§4.2 recovery-time measurement).
    pub fn is_failure_detection(self) -> bool {
        matches!(
            self,
            TraceEvent::HangDetected
                | TraceEvent::CrashDetected
                | TraceEvent::AppHangDetected
                | TraceEvent::AppCrashDetected
                | TraceEvent::FtmFailureDetected
                | TraceEvent::NodeFailureDetected
        )
    }
}

/// One timestamped trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the occurrence.
    pub time: SimTime,
    /// Process involved, if any.
    pub pid: Option<Pid>,
    /// Record category.
    pub kind: TraceKind,
    /// Typed identity, when the occurrence is one classification cares
    /// about.
    pub event: Option<TraceEvent>,
    /// Human-readable detail.
    pub detail: String,
}

/// An in-memory, bounded trace buffer with O(1) typed-event queries.
#[derive(Debug)]
pub struct Trace {
    records: Vec<TraceRecord>,
    counters: [u64; TraceEvent::COUNT],
    enabled: bool,
    cap: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Creates an enabled trace with a generous default cap.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
            counters: [0; TraceEvent::COUNT],
            enabled: true,
            cap: 400_000,
            dropped: 0,
        }
    }

    /// Enables or disables recording (campaigns disable it for speed).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an untyped record (no-op when disabled or at capacity).
    pub fn push(&mut self, time: SimTime, pid: Option<Pid>, kind: TraceKind, detail: String) {
        self.record(time, pid, kind, None, detail);
    }

    /// Appends a typed record. The per-kind counter is bumped even when
    /// the record itself is dropped at capacity, so the O(1) queries stay
    /// truthful on runs that overflow the buffer.
    pub fn push_event(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        kind: TraceKind,
        event: TraceEvent,
        detail: String,
    ) {
        self.record(time, pid, kind, Some(event), detail);
    }

    fn record(
        &mut self,
        time: SimTime,
        pid: Option<Pid>,
        kind: TraceKind,
        event: Option<TraceEvent>,
        detail: String,
    ) {
        if !self.enabled {
            return;
        }
        if let Some(ev) = event {
            self.counters[ev.index()] += 1;
        }
        if self.records.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { time, pid, kind, event, detail });
    }

    /// All records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records of one category.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Records carrying one typed event, in order.
    pub fn of_event(&self, event: TraceEvent) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.event == Some(event))
    }

    /// True if the event occurred at least once — O(1).
    pub fn any(&self, event: TraceEvent) -> bool {
        self.counters[event.index()] > 0
    }

    /// Number of occurrences of the event — O(1), and counted even for
    /// occurrences whose records were dropped at capacity.
    pub fn count_of(&self, event: TraceEvent) -> u64 {
        self.counters[event.index()]
    }

    /// True if any record's detail contains `needle` (debugging; O(n) —
    /// classification paths use [`Trace::any`] instead).
    pub fn contains(&self, needle: &str) -> bool {
        self.records.iter().any(|r| r.detail.contains(needle))
    }

    /// First record whose detail contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.detail.contains(needle))
    }

    /// Count of records whose detail contains `needle` (debugging; O(n)
    /// — classification paths use [`Trace::count_of`] instead).
    pub fn count(&self, needle: &str) -> usize {
        self.records.iter().filter(|r| r.detail.contains(needle)).count()
    }

    /// Renders the whole trace as text, one record per line — the
    /// debugging string view, built only when asked for.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = match r.pid {
                Some(pid) => writeln!(out, "{} {} {:?} {}", r.time, pid, r.kind, r.detail),
                None => writeln!(out, "{} - {:?} {}", r.time, r.kind, r.detail),
            };
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} records dropped at capacity)", self.dropped);
        }
        out
    }

    /// Number of records dropped after hitting the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all records and counters.
    pub fn clear(&mut self) {
        self.records.clear();
        self.counters = [0; TraceEvent::COUNT];
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm".into());
        t.push(SimTime::from_secs(1), None, TraceKind::Injection, "SIGINT into ftm".into());
        assert_eq!(t.records().len(), 2);
        assert!(t.contains("SIGINT"));
        assert_eq!(t.count("ftm"), 2);
        assert_eq!(t.of_kind(TraceKind::Injection).count(), 1);
        assert_eq!(t.find("spawn").unwrap().pid, Some(Pid(1)));
    }

    #[test]
    fn typed_events_count_in_constant_time() {
        let mut t = Trace::new();
        assert!(!t.any(TraceEvent::AssertionFired));
        for i in 0..3 {
            t.push_event(
                SimTime::from_secs(i),
                Some(Pid(9)),
                TraceKind::App,
                TraceEvent::AssertionFired,
                format!("armor assertion fired: #{i}"),
            );
        }
        t.push_event(
            SimTime::from_secs(9),
            None,
            TraceKind::Recovery,
            TraceEvent::RecoveryCompleted,
            "recovered ftm".into(),
        );
        assert!(t.any(TraceEvent::AssertionFired));
        assert_eq!(t.count_of(TraceEvent::AssertionFired), 3);
        assert_eq!(t.count_of(TraceEvent::RecoveryCompleted), 1);
        assert_eq!(t.count_of(TraceEvent::MpiInitTimeout), 0);
        assert_eq!(t.of_event(TraceEvent::AssertionFired).count(), 3);
        assert_eq!(
            t.of_event(TraceEvent::RecoveryCompleted).next().unwrap().time,
            SimTime::from_secs(9)
        );
    }

    #[test]
    fn counters_survive_capacity_overflow() {
        let mut t = Trace::new();
        t.cap = 2;
        for i in 0..5 {
            t.push_event(
                SimTime::ZERO,
                None,
                TraceKind::App,
                TraceEvent::AppTerminated,
                format!("{i}"),
            );
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        // The typed counter sees every occurrence, not just stored ones.
        assert_eq!(t.count_of(TraceEvent::AppTerminated), 5);
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.count_of(TraceEvent::AppTerminated), 0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.set_enabled(false);
        t.push(SimTime::ZERO, None, TraceKind::App, "x".into());
        t.push_event(SimTime::ZERO, None, TraceKind::App, TraceEvent::AppStarted, "y".into());
        assert!(t.records().is_empty());
        assert!(!t.any(TraceEvent::AppStarted));
        assert!(!t.is_enabled());
    }

    #[test]
    fn cap_drops_and_counts() {
        let mut t = Trace::new();
        t.cap = 2;
        for i in 0..5 {
            t.push(SimTime::ZERO, None, TraceKind::App, format!("{i}"));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn render_is_line_per_record() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Some(Pid(1)), TraceKind::Lifecycle, "spawn ftm".into());
        t.push(SimTime::from_secs(2), None, TraceKind::Recovery, "recovered ftm".into());
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("spawn ftm"));
        assert!(text.contains("recovered ftm"));
    }

    #[test]
    fn failure_detection_partition() {
        assert!(TraceEvent::HangDetected.is_failure_detection());
        assert!(TraceEvent::AppCrashDetected.is_failure_detection());
        assert!(!TraceEvent::RecoveryCompleted.is_failure_detection());
        assert!(!TraceEvent::AssertionFired.is_failure_detection());
    }
}
