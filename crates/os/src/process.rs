//! Process identity, signals, exit status, and the behaviour traits that
//! simulated processes implement.

use crate::machine::MachineProfile;
use ree_sim::SimRng;
use std::any::Any;

/// A globally unique process identifier.
///
/// Unlike Unix PIDs these are never reused, so stale references are
/// detectable ("is this the same FTM I installed, or its replacement?").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Signals the simulated LynxOS can deliver (the paper's Table 2 error
/// models plus the fault-manifestation signals).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Signal {
    /// Interrupt: target terminates (crash-failure model).
    Int,
    /// Stop: all threads suspend (hang-failure model).
    Stop,
    /// Continue a stopped process.
    Cont,
    /// Unconditional kill.
    Kill,
    /// Segmentation fault (invalid memory access).
    Segv,
    /// Illegal instruction.
    Ill,
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Signal::Int => "SIGINT",
            Signal::Stop => "SIGSTOP",
            Signal::Cont => "SIGCONT",
            Signal::Kill => "SIGKILL",
            Signal::Segv => "SIGSEGV",
            Signal::Ill => "SIGILL",
        };
        f.write_str(s)
    }
}

/// How a process ended, as observed by its parent via `waitpid`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExitStatus {
    /// Voluntary exit with a code (0 = success).
    Exited(i32),
    /// Terminated by a signal.
    Killed(Signal),
    /// The process killed itself after an internal check (assertion,
    /// self-check) detected an error — the ARMOR fail-fast path (§3.3).
    Aborted(String),
}

impl ExitStatus {
    /// True for any termination a parent should treat as a failure.
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, ExitStatus::Exited(0))
    }
}

impl std::fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExitStatus::Exited(c) => write!(f, "exited({c})"),
            ExitStatus::Killed(s) => write!(f, "killed({s})"),
            ExitStatus::Aborted(r) => write!(f, "aborted({r})"),
        }
    }
}

/// A message payload: any `Send + Sync` type that can be cloned.
///
/// Payloads used to be plain `Box<dyn Any>`; warm-boot campaign
/// snapshots require cloning a live cluster — including every in-flight
/// and stashed message — and handing clones to worker threads, so
/// payloads must be clonable and thread-portable. The blanket impl keeps
/// call sites unchanged: anything `Any + Send + Sync + Clone` qualifies.
pub trait Payload: Any + Send + Sync {
    /// Clones the payload behind the trait object.
    fn clone_payload(&self) -> Box<dyn Payload>;
    /// Borrows the payload as `Any` (for downcasting).
    fn as_any(&self) -> &dyn Any;
    /// Converts the box into `Box<dyn Any>` (for consuming downcasts).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Send + Sync + Clone> Payload for T {
    fn clone_payload(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// NOTE: `Box<dyn Payload>` is itself `Any + Send + Sync + Clone`, so the
// blanket impl applies to the *box* too; every call below derefs
// explicitly to reach the boxed object's impl, not the box's.
impl Clone for Box<dyn Payload> {
    fn clone(&self) -> Self {
        (**self).clone_payload()
    }
}

impl std::fmt::Debug for dyn Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Payload { .. }")
    }
}

/// A message delivered to a process's mailbox.
#[derive(Debug)]
pub struct Message {
    /// Sender process.
    pub from: Pid,
    /// Short protocol label (appears in traces; lets receivers route
    /// cheaply without downcasting).
    pub label: &'static str,
    /// Opaque payload; receivers downcast to the concrete type.
    pub payload: Box<dyn Payload>,
}

impl Message {
    /// Attempts to take the payload as a `T`, consuming it on success.
    pub fn take<T: 'static>(self) -> Result<T, Message> {
        if (*self.payload).as_any().is::<T>() {
            Ok(*Payload::into_any(self.payload).downcast::<T>().expect("type checked above"))
        } else {
            Err(self)
        }
    }

    /// Borrowing downcast.
    pub fn peek<T: 'static>(&self) -> Option<&T> {
        (*self.payload).as_any().downcast_ref::<T>()
    }
}

/// Kind of a heap field, for the targeted injections of §7.2 ("a single
/// error in data (not pointers) was injected").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldKind {
    /// Connects data structures; corruption typically segfaults quickly.
    Pointer,
    /// Carries information; corruption propagates silently.
    Data,
}

/// Which part of a process's heap an injection should target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeapTarget {
    /// Any allocated region, any field kind (§7.1 experiments).
    Any,
    /// Non-pointer data fields only (§7.2 experiments).
    DataOnly,
    /// Data fields of one named region/element (Table 8 experiments).
    Region(String),
}

/// Report of a heap bit flip: what was hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapHit {
    /// Region/element name (e.g. `node_mgmt`).
    pub region: String,
    /// Field description.
    pub field: String,
    /// Pointer or data.
    pub kind: FieldKind,
}

/// Dynamic heap exposed for fault injection.
///
/// ARMOR processes expose their element state; applications expose their
/// matrices and control blocks. Implementations flip *real bits in real
/// state* so propagation follows genuine data flow.
pub trait HeapModel {
    /// Names of the injectable regions.
    fn region_names(&self) -> Vec<String>;

    /// Flips one bit according to `target`; reports what was hit, or
    /// `None` if the target does not exist in this process.
    fn flip_bit(&mut self, rng: &mut SimRng, target: &HeapTarget) -> Option<HeapHit>;
}

/// Object-safe cloning for [`Process`] trait objects.
///
/// Blanket-implemented for every `Process + Clone` type, so concrete
/// behaviours only need `#[derive(Clone)]`. Cloning behaviours is what
/// makes a booted cluster forkable into per-run campaign copies.
pub trait ProcessClone {
    /// Clones the behaviour behind the trait object.
    fn clone_process(&self) -> Box<dyn Process>;
}

impl<T: Process + Clone + 'static> ProcessClone for T {
    fn clone_process(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Process> {
    fn clone(&self) -> Self {
        (**self).clone_process()
    }
}

/// Behaviour of a simulated process: a state machine over OS events.
///
/// Methods receive a [`crate::ProcCtx`] giving access to messaging,
/// timers, CPU work, spawning, storage, and self-termination. All methods
/// other than [`Process::on_message`] have empty defaults.
///
/// `Send + Sync + ProcessClone` bounds exist for warm-boot campaign
/// snapshots: a booted cluster is cloned per run and the clones execute
/// on worker threads, so every behaviour must be clonable and
/// thread-portable (`#[derive(Clone)]` plus plain-data / `Arc` state).
pub trait Process: ProcessClone + Send + Sync {
    /// Short kind tag (names the text image; appears in traces).
    fn kind(&self) -> &'static str;

    /// Called once when the process starts running.
    fn on_start(&mut self, ctx: &mut crate::ProcCtx<'_>) {
        let _ = ctx;
    }

    /// Called for each mailbox message.
    fn on_message(&mut self, msg: Message, ctx: &mut crate::ProcCtx<'_>);

    /// Called when a timer set via [`crate::ProcCtx::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut crate::ProcCtx<'_>) {
        let _ = (tag, ctx);
    }

    /// Called when a unit of CPU work completes.
    fn on_work_done(&mut self, tag: u64, ctx: &mut crate::ProcCtx<'_>) {
        let _ = (tag, ctx);
    }

    /// Called when a child process exits (`waitpid` semantics, §3.2).
    fn on_child_exit(&mut self, child: Pid, status: ExitStatus, ctx: &mut crate::ProcCtx<'_>) {
        let _ = (child, status, ctx);
    }

    /// Machine-model parameters for this process kind.
    fn machine_profile(&self) -> MachineProfile {
        MachineProfile::default()
    }

    /// The injectable heap, if this process models one.
    fn heap(&mut self) -> Option<&mut dyn HeapModel> {
        None
    }

    /// Invoked when an activated fault silently corrupts state: the
    /// default flips a random bit in the heap model (if any).
    fn silent_corruption(&mut self, rng: &mut SimRng) {
        if let Some(heap) = self.heap() {
            let _ = heap.flip_bit(rng, &HeapTarget::Any);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_status_abnormality() {
        assert!(!ExitStatus::Exited(0).is_abnormal());
        assert!(ExitStatus::Exited(1).is_abnormal());
        assert!(ExitStatus::Killed(Signal::Int).is_abnormal());
        assert!(ExitStatus::Aborted("range check".into()).is_abnormal());
    }

    #[test]
    fn message_take_downcasts() {
        let msg = Message { from: Pid(1), label: "x", payload: Box::new(42u32) };
        assert_eq!(msg.take::<u32>().unwrap(), 42);

        let msg = Message { from: Pid(1), label: "x", payload: Box::new(42u32) };
        let back = msg.take::<String>().unwrap_err();
        assert_eq!(back.peek::<u32>(), Some(&42));
    }

    #[test]
    fn display_impls() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(Signal::Stop.to_string(), "SIGSTOP");
        assert_eq!(ExitStatus::Killed(Signal::Segv).to_string(), "killed(SIGSEGV)");
    }
}
