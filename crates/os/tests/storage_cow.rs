//! Copy-on-write law tests for the storage layer: forking a disk (a
//! plain `Clone`) must give a logically independent copy no matter how
//! either side is mutated afterwards — writes after a fork never leak
//! into the parent, and forks of forks are pairwise independent.
//!
//! These are the semantic guarantees the warm-boot campaign path leans
//! on: every run forks the boot snapshot's `RamDisk`/`RemoteFs`, and a
//! single shared byte would corrupt every subsequent run of the sweep.

use proptest::collection::vec;
use proptest::prelude::*;
use ree_os::{RamDisk, RemoteFs};
use std::collections::BTreeMap;

/// One storage mutation, drawn from a small path universe so removes
/// and overwrites actually collide with earlier writes.
#[derive(Clone, Debug)]
enum Op {
    Write { path: usize, len: usize, fill: u8 },
    Remove { path: usize },
}

const PATHS: [&str; 6] = ["a", "b/c", "b/d", "ckpt/0", "ckpt/1", "scc/alldone"];

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0usize..PATHS.len(), 0usize..48, any::<u8>()).prop_map(|(path, len, fill)| Op::Write {
            path,
            len,
            fill
        }),
        (0usize..PATHS.len()).prop_map(|path| Op::Remove { path }),
    ]
    .boxed()
}

/// In-memory model of what a disk should contain after a sequence of ops.
type Model = BTreeMap<&'static str, Vec<u8>>;

fn apply_remote(fs: &mut RemoteFs, model: &mut Model, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Write { path, len, fill } => {
                fs.write(PATHS[path], vec![fill; len]);
                model.insert(PATHS[path], vec![fill; len]);
            }
            Op::Remove { path } => {
                let got = fs.remove(PATHS[path]);
                assert_eq!(got, model.remove(PATHS[path]), "remove {}", PATHS[path]);
            }
        }
    }
}

fn apply_ram(disk: &mut RamDisk, model: &mut Model, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Write { path, len, fill } => {
                if disk.write(PATHS[path], vec![fill; len]).is_ok() {
                    model.insert(PATHS[path], vec![fill; len]);
                }
            }
            Op::Remove { path } => {
                let got = disk.remove(PATHS[path]);
                assert_eq!(got, model.remove(PATHS[path]), "remove {}", PATHS[path]);
            }
        }
    }
}

fn assert_remote_matches(fs: &RemoteFs, model: &Model, who: &str) {
    let paths: Vec<&str> = fs.paths().collect();
    let expect: Vec<&str> = model.keys().copied().collect();
    assert_eq!(paths, expect, "{who}: path sets diverge");
    for (path, bytes) in model {
        assert_eq!(fs.peek(path), Some(bytes.as_slice()), "{who}: contents of {path}");
    }
}

fn assert_ram_matches(disk: &RamDisk, model: &Model, who: &str) {
    let paths: Vec<&str> = disk.paths().collect();
    let expect: Vec<&str> = model.keys().copied().collect();
    assert_eq!(paths, expect, "{who}: path sets diverge");
    for (path, bytes) in model {
        assert_eq!(disk.read(path), Some(bytes.as_slice()), "{who}: contents of {path}");
    }
}

proptest! {
    /// RemoteFs: mutating a fork never changes the parent, mutating the
    /// parent never changes the fork, and a fork of a fork is
    /// independent of both — under arbitrary interleaved write/remove
    /// sequences, each side always matches its own sequential model.
    #[test]
    fn remote_fs_forks_are_independent(
        setup in vec(op_strategy(), 0..24),
        child_ops in vec(op_strategy(), 0..24),
        grandchild_ops in vec(op_strategy(), 0..24),
        parent_ops in vec(op_strategy(), 0..24),
    ) {
        let mut parent = RemoteFs::new();
        let mut parent_model = Model::new();
        apply_remote(&mut parent, &mut parent_model, &setup);

        let mut child = parent.clone();
        let mut child_model = parent_model.clone();
        apply_remote(&mut child, &mut child_model, &child_ops);

        let mut grandchild = child.clone();
        let mut grandchild_model = child_model.clone();
        apply_remote(&mut grandchild, &mut grandchild_model, &grandchild_ops);

        // The parent mutates *after* both forks were taken.
        apply_remote(&mut parent, &mut parent_model, &parent_ops);

        assert_remote_matches(&parent, &parent_model, "parent");
        assert_remote_matches(&child, &child_model, "child");
        assert_remote_matches(&grandchild, &grandchild_model, "grandchild");
    }

    /// RamDisk: the same fork-independence laws, including capacity
    /// accounting staying per-fork.
    #[test]
    fn ram_disk_forks_are_independent(
        setup in vec(op_strategy(), 0..24),
        child_ops in vec(op_strategy(), 0..24),
        parent_ops in vec(op_strategy(), 0..24),
    ) {
        let mut parent = RamDisk::new();
        let mut parent_model = Model::new();
        apply_ram(&mut parent, &mut parent_model, &setup);

        let mut child = parent.clone();
        let mut child_model = parent_model.clone();
        apply_ram(&mut child, &mut child_model, &child_ops);
        apply_ram(&mut parent, &mut parent_model, &parent_ops);

        assert_ram_matches(&parent, &parent_model, "parent");
        assert_ram_matches(&child, &child_model, "child");

        // Used-byte accounting must agree with each side's own model.
        let expect_used = |m: &Model| m.values().map(Vec::len).sum::<usize>();
        prop_assert_eq!(parent.used(), expect_used(&parent_model));
        prop_assert_eq!(child.used(), expect_used(&child_model));
    }
}
