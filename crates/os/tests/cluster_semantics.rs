//! Behavioural tests of the simulated OS: signal semantics, waitpid,
//! timers, work units, message passing, and fault activation — the
//! contracts every SIFT component depends on.

use ree_os::{
    Cluster, ClusterConfig, ExitStatus, Message, NodeId, ProcCtx, Process, Signal, SpawnSpec,
    TextSource,
};
use ree_sim::{SimDuration, SimTime};

/// A process that records everything it sees into the trace.
#[derive(Clone)]
struct Probe {
    /// Replies to "ping" messages with a trace record.
    reply_to_ping: bool,
}

impl Process for Probe {
    fn kind(&self) -> &'static str {
        "probe"
    }
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.trace("probe started");
    }
    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        ctx.trace(format!("got {}", msg.label));
        if self.reply_to_ping && msg.label == "ping" {
            ctx.send(msg.from, "pong", 64, ());
        }
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        ctx.trace(format!("timer {tag}"));
    }
    fn on_work_done(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
        ctx.trace(format!("work {tag} done"));
    }
    fn on_child_exit(&mut self, child: ree_os::Pid, status: ExitStatus, ctx: &mut ProcCtx<'_>) {
        ctx.trace(format!("child {child} exited {status}"));
    }
}

#[derive(Clone)]
struct Pinger {
    target: ree_os::Pid,
}

impl Process for Pinger {
    fn kind(&self) -> &'static str {
        "pinger"
    }
    fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.send(self.target, "ping", 64, ());
    }
    fn on_message(&mut self, msg: Message, ctx: &mut ProcCtx<'_>) {
        ctx.trace(format!("pinger got {}", msg.label));
    }
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::ree_testbed(42))
}

#[test]
fn ping_pong_roundtrip_across_nodes() {
    let mut c = cluster();
    let probe =
        c.spawn(SpawnSpec::new("probe", NodeId(0), Box::new(Probe { reply_to_ping: true })));
    c.run_until(SimTime::from_millis_helper(200));
    c.spawn(SpawnSpec::new("pinger", NodeId(1), Box::new(Pinger { target: probe })));
    c.run_until(SimTime::from_secs(1));
    assert!(c.trace().contains("got ping"));
    assert!(c.trace().contains("pinger got pong"));
}

// Local helper because SimTime has no from_millis constructor.
trait Ms {
    fn from_millis_helper(ms: u64) -> SimTime;
}
impl Ms for SimTime {
    fn from_millis_helper(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }
}

#[test]
fn sigint_terminates_and_parent_sees_it() {
    let mut c = cluster();
    let parent =
        c.spawn(SpawnSpec::new("parent", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    let child = c.spawn(
        SpawnSpec::new("child", NodeId(0), Box::new(Probe { reply_to_ping: false }))
            .with_parent(parent),
    );
    c.run_until(SimTime::from_secs(1));
    assert!(c.is_alive(child));
    c.send_signal(child, Signal::Int);
    c.run_until(SimTime::from_secs(2));
    assert!(!c.is_alive(child));
    assert_eq!(c.exit_status(child).unwrap().1, ExitStatus::Killed(Signal::Int));
    assert!(c.trace().contains(&format!("child {child} exited killed(SIGINT)")));
}

#[test]
fn sigstop_suspends_and_sigcont_resumes_with_stashed_messages() {
    let mut c = cluster();
    let probe =
        c.spawn(SpawnSpec::new("probe", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    c.run_until(SimTime::from_secs(1));
    c.send_signal(probe, Signal::Stop);
    c.run_until(SimTime::from_secs(2));
    assert!(c.is_stopped(probe));
    // Send a message while stopped: it must not be processed...
    c.spawn(SpawnSpec::new("pinger", NodeId(1), Box::new(Pinger { target: probe })));
    c.run_until(SimTime::from_secs(3));
    assert!(!c.trace().contains("got ping"));
    // ...until the process is continued.
    c.send_signal(probe, Signal::Cont);
    c.run_until(SimTime::from_secs(4));
    assert!(!c.is_stopped(probe));
    assert!(c.trace().contains("got ping"));
}

#[test]
fn stopped_process_does_not_fire_timers_until_resumed() {
    #[derive(Clone)]
    struct TimerProc;
    impl Process for TimerProc {
        fn kind(&self) -> &'static str {
            "timerproc"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.set_timer(SimDuration::from_secs(2), 7);
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
        fn on_timer(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
            ctx.trace(format!("fired {tag}"));
        }
    }
    let mut c = cluster();
    let p = c.spawn(SpawnSpec::new("t", NodeId(0), Box::new(TimerProc)));
    c.run_until(SimTime::from_secs(1));
    c.send_signal(p, Signal::Stop);
    c.run_until(SimTime::from_secs(5));
    assert!(!c.trace().contains("fired 7"), "timer fired while stopped");
    c.send_signal(p, Signal::Cont);
    c.run_until(SimTime::from_secs(6));
    assert!(c.trace().contains("fired 7"), "stashed timer lost on resume");
}

#[test]
fn work_runs_for_its_duration_and_pauses_while_stopped() {
    #[derive(Clone)]
    struct Worker;
    impl Process for Worker {
        fn kind(&self) -> &'static str {
            "worker"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.start_work(SimDuration::from_secs(5), 1);
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
        fn on_work_done(&mut self, tag: u64, ctx: &mut ProcCtx<'_>) {
            ctx.trace(format!("done {tag} at {}", ctx.now()));
        }
    }
    // Uninterrupted: finishes at ~5s after start latency.
    let mut c = cluster();
    c.spawn(SpawnSpec::new("w", NodeId(0), Box::new(Worker)));
    c.run_until(SimTime::from_secs(10));
    let done = c.trace().find("done 1").expect("work completed").time;
    assert!(done >= SimTime::from_secs(5) && done <= SimTime::from_secs(6), "done at {done}");

    // Stopped for 10 s in the middle: completion shifts by the stop.
    let mut c = cluster();
    let w = c.spawn(SpawnSpec::new("w", NodeId(0), Box::new(Worker)));
    c.run_until(SimTime::from_secs(2));
    c.send_signal(w, Signal::Stop);
    c.run_until(SimTime::from_secs(12));
    c.send_signal(w, Signal::Cont);
    c.run_until(SimTime::from_secs(30));
    let done = c.trace().find("done 1").expect("work completed").time;
    assert!(done >= SimTime::from_secs(15), "done at {done} — stop did not pause work");
}

#[test]
fn messages_to_dead_processes_are_dropped() {
    let mut c = cluster();
    let probe =
        c.spawn(SpawnSpec::new("probe", NodeId(0), Box::new(Probe { reply_to_ping: true })));
    c.run_until(SimTime::from_secs(1));
    c.send_signal(probe, Signal::Kill);
    c.run_until(SimTime::from_secs(2));
    c.spawn(SpawnSpec::new("pinger", NodeId(1), Box::new(Pinger { target: probe })));
    c.run_until(SimTime::from_secs(3));
    assert!(!c.trace().contains("got ping"));
    assert!(c.trace().contains("send ping to dead"));
}

#[test]
fn node_failure_kills_processes_and_partitions_network() {
    let mut c = cluster();
    let a = c.spawn(SpawnSpec::new("a", NodeId(0), Box::new(Probe { reply_to_ping: true })));
    let b = c.spawn(SpawnSpec::new("b", NodeId(1), Box::new(Probe { reply_to_ping: true })));
    c.run_until(SimTime::from_secs(1));
    c.ramdisk(NodeId(0)).write("ckpt", vec![1, 2, 3]).unwrap();
    c.fail_node(NodeId(0));
    assert!(!c.is_alive(a));
    assert!(c.is_alive(b));
    assert!(!c.node_alive(NodeId(0)));
    assert!(!c.ramdisk(NodeId(0)).exists("ckpt"), "ram disk must be wiped");
    // Messages to the dead node's processes cannot flow; restore brings
    // the node back.
    c.restore_node(NodeId(0));
    assert!(c.node_alive(NodeId(0)));
}

#[test]
fn process_table_queries() {
    let mut c = cluster();
    let a = c.spawn(SpawnSpec::new("a", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    let b = c.spawn(SpawnSpec::new("b", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    let d = c.spawn(SpawnSpec::new("d", NodeId(2), Box::new(Probe { reply_to_ping: false })));
    c.run_until(SimTime::from_secs(1));
    assert_eq!(c.procs_on_node(NodeId(0)), vec![a, b]);
    assert_eq!(c.find_by_name("d"), Some(d));
    assert_eq!(c.node_of(d), Some(NodeId(2)));
    assert_eq!(c.name_of(a), Some("a"));
    assert_eq!(c.all_procs().len(), 3);
}

#[test]
fn find_by_name_pins_lowest_pid_under_duplicate_names() {
    // Regression: the HashMap-backed table resolved duplicate instance
    // names in hash-iteration order — whichever entry happened to hash
    // first. The name index must deterministically pick the lowest live
    // pid, and fall through to survivors as earlier holders die.
    let mut c = cluster();
    let first = c.spawn(SpawnSpec::new("ftm", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    let second =
        c.spawn(SpawnSpec::new("ftm", NodeId(1), Box::new(Probe { reply_to_ping: false })));
    let third = c.spawn(SpawnSpec::new("ftm", NodeId(2), Box::new(Probe { reply_to_ping: false })));
    c.run_until(SimTime::from_secs(1));
    assert!(first < second && second < third);
    assert_eq!(c.find_by_name("ftm"), Some(first), "lowest pid wins");
    c.send_signal(first, Signal::Kill);
    c.run_until(SimTime::from_secs(2));
    assert_eq!(c.find_by_name("ftm"), Some(second), "next-lowest survivor after a death");
    // A respawn under the same name ranks after the remaining survivors.
    let fourth =
        c.spawn(SpawnSpec::new("ftm", NodeId(0), Box::new(Probe { reply_to_ping: false })));
    assert!(fourth > third);
    assert_eq!(c.find_by_name("ftm"), Some(second), "respawn must not shadow older survivors");
    c.send_signal(second, Signal::Kill);
    c.send_signal(third, Signal::Kill);
    c.run_until(SimTime::from_secs(3));
    assert_eq!(c.find_by_name("ftm"), Some(fourth));
}

#[test]
fn register_injection_eventually_crashes_or_masks_an_active_process() {
    // A busy process (steady work) with repeated register injections must
    // eventually fail — this is the Table 2 "periodically flipped until a
    // failure is induced" protocol.
    #[derive(Clone)]
    struct Busy;
    impl Process for Busy {
        fn kind(&self) -> &'static str {
            "busy"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.start_work(SimDuration::from_secs(3600), 0);
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
    }
    let mut failures = 0;
    for seed in 0..20 {
        let mut c = Cluster::new(ClusterConfig::ree_testbed(seed));
        let p = c.spawn(SpawnSpec::new("busy", NodeId(0), Box::new(Busy)));
        c.run_until(SimTime::from_secs(1));
        for round in 0..200 {
            c.inject_register(p);
            c.run_until(SimTime::from_secs(2 + round));
            if !c.is_alive(p) || c.is_stopped(p) {
                failures += 1;
                break;
            }
        }
    }
    assert!(failures >= 18, "only {failures}/20 register campaigns induced failure");
}

#[test]
fn text_corruption_propagates_through_image_copy() {
    #[derive(Clone)]
    struct Idle;
    impl Process for Idle {
        fn kind(&self) -> &'static str {
            "idle"
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
    }
    let mut c = cluster();
    let daemon = c.spawn(SpawnSpec::new("daemon", NodeId(0), Box::new(Idle)));
    c.run_until(SimTime::from_secs(1));
    c.inject_text(daemon).expect("daemon alive");
    // Spawn a child copying the daemon's (corrupted) image.
    #[derive(Clone)]
    struct SpawnOnce {
        from: ree_os::Pid,
        done: bool,
    }
    impl Process for SpawnOnce {
        fn kind(&self) -> &'static str {
            "spawner"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            if !self.done {
                self.done = true;
                ctx.spawn(
                    SpawnSpec::new("copy", NodeId(0), Box::new(Idle))
                        .with_text(TextSource::CopyFrom(self.from)),
                );
            }
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
    }
    c.spawn(SpawnSpec::new(
        "spawner",
        NodeId(0),
        Box::new(SpawnOnce { from: daemon, done: false }),
    ));
    c.run_until(SimTime::from_secs(2));
    // The copied process exists; its image carries the corruption, which
    // we verify indirectly: injecting nothing, failures can still occur in
    // the copy. (Direct check: the daemon's own corruption persisted.)
    assert!(c.find_by_name("copy").is_some());
}

#[test]
fn deterministic_replay_same_seed_same_trace() {
    fn run(seed: u64) -> Vec<String> {
        let mut c = Cluster::new(ClusterConfig::ree_testbed(seed));
        let probe =
            c.spawn(SpawnSpec::new("probe", NodeId(0), Box::new(Probe { reply_to_ping: true })));
        c.spawn(SpawnSpec::new("pinger", NodeId(1), Box::new(Pinger { target: probe })));
        c.run_until(SimTime::from_secs(2));
        c.send_signal(probe, Signal::Int);
        c.run_until(SimTime::from_secs(4));
        c.trace().records().map(|r| format!("{} {}", r.time, r.detail)).collect()
    }
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn exit_from_handler_terminates_with_code() {
    #[derive(Clone)]
    struct Quitter;
    impl Process for Quitter {
        fn kind(&self) -> &'static str {
            "quitter"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.exit(0);
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
    }
    let mut c = cluster();
    let q = c.spawn(SpawnSpec::new("q", NodeId(0), Box::new(Quitter)));
    c.run_until(SimTime::from_secs(1));
    assert!(!c.is_alive(q));
    assert_eq!(c.exit_status(q).unwrap().1, ExitStatus::Exited(0));
}

#[test]
fn abort_reports_assertion_reason() {
    #[derive(Clone)]
    struct Asserter;
    impl Process for Asserter {
        fn kind(&self) -> &'static str {
            "asserter"
        }
        fn on_start(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.abort("range check failed");
        }
        fn on_message(&mut self, _m: Message, _c: &mut ProcCtx<'_>) {}
    }
    let mut c = cluster();
    let a = c.spawn(SpawnSpec::new("a", NodeId(0), Box::new(Asserter)));
    c.run_until(SimTime::from_secs(1));
    match &c.exit_status(a).unwrap().1 {
        ExitStatus::Aborted(r) => assert_eq!(r, "range check failed"),
        other => panic!("expected abort, got {other}"),
    }
}

#[test]
fn run_until_pred_stops_early() {
    let mut c = cluster();
    let probe =
        c.spawn(SpawnSpec::new("probe", NodeId(0), Box::new(Probe { reply_to_ping: true })));
    c.spawn(SpawnSpec::new("pinger", NodeId(1), Box::new(Pinger { target: probe })));
    let hit = c.run_until_pred(SimTime::from_secs(60), |c| c.trace().contains("got ping"));
    assert!(hit);
    assert!(c.now() < SimTime::from_secs(60));
}
