//! Canonical state digests for convergence pruning.
//!
//! Two explored branches that reach byte-identical cluster states have
//! identical futures, so the DFS only needs to continue from one of
//! them. The digest feeds [`ree_os::Cluster::write_state_digest`] — the
//! canonical serialisation of everything behaviour-relevant (clock, rng
//! stream positions, process table, storage, network, pending events
//! with rank-renumbered sequence numbers) — through a fixed FNV-1a
//! hasher, so digests are stable across builds and platforms (the std
//! `DefaultHasher` makes no such promise).

use ree_os::Cluster;
use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a: tiny, allocation-free, and deterministic by
/// construction — no per-process key material.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Digest of a cluster's canonical state, as pruned on by the DFS.
pub fn state_digest(cluster: &Cluster) -> u64 {
    let mut h = Fnv64::default();
    cluster.write_state_digest(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        let digest = |s: &str| {
            let mut h = Fnv64::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }
}
