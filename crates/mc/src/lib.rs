//! # ree-mc — bounded model checking of fault interleavings
//!
//! A seeded campaign run *samples* one execution per seed: one
//! injection instant, one target, one (default) delivery order for
//! simultaneous events. This crate instead *enumerates* a bounded
//! execution tree and covers it exhaustively:
//!
//! - **Fault placement** — a deterministic grid of activation instants
//!   over the plan's injection window × every matching target process
//!   ([`ree_inject::activation_instants`],
//!   [`ree_inject::candidate_targets`]).
//! - **Delivery order** — at every instant where 2+ events are ready
//!   simultaneously, each admissible order is a distinct branch
//!   ([`ree_os::Cluster::step_choices`] /
//!   [`ree_os::Cluster::step_with`]); the simulator's default
//!   `(time, seq)` order is just branch 0.
//!
//! Each branch **forks** the snapshot (the same copy-on-write warm-boot
//! clone campaigns use per seed) and continues independently. Branches
//! whose canonical post-step state digest was already expanded are
//! **pruned** — identical state, identical future. Terminal executions
//! are classified by the campaign pipeline ([`ree_inject::conclude_run`])
//! so an explored branch is judged exactly like a campaign run; any
//! branch the SIFT environment fails to recover is reported as a
//! replayable [`Counterexample`].
//!
//! Everything is a pure function of `(plan, seed, bounds)` — two
//! invocations produce byte-identical reports, which CI checks.
//! Semantics, soundness caveats, and the counterexample format are
//! documented in `docs/MODELCHECK.md`.
//!
//! ```
//! use ree_mc::{McBounds, ModelCheck};
//! use ree_inject::Campaign;
//!
//! let plan = ree_mc::presets::two_node_sigint_plan(7);
//! let bounds = McBounds { instants: 1, max_targets: 1, ..McBounds::smoke() };
//! let report = Campaign::new(&plan).seed(7).model_check(&bounds);
//! assert!(report.explored >= 1);
//! assert!(report.escapes.is_empty(), "healthy build recovers every branch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod hash;
pub mod presets;

pub use driver::{model_check, replay, Counterexample, McBounds, McReport};

use ree_inject::{Campaign, CampaignSpec};

/// Extension terminal turning a configured [`Campaign`] (or
/// [`CampaignSpec`]) into a bounded exhaustive exploration instead of a
/// seeded sample: same plan, same seed, systematically explored.
pub trait ModelCheck {
    /// Exhaustively explores this campaign's plan within `bounds`; see
    /// [`model_check`].
    fn model_check(&self, bounds: &McBounds) -> McReport;
}

impl ModelCheck for Campaign<'_> {
    fn model_check(&self, bounds: &McBounds) -> McReport {
        model_check(self.plan(), self.seed0(), bounds)
    }
}

impl ModelCheck for CampaignSpec {
    fn model_check(&self, bounds: &McBounds) -> McReport {
        model_check(&self.plan, self.seed0, bounds)
    }
}
