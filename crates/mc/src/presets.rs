//! The canonical model-checking scenario: a minimal 2-node cluster so
//! the bounded execution tree stays small enough to cover exhaustively.
//!
//! Shared between the `repro mc` target, the CI smoke job, and this
//! crate's self-tests so they all verify the identical tree.

use ree_apps::{Scenario, TextureParams};
use ree_inject::{ErrorModel, RunPlan, Target};
use ree_sift::{JobSpec, SiftConfig};
use ree_sim::{SimDuration, SimTime};

/// A 2-node cluster running one shrunk texture job (2 ranks co-resident
/// with the SIFT daemons): ~17 s of nominal science instead of the paper
/// testbed's ~74 s, so a full bounded exploration stays in CI scale.
pub fn two_node_scenario(seed: u64) -> Scenario {
    let texture = TextureParams {
        image_px: 32,
        tile_px: 8,
        clusters: 2,
        images: 1,
        load_time: SimDuration::from_secs(1),
        filter_time: SimDuration::from_secs(4),
        cluster_time: SimDuration::from_secs(3),
        write_time: SimDuration::from_secs(1),
        pi_period: SimDuration::from_secs(10),
    };
    let mut scenario = Scenario::single_texture(seed);
    scenario.nodes = 2;
    scenario.texture = texture;
    scenario.jobs = vec![JobSpec {
        app: "texture".into(),
        ranks: 2,
        nodes: vec![0, 1],
        submit_at: SimDuration::from_secs(5),
    }];
    scenario.sift = SiftConfig::paper();
    scenario
}

/// The `repro mc` plan: register bit-flips into the application ranks of
/// [`two_node_scenario`] — the paper's hardest-to-recover transient
/// model, explored exhaustively instead of sampled.
pub fn two_node_register_plan(seed: u64) -> RunPlan {
    RunPlan {
        scenario: two_node_scenario(seed),
        target: Target::App,
        model: ErrorModel::Register,
        timeout: SimTime::from_secs(120),
        net_faults: vec![],
    }
}

/// Self-test plan: SIGINT into the application ranks. The kill is
/// deterministic (no activation roll), so every explored branch
/// exercises detection → respawn — exactly the path the planted bug
/// breaks, making "≥ 1 escape on a sabotaged build" a reliable
/// assertion.
pub fn two_node_sigint_plan(seed: u64) -> RunPlan {
    RunPlan { model: ErrorModel::Sigint, ..two_node_register_plan(seed) }
}
