//! The bounded DFS over fault placements and same-instant delivery
//! orders, with convergence pruning and counterexample extraction.

use crate::hash::state_digest;
use ree_apps::verify::Verdict;
use ree_apps::Running;
use ree_inject::{
    activation_instants, candidate_targets, conclude_run, ErrorModel, FailureClass, RunPlan,
    SystemFailure,
};
use ree_os::{HeapTarget, Pid, Signal};
use ree_sim::{EventHandle, SimTime};
use std::collections::HashSet;

/// Exploration bounds: together they fix the (finite) execution tree the
/// checker covers exhaustively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McBounds {
    /// Candidate fault-activation instants sampled from the plan's
    /// injection window ([`activation_instants`] grid size).
    pub instants: usize,
    /// Cap on candidate target processes per instant, in ascending pid
    /// order ([`candidate_targets`]).
    pub max_targets: usize,
    /// Maximum delivery-order branch nodes along any single path; past
    /// this depth the run continues in default `(time, seq)` order.
    pub max_depth: usize,
    /// Only branch at instants with at most this many simultaneously
    /// ready events; wider ready sets fire in default order.
    pub max_ready: usize,
    /// Global budget of non-default forks across the whole exploration;
    /// exhausting it degrades remaining branch nodes to default order
    /// (reported via [`McReport::budget_exhausted`]).
    pub max_branches: u64,
    /// Sabotage recovery (drop every post-injection respawn wake-up) to
    /// prove the checker reports escapes. The `planted-bug` cargo
    /// feature forces this on regardless.
    pub plant: bool,
}

impl McBounds {
    /// Smallest useful exploration — the CI smoke tier.
    pub fn smoke() -> Self {
        McBounds {
            instants: 2,
            max_targets: 2,
            max_depth: 2,
            max_ready: 2,
            max_branches: 64,
            plant: false,
        }
    }

    /// Default tier for local runs of the `mc` repro target.
    pub fn quick() -> Self {
        McBounds {
            instants: 4,
            max_targets: 3,
            max_depth: 3,
            max_ready: 3,
            max_branches: 256,
            plant: false,
        }
    }

    /// The deep tier: overnight-style exhaustive sweeps.
    pub fn paper() -> Self {
        McBounds {
            instants: 8,
            max_targets: 4,
            max_depth: 4,
            max_ready: 4,
            max_branches: 2048,
            plant: false,
        }
    }

    fn plant_effective(&self) -> bool {
        self.plant || cfg!(feature = "planted-bug")
    }
}

/// A replayable escape: a bounded execution in which the injected error
/// was **not** recovered (the run missed completion or produced
/// incorrect output). `(plan, counterexample, bounds)` deterministically
/// reproduces it via [`replay`].
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// The fork seed the exploration ran under.
    pub seed: u64,
    /// Fault-activation instant (one of [`McReport::instants`]).
    pub instant: SimTime,
    /// Injected process.
    pub target: Pid,
    /// Its process-table name at injection time.
    pub target_name: String,
    /// Delivery-order choice taken at each successive branch node along
    /// the escaping path; positions past the end mean the default
    /// (first) choice.
    pub schedule: Vec<usize>,
    /// Table 6 failure class induced in the target, if any.
    pub induced: Option<FailureClass>,
    /// System-failure phase when the run missed completion.
    pub system_failure: Option<SystemFailure>,
    /// Output verdict of the escaping run.
    pub output: Verdict,
}

/// What a [`model_check`] exploration covered and found.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct McReport {
    /// The activation-instant grid explored.
    pub instants: Vec<SimTime>,
    /// Terminal executions classified (complete root-to-leaf paths).
    pub explored: u64,
    /// Branch nodes encountered (instants with 2+ admissible orders).
    pub branch_nodes: u64,
    /// Non-default forks taken (clone + alternate delivery order).
    pub forks: u64,
    /// Subtrees skipped because their canonical state digest was
    /// already explored.
    pub pruned: u64,
    /// Deepest branch nesting reached along any path.
    pub deepest: usize,
    /// Injection attempts that found no matching target state (e.g. a
    /// heap model before the app allocated) — skipped, not explored.
    pub sterile: u64,
    /// Respawn wake-ups discarded by the planted bug (zero on a healthy
    /// build).
    pub discarded: u64,
    /// True if `max_branches` ran out before the tree was fully covered.
    pub budget_exhausted: bool,
    /// Terminal executions in which the system recovered the injection
    /// (or the error never manifested and the run still completed).
    pub recovered: u64,
    /// Escapes found, in DFS order.
    pub escapes: Vec<Counterexample>,
}

impl std::fmt::Display for McReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "explored {} executions ({} branch nodes, {} forks, deepest {})",
            self.explored, self.branch_nodes, self.forks, self.deepest
        )?;
        writeln!(
            f,
            "pruned {} converged subtrees; {} sterile injection points{}",
            self.pruned,
            self.sterile,
            if self.budget_exhausted { "; branch budget exhausted" } else { "" }
        )?;
        if self.discarded > 0 {
            writeln!(f, "planted bug discarded {} recovery wake-ups", self.discarded)?;
        }
        write!(f, "recovered {} / escapes {}", self.recovered, self.escapes.len())?;
        for c in &self.escapes {
            write!(
                f,
                "\n  escape: at {:?} pid={:?} ({}) schedule={:?} induced={:?} failure={:?} output={:?}",
                c.instant,
                c.target,
                c.target_name,
                c.schedule,
                c.induced,
                c.system_failure,
                c.output
            )?;
        }
        Ok(())
    }
}

/// Exhaustively explores the bounded execution tree of `plan`:
/// for each activation instant × candidate target, injects one error
/// and DFS-explores every admissible same-instant delivery order within
/// `bounds`, classifying each terminal execution with the campaign
/// pipeline ([`conclude_run`]). Pure function of `(plan, seed, bounds)`.
///
/// Single-injection semantics: unlike a repeating campaign protocol,
/// every explored execution carries exactly one successfully placed
/// error — the tree enumerates *where* and *in which delivery order*,
/// not *how many*.
pub fn model_check(plan: &RunPlan, seed: u64, bounds: &McBounds) -> McReport {
    assert!(
        plan.net_faults.is_empty(),
        "model checking composes with process-level error models only"
    );
    plan.scenario.warm_inputs();
    let geometry = plan.geometry();
    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
    let instants = activation_instants(plan, bounds.instants);
    let mut x = Explorer {
        plan,
        seed,
        bounds: bounds.clone(),
        plant: bounds.plant_effective(),
        seen: HashSet::new(),
        report: McReport { instants: instants.clone(), ..McReport::default() },
    };
    for &instant in &instants {
        let mut base = snapshot.fork(seed);
        base.run_until(instant);
        if base.all_done() || base.cluster.now() >= plan.timeout {
            continue;
        }
        for pid in candidate_targets(&base, &plan.target, bounds.max_targets) {
            let mut root = base.clone();
            if !inject_once(&mut root, &plan.model, pid) {
                x.report.sterile += 1;
                continue;
            }
            let name = root.cluster.name_of(pid).unwrap_or("?").to_string();
            x.explore(root, instant, pid, &name, 0, Vec::new());
        }
    }
    x.report
}

/// Deterministically re-executes a counterexample under the same bounds
/// it was found with and returns the run's classification. On a healthy
/// build (same bounds, `plant` off) the same schedule should recover.
pub fn replay(plan: &RunPlan, cex: &Counterexample, bounds: &McBounds) -> ree_inject::RunResult {
    assert!(plan.net_faults.is_empty(), "counterexamples carry no network faults");
    plan.scenario.warm_inputs();
    let geometry = plan.geometry();
    let snapshot = plan.scenario.boot_snapshot(geometry.snapshot_at);
    let mut running = snapshot.fork(cex.seed);
    running.run_until(cex.instant);
    assert!(
        inject_once(&mut running, &plan.model, cex.target),
        "counterexample target no longer injectable; plan/seed mismatch?"
    );
    let plant = bounds.plant_effective();
    let mut depth = 0usize;
    let mut next_choice = 0usize;
    loop {
        if running.all_done() {
            break;
        }
        let Some(next) = running.cluster.next_event_time() else { break };
        if next > plan.timeout {
            break;
        }
        if plant {
            if let Some(h) = ready_start(&running) {
                running.cluster.discard_event(h);
                continue;
            }
        }
        let choices = running.cluster.step_choices();
        if choices.len() >= 2 && choices.len() <= bounds.max_ready && depth < bounds.max_depth {
            let i = cex.schedule.get(next_choice).copied().unwrap_or(0).min(choices.len() - 1);
            next_choice += 1;
            depth += 1;
            running.cluster.step_with(choices[i]).expect("ready choice fires");
        } else {
            running.cluster.step();
        }
    }
    conclude_run(plan, cex.seed, running, 1, Some(cex.target)).0
}

struct Explorer<'p> {
    plan: &'p RunPlan,
    seed: u64,
    bounds: McBounds,
    plant: bool,
    seen: HashSet<u64>,
    report: McReport,
}

impl Explorer<'_> {
    /// Runs one post-injection execution to a terminal, branching (by
    /// forking `running`) at every admissible multi-ready instant within
    /// the bounds. `schedule` is the branch-choice path taken so far.
    fn explore(
        &mut self,
        mut running: Running,
        instant: SimTime,
        target: Pid,
        target_name: &str,
        mut depth: usize,
        mut schedule: Vec<usize>,
    ) {
        loop {
            // Terminals: every job reported completion, the world went
            // quiescent, or nothing remains before the timeout.
            if running.all_done() {
                return self.terminal(running, instant, target, target_name, schedule);
            }
            let Some(next) = running.cluster.next_event_time() else {
                return self.terminal(running, instant, target, target_name, schedule);
            };
            if next > self.plan.timeout {
                return self.terminal(running, instant, target, target_name, schedule);
            }
            // Planted bug: silently lose every recovery wake-up.
            if self.plant {
                if let Some(h) = ready_start(&running) {
                    running.cluster.discard_event(h);
                    self.report.discarded += 1;
                    continue;
                }
            }
            let n = running.cluster.step_choices().len();
            let branchable = n >= 2 && n <= self.bounds.max_ready && depth < self.bounds.max_depth;
            if !branchable {
                running.cluster.step();
                continue;
            }
            // Branch node. Prune if an identical canonical state was
            // already expanded — its subtree is this subtree.
            if !self.seen.insert(state_digest(&running.cluster)) {
                self.report.pruned += 1;
                return;
            }
            self.report.branch_nodes += 1;
            self.report.deepest = self.report.deepest.max(depth + 1);
            for i in 1..n {
                if self.report.forks >= self.bounds.max_branches {
                    self.report.budget_exhausted = true;
                    break;
                }
                self.report.forks += 1;
                let mut fork = running.clone();
                // Handles are queue-scoped: re-derive the ready set on
                // the fork (clone preserves `(time, seq)` order, so
                // index `i` addresses the same event).
                let h = fork.cluster.step_choices()[i];
                fork.cluster.step_with(h).expect("ready choice fires");
                let mut s = schedule.clone();
                s.push(i);
                self.explore(fork, instant, target, target_name, depth + 1, s);
            }
            // The default order continues in place, without a clone.
            schedule.push(0);
            depth += 1;
            let h = running.cluster.step_choices()[0];
            running.cluster.step_with(h).expect("ready choice fires");
        }
    }

    fn terminal(
        &mut self,
        running: Running,
        instant: SimTime,
        target: Pid,
        target_name: &str,
        schedule: Vec<usize>,
    ) {
        self.report.explored += 1;
        let (result, _) = conclude_run(self.plan, self.seed, running, 1, Some(target));
        if result.recovered() {
            self.report.recovered += 1;
        } else {
            // Canonical form: trailing default choices carry no
            // information (replay pads with 0).
            let mut schedule = schedule;
            while schedule.last() == Some(&0) {
                schedule.pop();
            }
            self.report.escapes.push(Counterexample {
                seed: self.seed,
                instant,
                target,
                target_name: target_name.to_string(),
                schedule,
                induced: result.induced,
                system_failure: result.system_failure,
                output: result.output,
            });
        }
    }
}

/// Places one error per the model; false if the target had no matching
/// state to corrupt (mirrors the campaign runner's placement).
fn inject_once(running: &mut Running, model: &ErrorModel, pid: Pid) -> bool {
    match model {
        ErrorModel::Sigint => {
            running.cluster.send_signal(pid, Signal::Int);
            true
        }
        ErrorModel::Sigstop => {
            running.cluster.send_signal(pid, Signal::Stop);
            true
        }
        ErrorModel::Register => running.cluster.inject_register(pid).is_some(),
        ErrorModel::TextSegment => running.cluster.inject_text(pid).is_some(),
        ErrorModel::Heap => running.cluster.inject_heap(pid, &HeapTarget::Any).is_some(),
        ErrorModel::HeapSingle(target) => running.cluster.inject_heap(pid, target).is_some(),
    }
}

/// First ready event (in default order) that is a process-start wake-up
/// — what the planted bug loses.
fn ready_start(running: &Running) -> Option<EventHandle> {
    running
        .cluster
        .step_choices()
        .into_iter()
        .find(|&h| running.cluster.event_label(h) == Some("start"))
}
