//! The checker checking itself: determinism, zero escapes on the real
//! build, and — the part that proves the tool can actually find bugs —
//! a planted recovery defect that must surface as a replayable
//! counterexample.

use ree_mc::presets::{two_node_register_plan, two_node_sigint_plan};
use ree_mc::{model_check, replay, McBounds};

/// On the healthy build the SIFT environment must recover every explored
/// branch of the register-corruption tree, and two explorations of the
/// same `(plan, seed, bounds)` must agree exactly — the property the CI
/// smoke job re-checks byte-for-byte at the binary-output level.
#[cfg(not(feature = "planted-bug"))]
#[test]
fn healthy_build_recovers_every_branch_deterministically() {
    let plan = two_node_register_plan(7);
    let bounds = McBounds::smoke();
    let first = model_check(&plan, 7, &bounds);
    assert!(first.explored >= 1, "tree must not be empty");
    assert!(first.branch_nodes >= 1, "scenario must actually branch");
    assert!(first.escapes.is_empty(), "unexpected escapes:\n{first}");
    assert_eq!(first.explored, first.recovered);
    let second = model_check(&plan, 7, &bounds);
    assert_eq!(first, second, "exploration is not deterministic");
}

/// With recovery sabotaged (post-injection respawn wake-ups dropped),
/// the checker must report escapes, and each counterexample must be
/// independently replayable: the recorded schedule reproduces the
/// failure under the sabotage and recovers without it — pinning the
/// defect on the planted bug, not on the interleaving.
#[test]
fn planted_recovery_bug_surfaces_as_replayable_counterexample() {
    let plan = two_node_sigint_plan(7);
    let bounds = McBounds { plant: true, ..McBounds::smoke() };
    let report = model_check(&plan, 7, &bounds);
    assert!(report.discarded > 0, "plant never engaged:\n{report}");
    assert!(!report.escapes.is_empty(), "planted bug not found:\n{report}");
    let cex = &report.escapes[0];
    let sabotaged = replay(&plan, cex, &bounds);
    assert!(!sabotaged.recovered(), "replay failed to reproduce the escape");
    assert_eq!(sabotaged.induced, cex.induced);
    assert_eq!(sabotaged.system_failure, cex.system_failure);
    assert_eq!(sabotaged.output, cex.output);
    if !cfg!(feature = "planted-bug") {
        let healthy = replay(&plan, cex, &McBounds::smoke());
        assert!(healthy.recovered(), "healthy build should survive the same schedule");
    }
}

/// The campaign-style entry point explores the same tree as the free
/// function (same plan, same seed).
#[cfg(not(feature = "planted-bug"))]
#[test]
fn campaign_terminal_matches_free_function() {
    use ree_inject::Campaign;
    use ree_mc::ModelCheck;
    let plan = two_node_sigint_plan(11);
    let bounds = McBounds { instants: 1, max_targets: 1, ..McBounds::smoke() };
    let via_campaign = Campaign::new(&plan).seed(11).model_check(&bounds);
    assert_eq!(via_campaign, model_check(&plan, 11, &bounds));
    assert!(via_campaign.escapes.is_empty());
}
