//! `FftPlan` correctness: the precomputed-twiddle kernel must be
//! numerically interchangeable with the original recurrence-based FFT
//! (`fft_unplanned`), invertible, and correct for every power-of-two
//! size — the plan registry serves all of them from one cache.

use proptest::prelude::*;
use ree_apps::fft::{fft, fft2d_with, fft_unplanned, Complex, FftPlan};
use ree_sim::SimRng;

/// Tolerance for planned-vs-unplanned agreement. The two kernels differ
/// only in how twiddles are produced (direct evaluation vs recurrence),
/// so they agree to fine precision at these sizes.
const TOL: f64 = 1e-9;

fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| (rng.normal(0.0, 10.0), rng.normal(0.0, 10.0))).collect()
}

fn max_abs_diff(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x.0 - y.0).abs().max((x.1 - y.1).abs())).fold(0.0, f64::max)
}

#[test]
fn planned_matches_unplanned_on_random_inputs() {
    for (i, size) in [1usize, 2, 4, 8, 16, 64, 256, 1024].into_iter().enumerate() {
        for rep in 0..4u64 {
            let signal = random_signal(size, 1000 + 17 * i as u64 + rep);
            for inverse in [false, true] {
                let mut planned = signal.clone();
                let mut naive = signal.clone();
                fft(&mut planned, inverse);
                fft_unplanned(&mut naive, inverse);
                let diff = max_abs_diff(&planned, &naive);
                assert!(diff < TOL, "size {size} inverse {inverse}: diff {diff}");
            }
        }
    }
}

#[test]
fn inverse_round_trips_to_the_original_signal() {
    for size in [2usize, 8, 32, 128, 512] {
        let signal = random_signal(size, 7 + size as u64);
        let mut data = signal.clone();
        let plan = FftPlan::for_size(size);
        plan.process(&mut data, false);
        plan.process(&mut data, true);
        let diff = max_abs_diff(&data, &signal);
        assert!(diff < TOL, "size {size}: round-trip diff {diff}");
    }
}

#[test]
fn plan_can_be_built_directly_without_the_registry() {
    let plan = FftPlan::new(64);
    assert_eq!(plan.size(), 64);
    let signal = random_signal(64, 99);
    let mut a = signal.clone();
    let mut b = signal.clone();
    plan.process(&mut a, false);
    fft(&mut b, false);
    assert!(max_abs_diff(&a, &b) < TOL);
}

/// Reference 2-D transform built purely from `fft_unplanned`: per-row
/// passes, then each column gathered into a scratch vector, transformed,
/// and scattered back — the strided layout the transpose-blocked kernel
/// replaced.
fn fft2d_reference(data: &mut [Complex], size: usize, inverse: bool) {
    for row in data.chunks_exact_mut(size) {
        fft_unplanned(row, inverse);
    }
    let mut col = vec![(0.0, 0.0); size];
    for c in 0..size {
        for r in 0..size {
            col[r] = data[r * size + c];
        }
        fft_unplanned(&mut col, inverse);
        for r in 0..size {
            data[r * size + c] = col[r];
        }
    }
}

proptest! {
    /// For every power-of-two size up to 2¹⁰ and any seed, the planned
    /// kernel agrees with the recurrence kernel and the inverse
    /// transform returns the input.
    #[test]
    fn plan_equivalence_over_power_of_two_sizes(exp in 0u32..=10, seed in any::<u64>()) {
        let size = 1usize << exp;
        let signal = random_signal(size, seed);

        let mut planned = signal.clone();
        let mut naive = signal.clone();
        fft(&mut planned, false);
        fft_unplanned(&mut naive, false);
        prop_assert!(max_abs_diff(&planned, &naive) < TOL);

        fft(&mut planned, true);
        prop_assert!(max_abs_diff(&planned, &signal) < TOL);
    }

    /// The transpose-blocked 2-D kernel agrees with the strided
    /// `fft_unplanned` reference for every supported tile size — both
    /// directions — and the inverse round-trips the forward transform.
    /// Covers tiles below, at, and above the transpose block width.
    #[test]
    fn tiled_fft2d_matches_unplanned_over_all_tile_sizes(exp in 0u32..=6, seed in any::<u64>()) {
        let size = 1usize << exp;
        let signal = random_signal(size * size, seed);
        let plan = FftPlan::for_size(size);

        for inverse in [false, true] {
            let mut tiled = signal.clone();
            let mut reference = signal.clone();
            fft2d_with(&plan, &mut tiled, inverse);
            fft2d_reference(&mut reference, size, inverse);
            let diff = max_abs_diff(&tiled, &reference);
            prop_assert!(diff < TOL, "size {size} inverse {inverse}: diff {diff}");
        }

        let mut data = signal.clone();
        fft2d_with(&plan, &mut data, false);
        fft2d_with(&plan, &mut data, true);
        let diff = max_abs_diff(&data, &signal);
        prop_assert!(diff < TOL, "size {size}: 2-D round-trip diff {diff}");
    }
}
