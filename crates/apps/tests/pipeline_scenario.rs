//! End-to-end checks for the topology-placed image-acquisition pipeline:
//! fault-free completion, verified products, and the constrained-trunk
//! placement actually carrying the downlink traffic.

use ree_apps::verify::{verify_pipeline, Verdict};
use ree_apps::Scenario;
use ree_sim::SimTime;

#[test]
fn pipeline_completes_fault_free_with_correct_products() {
    let scenario = Scenario::image_pipeline(11);
    let running = scenario.run_fault_free(SimTime::from_secs(400));
    assert!(running.all_done(), "pipeline did not finish: {running:?}");
    let fs = running.cluster.remote_fs_ref();
    for frame in 0..scenario.pipeline.frames {
        assert_eq!(
            verify_pipeline(fs, "imgpipe", 0, frame, scenario.pipeline.frame_px),
            Verdict::Correct,
            "frame {frame}"
        );
    }
}

#[test]
fn pipeline_scenario_is_deterministic() {
    let a = Scenario::image_pipeline(3).run_fault_free(SimTime::from_secs(400));
    let b = Scenario::image_pipeline(3).run_fault_free(SimTime::from_secs(400));
    assert_eq!(a.cluster.now(), b.cluster.now());
    assert_eq!(a.cluster.trace().render(), b.cluster.trace().render());
}

#[test]
fn pipeline_topology_routes_across_the_trunk() {
    let scenario = Scenario::image_pipeline(5);
    let running = scenario.start();
    let net = running.cluster.network();
    let topology = net.topology();
    // camera/compute (nodes 1, 2) reach the downlink node 4 only through
    // the trunk: the route is strictly longer than an intra-switch one.
    let route = net.route(ree_os::NodeId(1), ree_os::NodeId(4)).expect("route exists");
    let local = net.route(ree_os::NodeId(1), ree_os::NodeId(2)).expect("route exists");
    assert!(route.len() > local.len(), "trunk route {route:?} vs local {local:?}");
    assert_eq!(topology.switches(), 2);
}
