//! OTIS data compression (§2: "an algorithm for data compression").
//!
//! A lossless predictive coder for quantised thermal products: per-pixel
//! delta prediction followed by zig-zag varint + run-length encoding of
//! zero runs. Chosen because its shape matches onboard science
//! compressors (predict → residual → entropy-ish code) while staying
//! dependency-free.

/// Quantises Kelvin temperatures to centi-Kelvin integers.
pub fn quantize(values: &[f64]) -> Vec<i32> {
    values.iter().map(|v| (v * 100.0).round() as i32).collect()
}

/// Reverses [`quantize`].
pub fn dequantize(values: &[i32]) -> Vec<f64> {
    values.iter().map(|&v| v as f64 / 100.0).collect()
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses quantised samples: delta prediction + zigzag varints with
/// zero-run folding (`0x00` marker + run length).
pub fn compress(samples: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len());
    put_varint(&mut out, samples.len() as u64);
    let mut prev = 0i64;
    let mut zero_run = 0u64;
    for &s in samples {
        let delta = s as i64 - prev;
        prev = s as i64;
        if delta == 0 {
            zero_run += 1;
            continue;
        }
        if zero_run > 0 {
            out.push(0);
            put_varint(&mut out, zero_run);
            zero_run = 0;
        }
        // Encode nonzero deltas as zigzag+1 so 0 stays a run marker.
        put_varint(&mut out, zigzag(delta) + 1);
    }
    if zero_run > 0 {
        out.push(0);
        put_varint(&mut out, zero_run);
    }
    out
}

/// Error decompressing a corrupted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressError;

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed stream")
    }
}

impl std::error::Error for DecompressError {}

/// Reverses [`compress`].
///
/// # Errors
///
/// Returns [`DecompressError`] on truncated or malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<i32>, DecompressError> {
    let mut pos = 0usize;
    let n = get_varint(data, &mut pos).ok_or(DecompressError)? as usize;
    if n > 1 << 28 {
        return Err(DecompressError);
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    while out.len() < n {
        let code = get_varint(data, &mut pos).ok_or(DecompressError)?;
        if code == 0 {
            let run = get_varint(data, &mut pos).ok_or(DecompressError)? as usize;
            if out.len() + run > n {
                return Err(DecompressError);
            }
            for _ in 0..run {
                out.push(prev as i32);
            }
        } else {
            prev += unzigzag(code - 1);
            if prev > i32::MAX as i64 || prev < i32::MIN as i64 {
                return Err(DecompressError);
            }
            out.push(prev as i32);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_smooth_field() {
        let values: Vec<f64> = (0..1000).map(|i| 285.0 + (i as f64 * 0.01).sin() * 5.0).collect();
        let q = quantize(&values);
        let compressed = compress(&q);
        let back = decompress(&compressed).unwrap();
        assert_eq!(q, back);
        // Smooth fields compress well.
        assert!(
            compressed.len() < q.len() * 2,
            "expected < {} bytes, got {}",
            q.len() * 2,
            compressed.len()
        );
    }

    #[test]
    fn roundtrip_constant_field_is_tiny() {
        let q = vec![28500; 4096];
        let compressed = compress(&q);
        assert!(compressed.len() < 32, "constant field should RLE to ~nothing");
        assert_eq!(decompress(&compressed).unwrap(), q);
    }

    #[test]
    fn roundtrip_extremes_and_negatives() {
        let q = vec![0, -1, 1, i32::MIN / 2, i32::MAX / 2, 0, 0, 0, 42];
        assert_eq!(decompress(&compress(&q)).unwrap(), q);
    }

    #[test]
    fn empty_input() {
        let q: Vec<i32> = vec![];
        assert_eq!(decompress(&compress(&q)).unwrap(), q);
    }

    #[test]
    fn truncation_detected() {
        let q: Vec<i32> = (0..100).map(|i| i * 7 - 350).collect();
        let compressed = compress(&q);
        for cut in [0, 1, compressed.len() / 2] {
            assert!(decompress(&compressed[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn quantize_roundtrip_within_resolution() {
        let values = [285.137, 290.004, 271.999];
        let back = dequantize(&quantize(&values));
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() <= 0.005 + 1e-12);
        }
    }

    #[test]
    fn zigzag_is_bijective() {
        for v in [-5i64, -1, 0, 1, 7, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
