//! Directional texture filters (§2): "three filters are used to extract
//! vectors that describe image features along each of its three axes."
//!
//! Each filter measures, per image tile, the spectral energy in one
//! orientation band (horizontal, vertical, diagonal) of the tile's 2-D
//! FFT. The per-tile energies across the three filters form the feature
//! vectors that k-means segments.
//!
//! # Fast path
//!
//! The per-tile work used to be: allocate a tile buffer, allocate a
//! column scratch inside `fft2d`, and — per spectrum bin — a `sqrt` plus
//! a libm `atan2` to decide band membership. Band membership depends
//! only on `(tile size, filter)`, so it is now precomputed once into a
//! **band mask** — span-encoded for branch-free energy sums — and
//! cached (see [`FilterScratch`]); the tile buffer lives in a scratch
//! pool reused across every tile of a call (and across calls, for
//! callers that hold a scratch). The mask
//! itself is built with a polynomial `atan2` approximation
//! ([`fast_atan2`], max error < 2e-5 rad); compile with the `exact-trig`
//! feature to build masks with libm `atan2` instead. The two agree on
//! every bin of every supported tile size (2–[`MAX_TILE_PX`]) — no such
//! frequency bin lies within 1e-4 rad of a band boundary (all boundaries
//! are odd multiples of π/8, whose tangents are irrational) — so the
//! default is byte-identical to the exact mode and the determinism
//! fixtures are **preserved, not re-baselined** (decision recorded in
//! `docs/PERFORMANCE.md`). The size cap is load-bearing: at larger sizes
//! rational frequency pairs approach tan(π/8) closely enough to fall
//! inside the approximation's error envelope, so [`FilterScratch::new`]
//! rejects them rather than risk a silent fast/exact divergence.

use crate::fft::{fft2d_with, power, Complex, FftPlan};
use crate::synth::Image;
use std::cell::RefCell;
use std::sync::Arc;

/// Number of directional filters (the image's "three axes").
pub const NUM_FILTERS: usize = 3;

/// Largest supported tile side. The fast/exact band-mask identity is
/// proven exhaustively for every power-of-two size up to this bound
/// (`band_masks_identical_for_fast_and_exact_trig`); beyond it,
/// rational frequency pairs (continued-fraction convergents of
/// tan(π/8)) get close enough to a band boundary to fall inside
/// [`fast_atan2`]'s error envelope, which would let the default and
/// `exact-trig` builds diverge.
pub const MAX_TILE_PX: usize = 256;

/// Polynomial `atan2` approximation (Abramowitz & Stegun 4.4.49 on the
/// octant-reduced argument), maximum absolute error < 2e-5 rad. Used to
/// build orientation band masks; the `exact-trig` feature swaps in libm
/// `atan2`.
///
/// One carve-out: `fast_atan2(0.0, 0.0)` returns `0.0` for *both* zero
/// signs, where libm distinguishes `±0.0`/`±π` by sign bit.
///
/// ```
/// let a = ree_apps::filters::fast_atan2(3.0, -4.0);
/// assert!((a - 3.0f64.atan2(-4.0)).abs() < 2e-5);
/// ```
pub fn fast_atan2(y: f64, x: f64) -> f64 {
    if y == 0.0 && x == 0.0 {
        return 0.0;
    }
    let ay = y.abs();
    let ax = x.abs();
    // Octant reduction: evaluate atan on [0, 1].
    let swap = ay > ax;
    let z = if swap { ax / ay } else { ay / ax };
    // A&S 4.4.49: atan(z) = z(a1 + z²(a3 + z²(a5 + z²(a7 + z²·a9)))).
    let z2 = z * z;
    let mut a = z
        * (0.999_866_0
            + z2 * (-0.330_299_5 + z2 * (0.180_141_0 + z2 * (-0.085_133_0 + z2 * 0.020_835_1))));
    if swap {
        a = std::f64::consts::FRAC_PI_2 - a;
    }
    if x < 0.0 {
        a = std::f64::consts::PI - a;
    }
    // Sign-bit test, not `< 0.0`: atan2(-0.0, -1.0) must be -π like libm.
    if y.is_sign_negative() {
        -a
    } else {
        a
    }
}

/// True if spectrum bin `(fu, fv)` (signed frequencies) belongs to
/// `filter`'s orientation band. `exact` selects libm `atan2` over
/// [`fast_atan2`]; both classify every bin identically (proved by
/// `band_masks_identical_for_fast_and_exact_trig`).
fn bin_in_band(fu: f64, fv: f64, filter: usize, exact: bool) -> bool {
    let mag = (fu * fu + fv * fv).sqrt();
    if mag < 1e-9 {
        return false;
    }
    // Orientation of this frequency component, folded to 0..pi.
    let ang = if exact { fv.atan2(fu).abs() } else { fast_atan2(fv, fu).abs() };
    match filter {
        0 => !(std::f64::consts::FRAC_PI_8..=std::f64::consts::PI - std::f64::consts::FRAC_PI_8)
            .contains(&ang),
        1 => (ang - std::f64::consts::FRAC_PI_2).abs() < std::f64::consts::FRAC_PI_8,
        _ => {
            (ang - std::f64::consts::FRAC_PI_4).abs() < std::f64::consts::FRAC_PI_8
                || (ang - 3.0 * std::f64::consts::FRAC_PI_4).abs() < std::f64::consts::FRAC_PI_8
        }
    }
}

/// Builds the band-membership mask for one `(size, filter)` pair: entry
/// `v * size + u` is true when that spectrum bin contributes to the
/// filter's oriented energy. The DC term is always excluded (it carries
/// brightness, not texture).
fn build_band_mask(size: usize, filter: usize, exact: bool) -> Vec<bool> {
    let half = size / 2;
    let mut mask = vec![false; size * size];
    for v in 0..size {
        for u in 0..size {
            if u == 0 && v == 0 {
                continue;
            }
            // Signed frequencies in [-half, half).
            let fu = if u <= half { u as f64 } else { u as f64 - size as f64 };
            let fv = if v <= half { v as f64 } else { v as f64 - size as f64 };
            mask[v * size + u] = bin_in_band(fu, fv, filter, exact);
        }
    }
    mask
}

/// A band mask run-length encoded as contiguous `[start, end)` index
/// spans over the row-major spectrum. The energy accumulation iterates
/// spans of contiguous bins instead of testing a boolean per bin, which
/// drops the per-bin branch and mask load from the hot loop; summation
/// still proceeds in ascending bin order, so the total is bit-identical
/// to the masked form (asserted by `span_energy_is_bit_exact`).
#[derive(Debug)]
struct BandMask {
    spans: Vec<(u32, u32)>,
}

impl BandMask {
    fn from_bins(bins: &[bool]) -> BandMask {
        let mut spans = Vec::new();
        let mut start = None;
        for (i, &in_band) in bins.iter().enumerate() {
            match (in_band, start) {
                (true, None) => start = Some(i as u32),
                (false, Some(s)) => {
                    spans.push((s, i as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            spans.push((s, bins.len() as u32));
        }
        BandMask { spans }
    }
}

/// Sorted `((size, filter), mask)` registry entries.
type MaskRegistry = Vec<((usize, usize), Arc<BandMask>)>;

/// Fetches (building on first use) the cached orientation mask for one
/// `(size, filter)` pair.
fn band_mask(size: usize, filter: usize) -> Arc<BandMask> {
    debug_assert!(size <= MAX_TILE_PX, "mask size {size} beyond the proven fast/exact bound");
    thread_local! {
        /// Sorted mask registry — at most a handful of entries per
        /// campaign.
        static MASKS: RefCell<MaskRegistry> = const { RefCell::new(Vec::new()) };
    }
    MASKS.with(|cell| {
        let mut reg = cell.borrow_mut();
        match reg.binary_search_by_key(&(size, filter), |(key, _)| *key) {
            Ok(i) => Arc::clone(&reg[i].1),
            Err(i) => {
                let exact = cfg!(feature = "exact-trig");
                let bins = build_band_mask(size, filter, exact);
                let mask = Arc::new(BandMask::from_bins(&bins));
                reg.insert(i, ((size, filter), Arc::clone(&mask)));
                mask
            }
        }
    })
}

/// Reusable per-tile working state: the FFT plan for the tile size and
/// the tile spectrum buffer — everything `filter_tiles` needs, allocated
/// once and reused for every tile. (The 2-D FFT's column pass runs via
/// in-place transposes, so no column scratch is needed.)
#[derive(Clone, Debug)]
pub struct FilterScratch {
    plan: Arc<FftPlan>,
    buf: Vec<Complex>,
}

impl FilterScratch {
    /// Builds scratch state for `tile_px`×`tile_px` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tile_px` is not a power of two or exceeds
    /// [`MAX_TILE_PX`] (the bound up to which the fast/exact band-mask
    /// identity is proven).
    pub fn new(tile_px: usize) -> FilterScratch {
        assert!(tile_px.is_power_of_two(), "tile size must be a power of two");
        assert!(tile_px <= MAX_TILE_PX, "tile size {tile_px} exceeds MAX_TILE_PX {MAX_TILE_PX}");
        FilterScratch { plan: FftPlan::for_size(tile_px), buf: vec![(0.0, 0.0); tile_px * tile_px] }
    }

    /// Tile side length this scratch serves.
    pub fn tile_px(&self) -> usize {
        self.plan.size()
    }
}

/// Computes filter `filter`'s feature value for every tile whose index is
/// in `tiles` (tiles are numbered row-major over the `tiles_per_side`²
/// grid). Returns `(tile_index, energy)` pairs.
///
/// # Panics
///
/// Panics if `filter >= NUM_FILTERS` or the tile size is not a power of
/// two.
pub fn filter_tiles(
    image: &Image,
    filter: usize,
    tiles: std::ops::Range<usize>,
    tile_px: usize,
) -> Vec<(usize, f64)> {
    let mut scratch = FilterScratch::new(tile_px);
    filter_tiles_px(image.size, &image.pixels, filter, tiles, &mut scratch)
}

/// [`filter_tiles`] over raw row-major pixels with caller-held scratch —
/// the form the texture application drives directly against its science
/// heap (no image clone, no per-call allocations).
///
/// # Panics
///
/// Panics if `filter >= NUM_FILTERS` or `pixels.len() != size * size`.
pub fn filter_tiles_px(
    size: usize,
    pixels: &[f64],
    filter: usize,
    tiles: std::ops::Range<usize>,
    scratch: &mut FilterScratch,
) -> Vec<(usize, f64)> {
    assert!(filter < NUM_FILTERS, "unknown filter {filter}");
    assert_eq!(pixels.len(), size * size, "image must be size*size");
    let tile_px = scratch.tile_px();
    let mask = band_mask(tile_px, filter);
    let per_side = size / tile_px;
    let mut out = Vec::with_capacity(tiles.len());
    for tile in tiles {
        if tile >= per_side * per_side {
            break;
        }
        let tr = (tile / per_side) * tile_px;
        let tc = (tile % per_side) * tile_px;
        for r in 0..tile_px {
            let row = &pixels[(tr + r) * size + tc..(tr + r) * size + tc + tile_px];
            for (dst, &px) in scratch.buf[r * tile_px..(r + 1) * tile_px].iter_mut().zip(row) {
                *dst = (px, 0.0);
            }
        }
        fft2d_with(&scratch.plan, &mut scratch.buf, false);
        out.push((tile, oriented_energy(&scratch.buf, &mask)));
    }
    out
}

/// Sums spectral power over the filter's precomputed orientation band
/// (the DC term is excluded by the mask) and compresses with `ln(1+x)`.
/// Accumulates span by span in ascending bin order — the identical
/// addition sequence as a per-bin masked loop, without the per-bin
/// branch.
fn oriented_energy(spectrum: &[Complex], mask: &BandMask) -> f64 {
    let mut total = 0.0;
    for &(start, end) in &mask.spans {
        for c in &spectrum[start as usize..end as usize] {
            total += power(*c);
        }
    }
    (1.0 + total).ln()
}

/// Assembles the `tiles × NUM_FILTERS` feature matrix from per-filter
/// tile energies.
pub fn assemble_features(per_filter: &[Vec<(usize, f64)>], n_tiles: usize) -> Vec<f64> {
    let mut features = vec![0.0; n_tiles * NUM_FILTERS];
    for (f, tiles) in per_filter.iter().enumerate() {
        for (tile, energy) in tiles {
            if *tile < n_tiles {
                features[tile * NUM_FILTERS + f] = *energy;
            }
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::mars_surface;

    #[test]
    fn horizontal_texture_excites_filter_zero() {
        // A pure horizontal grating: intensity varies along x.
        let size = 32;
        let pixels: Vec<f64> = (0..size * size).map(|i| ((i % size) as f64 * 1.2).sin()).collect();
        let img = Image { size, pixels };
        let f0 = filter_tiles(&img, 0, 0..16, 8);
        let f1 = filter_tiles(&img, 1, 0..16, 8);
        let e0: f64 = f0.iter().map(|(_, e)| e).sum();
        let e1: f64 = f1.iter().map(|(_, e)| e).sum();
        assert!(e0 > e1 * 1.5, "horizontal filter {e0} should beat vertical {e1}");
    }

    #[test]
    fn vertical_texture_excites_filter_one() {
        let size = 32;
        let pixels: Vec<f64> = (0..size * size).map(|i| ((i / size) as f64 * 1.2).sin()).collect();
        let img = Image { size, pixels };
        let e0: f64 = filter_tiles(&img, 0, 0..16, 8).iter().map(|(_, e)| e).sum();
        let e1: f64 = filter_tiles(&img, 1, 0..16, 8).iter().map(|(_, e)| e).sum();
        assert!(e1 > e0 * 1.5, "vertical filter {e1} should beat horizontal {e0}");
    }

    #[test]
    fn tile_ranges_partition_cleanly() {
        let img = mars_surface(64, 3);
        let all = filter_tiles(&img, 2, 0..64, 8);
        let first = filter_tiles(&img, 2, 0..32, 8);
        let second = filter_tiles(&img, 2, 32..64, 8);
        let glued: Vec<_> = first.into_iter().chain(second).collect();
        assert_eq!(all, glued);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let img = mars_surface(64, 9);
        let mut scratch = FilterScratch::new(8);
        for filter in 0..NUM_FILTERS {
            let pooled = filter_tiles_px(img.size, &img.pixels, filter, 0..64, &mut scratch);
            let fresh = filter_tiles(&img, filter, 0..64, 8);
            assert_eq!(pooled, fresh, "filter {filter}");
        }
    }

    #[test]
    fn assemble_orders_features_by_tile_then_filter() {
        let per_filter =
            vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 3.0), (1, 4.0)], vec![(0, 5.0), (1, 6.0)]];
        let f = assemble_features(&per_filter, 2);
        assert_eq!(f, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn fast_atan2_is_within_tolerance_everywhere() {
        // Dense sweep over all four quadrants plus the axes.
        let mut worst: f64 = 0.0;
        for iy in -50..=50 {
            for ix in -50..=50 {
                let (y, x) = (iy as f64 * 0.37, ix as f64 * 0.53);
                if y == 0.0 && x == 0.0 {
                    continue;
                }
                worst = worst.max((fast_atan2(y, x) - y.atan2(x)).abs());
            }
        }
        assert!(worst < 2e-5, "worst error {worst}");
        assert_eq!(fast_atan2(0.0, 0.0), 0.0);
        // Negative-zero y must keep libm's sign convention (-π, not +π).
        assert_eq!(fast_atan2(-0.0, -1.0), -std::f64::consts::PI);
        assert_eq!(fast_atan2(0.0, -1.0), std::f64::consts::PI);
    }

    #[test]
    fn band_masks_identical_for_fast_and_exact_trig() {
        // The load-bearing determinism argument: the polynomial atan2
        // classifies every bin exactly like libm atan2 for **every**
        // supported tile size (2..=MAX_TILE_PX — FilterScratch::new
        // rejects anything larger), so the default build's features are
        // byte-identical to the exact-trig build's.
        let sizes = (1..).map(|e| 1usize << e).take_while(|&s| s <= MAX_TILE_PX);
        for size in sizes {
            for filter in 0..NUM_FILTERS {
                assert_eq!(
                    build_band_mask(size, filter, false),
                    build_band_mask(size, filter, true),
                    "size {size} filter {filter}"
                );
            }
        }
    }

    #[test]
    fn span_energy_is_bit_exact() {
        // The span encoding must reproduce the per-bin masked sum
        // bit-for-bit for every supported (size, filter) pair.
        let sizes = (1..).map(|e| 1usize << e).take_while(|&s| s <= 64);
        for size in sizes {
            for filter in 0..NUM_FILTERS {
                let bins = build_band_mask(size, filter, true);
                let mask = BandMask::from_bins(&bins);
                let spectrum: Vec<Complex> = (0..size * size)
                    .map(|i| ((i as f64 * 0.7).sin() * 9.0, (i as f64 * 1.3).cos() * 4.0))
                    .collect();
                let mut reference = 0.0;
                for (c, &in_band) in spectrum.iter().zip(&bins) {
                    if in_band {
                        reference += power(*c);
                    }
                }
                let reference = (1.0 + reference).ln();
                let got = oriented_energy(&spectrum, &mask);
                assert_eq!(got.to_bits(), reference.to_bits(), "size {size} filter {filter}");
            }
        }
    }

    #[test]
    fn masks_partition_most_bins_between_filters() {
        // Every non-DC bin belongs to at least one of the three bands
        // except bins sitting in the dead zones between band edges; the
        // three bands must not overlap.
        let size = 16;
        let m: Vec<Vec<bool>> = (0..NUM_FILTERS).map(|f| build_band_mask(size, f, true)).collect();
        for i in 0..size * size {
            let members = m.iter().filter(|mask| mask[i]).count();
            assert!(members <= 1, "bin {i} in {members} bands");
        }
        assert!(!m[0][0] && !m[1][0] && !m[2][0], "DC excluded everywhere");
    }

    #[test]
    fn features_separate_mars_quadrants() {
        // End-to-end sanity: features + kmeans recover the synthetic
        // ground truth reasonably well.
        let img = mars_surface(64, 11);
        let per_side = 64 / 8;
        let n_tiles = per_side * per_side;
        let per_filter: Vec<Vec<(usize, f64)>> =
            (0..NUM_FILTERS).map(|f| filter_tiles(&img, f, 0..n_tiles, 8)).collect();
        let features = assemble_features(&per_filter, n_tiles);
        let clustering = crate::kmeans::kmeans(&features, NUM_FILTERS, 4, 50);
        // Tiles inside one quadrant should mostly share a label.
        let quad_of_tile = |t: usize| {
            let row = (t / per_side) * 8;
            let col = (t % per_side) * 8;
            crate::synth::mars_region_of(64, row, col)
        };
        let mut agree = 0;
        let mut total = 0;
        for a in 0..n_tiles {
            for b in (a + 1)..n_tiles {
                let same_truth = quad_of_tile(a) == quad_of_tile(b);
                let same_label = clustering.labels[a] == clustering.labels[b];
                if same_truth == same_label {
                    agree += 1;
                }
                total += 1;
            }
        }
        let rand_index = agree as f64 / total as f64;
        assert!(rand_index > 0.75, "rand index {rand_index} too low");
    }
}
