//! Directional texture filters (§2): "three filters are used to extract
//! vectors that describe image features along each of its three axes."
//!
//! Each filter measures, per image tile, the spectral energy in one
//! orientation band (horizontal, vertical, diagonal) of the tile's 2-D
//! FFT. The per-tile energies across the three filters form the feature
//! vectors that k-means segments.

use crate::fft::{fft2d, power, Complex};
use crate::synth::Image;

/// Number of directional filters (the image's "three axes").
pub const NUM_FILTERS: usize = 3;

/// Computes filter `filter`'s feature value for every tile whose index is
/// in `tiles` (tiles are numbered row-major over the `tiles_per_side`²
/// grid). Returns `(tile_index, energy)` pairs.
///
/// # Panics
///
/// Panics if `filter >= NUM_FILTERS` or the tile size is not a power of
/// two.
pub fn filter_tiles(
    image: &Image,
    filter: usize,
    tiles: std::ops::Range<usize>,
    tile_px: usize,
) -> Vec<(usize, f64)> {
    assert!(filter < NUM_FILTERS, "unknown filter {filter}");
    assert!(tile_px.is_power_of_two(), "tile size must be a power of two");
    let per_side = image.size / tile_px;
    let mut out = Vec::with_capacity(tiles.len());
    let mut buf: Vec<Complex> = vec![(0.0, 0.0); tile_px * tile_px];
    for tile in tiles {
        if tile >= per_side * per_side {
            break;
        }
        let tr = (tile / per_side) * tile_px;
        let tc = (tile % per_side) * tile_px;
        for r in 0..tile_px {
            for c in 0..tile_px {
                buf[r * tile_px + c] = (image.at(tr + r, tc + c), 0.0);
            }
        }
        fft2d(&mut buf, tile_px, false);
        out.push((tile, oriented_energy(&buf, tile_px, filter)));
    }
    out
}

/// Sums spectral power in the orientation band of one filter, excluding
/// the DC term, and compresses with `ln(1+x)`.
fn oriented_energy(spectrum: &[Complex], size: usize, filter: usize) -> f64 {
    let mut total = 0.0;
    let half = size / 2;
    for v in 0..size {
        for u in 0..size {
            if u == 0 && v == 0 {
                continue; // DC carries brightness, not texture
            }
            // Signed frequencies in [-half, half).
            let fu = if u <= half { u as f64 } else { u as f64 - size as f64 };
            let fv = if v <= half { v as f64 } else { v as f64 - size as f64 };
            let mag = (fu * fu + fv * fv).sqrt();
            if mag < 1e-9 {
                continue;
            }
            // Orientation of this frequency component.
            let ang = fv.atan2(fu).abs(); // 0..pi
            let in_band = match filter {
                0 => !(std::f64::consts::FRAC_PI_8
                    ..=std::f64::consts::PI - std::f64::consts::FRAC_PI_8)
                    .contains(&ang),
                1 => (ang - std::f64::consts::FRAC_PI_2).abs() < std::f64::consts::FRAC_PI_8,
                _ => {
                    (ang - std::f64::consts::FRAC_PI_4).abs() < std::f64::consts::FRAC_PI_8
                        || (ang - 3.0 * std::f64::consts::FRAC_PI_4).abs()
                            < std::f64::consts::FRAC_PI_8
                }
            };
            if in_band {
                total += power(spectrum[v * size + u]);
            }
        }
    }
    (1.0 + total).ln()
}

/// Assembles the `tiles × NUM_FILTERS` feature matrix from per-filter
/// tile energies.
pub fn assemble_features(per_filter: &[Vec<(usize, f64)>], n_tiles: usize) -> Vec<f64> {
    let mut features = vec![0.0; n_tiles * NUM_FILTERS];
    for (f, tiles) in per_filter.iter().enumerate() {
        for (tile, energy) in tiles {
            if *tile < n_tiles {
                features[tile * NUM_FILTERS + f] = *energy;
            }
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::mars_surface;

    #[test]
    fn horizontal_texture_excites_filter_zero() {
        // A pure horizontal grating: intensity varies along x.
        let size = 32;
        let pixels: Vec<f64> = (0..size * size).map(|i| ((i % size) as f64 * 1.2).sin()).collect();
        let img = Image { size, pixels };
        let f0 = filter_tiles(&img, 0, 0..16, 8);
        let f1 = filter_tiles(&img, 1, 0..16, 8);
        let e0: f64 = f0.iter().map(|(_, e)| e).sum();
        let e1: f64 = f1.iter().map(|(_, e)| e).sum();
        assert!(e0 > e1 * 1.5, "horizontal filter {e0} should beat vertical {e1}");
    }

    #[test]
    fn vertical_texture_excites_filter_one() {
        let size = 32;
        let pixels: Vec<f64> = (0..size * size).map(|i| ((i / size) as f64 * 1.2).sin()).collect();
        let img = Image { size, pixels };
        let e0: f64 = filter_tiles(&img, 0, 0..16, 8).iter().map(|(_, e)| e).sum();
        let e1: f64 = filter_tiles(&img, 1, 0..16, 8).iter().map(|(_, e)| e).sum();
        assert!(e1 > e0 * 1.5, "vertical filter {e1} should beat horizontal {e0}");
    }

    #[test]
    fn tile_ranges_partition_cleanly() {
        let img = mars_surface(64, 3);
        let all = filter_tiles(&img, 2, 0..64, 8);
        let first = filter_tiles(&img, 2, 0..32, 8);
        let second = filter_tiles(&img, 2, 32..64, 8);
        let glued: Vec<_> = first.into_iter().chain(second).collect();
        assert_eq!(all, glued);
    }

    #[test]
    fn assemble_orders_features_by_tile_then_filter() {
        let per_filter =
            vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 3.0), (1, 4.0)], vec![(0, 5.0), (1, 6.0)]];
        let f = assemble_features(&per_filter, 2);
        assert_eq!(f, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn features_separate_mars_quadrants() {
        // End-to-end sanity: features + kmeans recover the synthetic
        // ground truth reasonably well.
        let img = mars_surface(64, 11);
        let per_side = 64 / 8;
        let n_tiles = per_side * per_side;
        let per_filter: Vec<Vec<(usize, f64)>> =
            (0..NUM_FILTERS).map(|f| filter_tiles(&img, f, 0..n_tiles, 8)).collect();
        let features = assemble_features(&per_filter, n_tiles);
        let clustering = crate::kmeans::kmeans(&features, NUM_FILTERS, 4, 50);
        // Tiles inside one quadrant should mostly share a label.
        let quad_of_tile = |t: usize| {
            let row = (t / per_side) * 8;
            let col = (t % per_side) * 8;
            crate::synth::mars_region_of(64, row, col)
        };
        let mut agree = 0;
        let mut total = 0;
        for a in 0..n_tiles {
            for b in (a + 1)..n_tiles {
                let same_truth = quad_of_tile(a) == quad_of_tile(b);
                let same_label = clustering.labels[a] == clustering.labels[b];
                if same_truth == same_label {
                    agree += 1;
                }
                total += 1;
            }
        }
        let rand_index = agree as f64 / total as f64;
        assert!(rand_index > 0.75, "rand index {rand_index} too low");
    }
}
